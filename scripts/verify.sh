#!/usr/bin/env bash
# Full verification: formatting, release build, workspace tests, the
# seeded chaos suite, clippy and rustdoc with warnings promoted to
# errors. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo test --workspace -q

# Chaos suite: fixed seed set (0..28, baked into tests/chaos.rs). On
# failure the offending seed is in the assertion message; reproduce with
#   cargo test --test chaos seeded_chaos -- --nocapture
if ! cargo test --test chaos -q; then
    echo "verify: chaos suite FAILED — seeds 0..28; the failing seed is" >&2
    echo "verify: printed in the assertion above and replays exactly."   >&2
    exit 1
fi

# Exploration smoke (dash-check): fixed-seed coverage-guided search on
# the healthy stack must find nothing, and the stored shrunk repro must
# replay byte-identically. Both are deterministic; the box is a wedge
# guard, not a noise allowance.
if ! timeout 30 cargo test --test explore -q -- \
        exploration_smoke_passes_clean_on_healthy_stack \
        stored_repro_replays_byte_identically; then
    echo "verify: exploration smoke FAILED (or exceeded its 30 s box) —" >&2
    echo "verify: reproduce with cargo test --test explore -- --nocapture" >&2
    exit 1
fi

# Parallel-executor smoke: the conservative executor's unit tests, then
# a time-boxed 2-shard run of the e12 CI workload with the semantic
# oracle attached (exits non-zero on any violation of the merged event
# stream). Shard-vs-serial digest equality is enforced separately by
# tests/determinism.rs above and by check_bench.sh's full scan below.
cargo test -q -p dash-par
if ! timeout 120 cargo run --release -q -p dash-bench --bin e12_pscale -- \
        --ci --shards 2 --oracle --label smoke >/dev/null; then
    echo "verify: e12 2-shard smoke FAILED (oracle violation or exceeded" >&2
    echo "verify: its 120 s box) — reproduce with"                        >&2
    echo "verify:   cargo run -p dash-bench --bin e12_pscale -- --ci --shards 2 --oracle" >&2
    exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Benches compile + run as tests (criterion --test mode), then the e10
# macro-workload is compared against the committed BENCH_scale.json
# baseline (fails only on collapse; see scripts/check_bench.sh).
cargo bench -p dash-bench -- --test
scripts/check_bench.sh

echo "verify: OK"
