#!/usr/bin/env bash
# Full verification: release build, workspace tests, and clippy with
# warnings promoted to errors. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

echo "verify: OK"
