#!/usr/bin/env bash
# Full verification: formatting, release build, workspace tests, the
# seeded chaos suite, the real-time backend suite, clippy and rustdoc
# with warnings promoted to errors. Run from anywhere inside the repo.
#
# Time boxes only ever cover *execution*, never compilation: every boxed
# binary is built beforehand, so a cold target directory (or a busy CI
# machine paging the compiler) cannot eat a box and fail a run that
# never even started. Boxes are env-tunable for slower machines:
#   EXPLORE_BOX=60 PSCALE_BOX=240 RT_BOX=180 scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

EXPLORE_BOX="${EXPLORE_BOX:-30}"
PSCALE_BOX="${PSCALE_BOX:-120}"
RT_BOX="${RT_BOX:-90}"

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo test --workspace -q

# Chaos suite: fixed seed set (0..28, baked into tests/chaos.rs). On
# failure the offending seed is in the assertion message; reproduce with
#   cargo test --test chaos seeded_chaos -- --nocapture
if ! cargo test --test chaos -q; then
    echo "verify: chaos suite FAILED — seeds 0..28; the failing seed is" >&2
    echo "verify: printed in the assertion above and replays exactly."   >&2
    exit 1
fi

# Exploration smoke (dash-check): fixed-seed coverage-guided search on
# the healthy stack must find nothing, and the stored shrunk repro must
# replay byte-identically. Both are deterministic; the box is a wedge
# guard, not a noise allowance. Build first so the box times the search,
# not the compiler.
cargo test --test explore -q --no-run
if ! timeout "$EXPLORE_BOX" cargo test --test explore -q -- \
        exploration_smoke_passes_clean_on_healthy_stack \
        stored_repro_replays_byte_identically; then
    echo "verify: exploration smoke FAILED (or exceeded its ${EXPLORE_BOX} s box) —" >&2
    echo "verify: reproduce with cargo test --test explore -- --nocapture" >&2
    exit 1
fi

# Parallel-executor smoke: the conservative executor's unit tests, then
# a time-boxed 2-shard run of the e12 CI workload with the semantic
# oracle attached (exits non-zero on any violation of the merged event
# stream). Shard-vs-serial digest equality is enforced separately by
# tests/determinism.rs above and by check_bench.sh's full scan below.
# The bench binaries are built up front for the same box-vs-compiler
# reason, and because a 2-shard run needs both worker threads live
# within the box — compilation stalls used to show up as spurious
# "wedged executor" timeouts.
cargo test -q -p dash-par
cargo build --release -q -p dash-bench
if ! timeout "$PSCALE_BOX" cargo run --release -q -p dash-bench --bin e12_pscale -- \
        --ci --shards 2 --oracle --label smoke >/dev/null; then
    echo "verify: e12 2-shard smoke FAILED (oracle violation or exceeded" >&2
    echo "verify: its ${PSCALE_BOX} s box) — reproduce with"              >&2
    echo "verify:   cargo run -p dash-bench --bin e12_pscale -- --ci --shards 2 --oracle" >&2
    exit 1
fi

# Real-time backend: the dash-rt unit/property tests plus the sim-vs-rt
# conformance suite, then a time-boxed paced run of the e13 CI workload
# (exits non-zero on any oracle violation or a wall-box stop). The run
# itself is paced — ~1.5 s of wall time by design — so the box guards
# against a wedged scheduler, not against slowness.
cargo test -q -p dash-rt
cargo test --release --test rt_conformance -q
if ! timeout "$RT_BOX" cargo run --release -q -p dash-bench --bin e13_rt -- \
        --ci --label smoke >/dev/null; then
    echo "verify: e13 real-time smoke FAILED (oracle violation, wall-box" >&2
    echo "verify: stop, or exceeded its ${RT_BOX} s box) — reproduce with" >&2
    echo "verify:   cargo run -p dash-bench --bin e13_rt -- --ci" >&2
    exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Benches compile + run as tests (criterion --test mode), then the e10
# macro-workload is compared against the committed BENCH_scale.json
# baseline (fails only on collapse; see scripts/check_bench.sh), and the
# e13 real-time run against BENCH_rt.json (oracle + stop gated, counts
# banded — wall-clock speed is reported, never gated: the run is paced).
cargo bench -p dash-bench -- --test
scripts/check_bench.sh

echo "verify: OK"
