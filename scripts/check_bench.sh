#!/usr/bin/env bash
# Compare fresh bench runs against the committed baselines.
#
# e10_scale vs BENCH_scale.json: wall-clock on shared CI machines is
# noisy, so this is a collapse detector, not a regression gate — it
# FAILS only when fresh events/sec drops below MIN_RATIO (default 0.30)
# of the baseline, and merely WARNS outside the ±WARN_BAND (default
# 30%) band. Deterministic event *counts* must match exactly.
#
# e11_routing vs BENCH_routing.json: the routing subsystem's observable
# work (engine events, link-state floods, route recomputations,
# alternate-path wins) is deterministic per topology, so those counts
# are gated exactly — any drift is a behaviour change, not noise.
#
# e13_rt vs BENCH_rt.json: the real-time backend's paced run. Counts
# are non-deterministic (wall feedback), so they get a generous band;
# the hard gates are the semantic oracle at zero violations and a clean
# (non-wallbox) stop. Wall speed is reported, never gated.
#
# Both e10/e11 gates also compare allocations per engine event (deterministic —
# counted by the binaries' counting allocator): a fresh value more than
# ALLOC_SLACK above the committed baseline fails. Collapse-only: getting
# *better* never fails, and baselines that predate the field are skipped.
#
#   scripts/check_bench.sh            # bench config (sub-second runs)
#   MIN_RATIO=0.5 scripts/check_bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CONFIG="${CONFIG:-bench}"
MIN_RATIO="${MIN_RATIO:-0.30}"
WARN_BAND="${WARN_BAND:-0.30}"
ALLOC_SLACK="${ALLOC_SLACK:-1.10}"
BASELINE_FILE="BENCH_scale.json"
ROUTING_BASELINE_FILE="BENCH_routing.json"

if [[ ! -f "$BASELINE_FILE" ]]; then
    echo "check_bench: no $BASELINE_FILE baseline; nothing to compare" >&2
    exit 0
fi

fresh_json="$(mktemp)"
trap 'rm -f "$fresh_json"' EXIT
cargo run --release -q -p dash-bench --bin e10_scale -- "--$CONFIG" --label fresh --json "$fresh_json"

python3 - "$BASELINE_FILE" "$fresh_json" "$CONFIG" "$MIN_RATIO" "$WARN_BAND" "$ALLOC_SLACK" <<'EOF'
import json, sys

baseline_file, fresh_file, config, min_ratio, warn_band, alloc_slack = sys.argv[1:7]
min_ratio, warn_band, alloc_slack = float(min_ratio), float(warn_band), float(alloc_slack)

doc = json.load(open(baseline_file))
runs = [r for r in doc["runs"] if r.get("config") == config]
if not runs:
    print(f"check_bench: no committed '{config}' baseline entry; skipping")
    sys.exit(0)
# The newest committed entry for this config is the baseline.
base = runs[-1]
fresh = json.load(open(fresh_file))

b, f = base["events_per_sec"], fresh["events_per_sec"]
ratio = f / b if b else float("inf")
print(f"check_bench[{config}]: baseline {b} ev/s ({base['label']}), "
      f"fresh {f:.0f} ev/s, ratio {ratio:.2f}")

# Event *counts* are deterministic; a drift there is a real behavior
# change, not noise, and always fails.
if fresh["events"] != base["events"]:
    print(f"check_bench: FAIL — event count changed "
          f"{base['events']} -> {fresh['events']} (workload drifted)")
    sys.exit(1)

if ratio < min_ratio:
    print(f"check_bench: FAIL — throughput collapsed below "
          f"{min_ratio:.2f}x baseline")
    sys.exit(1)
if ratio < 1 - warn_band or ratio > 1 + warn_band:
    print(f"check_bench: WARN — outside the ±{warn_band:.0%} band "
          f"(machine noise or a real change; not failing)")

# Allocations per event are deterministic, so a regression here is a real
# code change. Collapse-only gate: fail only above baseline*slack; skip
# baselines committed before the field existed.
ba, fa = base.get("allocs_per_event"), fresh.get("allocs_per_event")
if ba is None:
    print("check_bench: baseline predates allocs_per_event; skipping alloc gate")
else:
    print(f"check_bench[{config}]: allocs/event baseline {ba}, fresh {fa}")
    if fa > ba * alloc_slack:
        print(f"check_bench: FAIL — allocs/event regressed beyond "
              f"{alloc_slack:.2f}x baseline")
        sys.exit(1)
print("check_bench: OK")
EOF

# --- e10 semantic-oracle gate -------------------------------------------
# A separate invocation from the baseline-compared run above: the oracle's
# bookkeeping allocates, which would skew allocs_per_event. The binary
# exits non-zero on any invariant violation (set -e stops us here), and
# its JSON carries "oracle_violations":0 on success.
echo "check_bench[oracle]: e10_scale --ci --oracle"
cargo run --release -q -p dash-bench --bin e10_scale -- --ci --oracle --label oracle >/dev/null

# --- e11_routing: exact reconvergence event-count gate ------------------
if [[ ! -f "$ROUTING_BASELINE_FILE" ]]; then
    echo "check_bench: no $ROUTING_BASELINE_FILE baseline; skipping routing gate" >&2
    exit 0
fi

fresh_routing="$(mktemp)"
trap 'rm -f "$fresh_json" "$fresh_routing"' EXIT
cargo run --release -q -p dash-bench --bin e11_routing -- "--$CONFIG" --label fresh --json "$fresh_routing"

python3 - "$ROUTING_BASELINE_FILE" "$fresh_routing" "$CONFIG" "$ALLOC_SLACK" <<'EOF'
import json, sys

baseline_file, fresh_file, config, alloc_slack = sys.argv[1:5]
alloc_slack = float(alloc_slack)
doc = json.load(open(baseline_file))
runs = [r for r in doc["runs"] if r.get("config") == config]
if not runs:
    print(f"check_bench: no committed '{config}' routing baseline; skipping")
    sys.exit(0)
base = runs[-1]
fresh = json.load(open(fresh_file))

# Everything the routing subsystem *does* is deterministic: the flood
# fan-out, the lazy recomputations, which establishment wins on which
# alternate. Any count drift is a real behaviour change and fails.
GATED = ("events", "floods", "recomputes", "alternate_wins",
         "recoveries", "streams_opened", "open_failed")
ok = True
for topo in ("dumbbell", "mesh"):
    b, f = base[topo], fresh[topo]
    drift = [(k, b[k], f[k]) for k in GATED if b[k] != f[k]]
    if drift:
        ok = False
        for k, bv, fv in drift:
            print(f"check_bench[routing/{topo}]: FAIL — {k} drifted {bv} -> {fv}")
    else:
        print(f"check_bench[routing/{topo}]: OK — events {f['events']}, "
              f"floods {f['floods']}, recomputes {f['recomputes']}, "
              f"alt wins {f['alternate_wins']}")
    # Same collapse-only alloc gate as e10 (see above), per topology.
    ba, fa = b.get("allocs_per_event"), f.get("allocs_per_event")
    if ba is None:
        print(f"check_bench[routing/{topo}]: baseline predates "
              f"allocs_per_event; skipping alloc gate")
    elif fa > ba * alloc_slack:
        ok = False
        print(f"check_bench[routing/{topo}]: FAIL — allocs/event "
              f"regressed {ba} -> {fa} (> {alloc_slack:.2f}x)")
    else:
        print(f"check_bench[routing/{topo}]: allocs/event {fa} "
              f"(baseline {ba})")
sys.exit(0 if ok else 1)
EOF

# --- e12_pscale: parallel-executor equivalence + scaling gate -----------
# The executor's contract is absolute (every shard count produces the
# same events and the same determinism digest — the binary itself exits
# non-zero on divergence), so those are gated unconditionally. The
# *speedup* floor is physics, not correctness: it only applies when the
# machine actually has the cores to express it, and is skipped (loudly)
# on smaller machines such as 1-core CI runners.
PSCALE_BASELINE_FILE="BENCH_pscale.json"
PSCALE_MIN_SPEEDUP="${PSCALE_MIN_SPEEDUP:-1.3}"

if [[ ! -f "$PSCALE_BASELINE_FILE" ]]; then
    echo "check_bench: no $PSCALE_BASELINE_FILE baseline; skipping pscale gate" >&2
    exit 0
fi

fresh_pscale="$(mktemp)"
trap 'rm -f "$fresh_json" "$fresh_routing" "$fresh_pscale"' EXIT
cargo run --release -q -p dash-bench --bin e12_pscale -- "--$CONFIG" --label fresh --json "$fresh_pscale"

python3 - "$PSCALE_BASELINE_FILE" "$fresh_pscale" "$CONFIG" "$ALLOC_SLACK" "$PSCALE_MIN_SPEEDUP" <<'EOF'
import json, sys

baseline_file, fresh_file, config, alloc_slack, min_speedup = sys.argv[1:6]
alloc_slack, min_speedup = float(alloc_slack), float(min_speedup)

base_doc = json.load(open(baseline_file))
fresh_doc = json.load(open(fresh_file))
base_runs = [r for r in base_doc["runs"] if r.get("config") == config]
fresh_runs = [r for r in fresh_doc["runs"] if r.get("config") == config]
if not base_runs:
    print(f"check_bench: no committed '{config}' pscale baseline; skipping")
    sys.exit(0)

ok = True

# 1. All fresh shard counts must agree with each other: same events,
#    same digest. (The binary already enforces this; re-check the JSON.)
digests = {(r["events"], r["digest_hash"]) for r in fresh_runs}
if len(digests) != 1:
    ok = False
    print(f"check_bench[pscale]: FAIL — shard counts disagree: {sorted(digests)}")
else:
    ev, dig = digests.pop()
    print(f"check_bench[pscale]: {len(fresh_runs)} shard counts agree — "
          f"events {ev}, digest {dig}")

# 2. The fresh serial run must exactly reproduce the committed workload
#    (deterministic counts; drift = behaviour change, never noise).
base1 = next(r for r in base_runs if r["shards"] == 1)
fresh1 = next(r for r in fresh_runs if r["shards"] == 1)
GATED = ("events", "messages", "streams_opened", "open_failed",
         "rpc_completed", "faults_injected", "oracle_violations")
drift = [(k, base1[k], fresh1[k]) for k in GATED if base1[k] != fresh1[k]]
for k, bv, fv in drift:
    ok = False
    print(f"check_bench[pscale]: FAIL — {k} drifted {bv} -> {fv}")

# 3. allocs/event is deterministic at 1 shard only (mailbox growth order
#    wobbles it at P>1); same collapse-only gate as e10.
ba, fa = base1.get("allocs_per_event"), fresh1.get("allocs_per_event")
if ba is None:
    print("check_bench[pscale]: baseline predates allocs_per_event; skipping alloc gate")
elif fa > ba * alloc_slack:
    ok = False
    print(f"check_bench[pscale]: FAIL — allocs/event regressed "
          f"{ba} -> {fa} (> {alloc_slack:.2f}x)")
else:
    print(f"check_bench[pscale]: allocs/event {fa} (baseline {ba})")

# 4. Speedup floor at 4 shards — only meaningful with >= 4 real cores.
cores = fresh_doc.get("cores", 1)
fresh4 = next((r for r in fresh_runs if r["shards"] == 4), None)
if fresh4 is None:
    print("check_bench[pscale]: no 4-shard entry; skipping speedup gate")
elif cores < 4:
    print(f"check_bench[pscale]: {cores} core(s) — speedup floor needs >= 4, "
          f"skipping (measured {fresh4['speedup']:.2f}x at 4 shards)")
elif fresh4["speedup"] < min_speedup:
    ok = False
    print(f"check_bench[pscale]: FAIL — speedup {fresh4['speedup']:.2f}x at "
          f"4 shards on {cores} cores (floor {min_speedup:.2f}x)")
else:
    print(f"check_bench[pscale]: speedup {fresh4['speedup']:.2f}x at 4 shards "
          f"on {cores} cores (floor {min_speedup:.2f}x)")

sys.exit(0 if ok else 1)
EOF

# --- e12 semantic-oracle gate -------------------------------------------
# Separate invocation for the same reason as e10: oracle bookkeeping
# would skew allocs_per_event. Exits non-zero on any violation.
echo "check_bench[oracle]: e12_pscale --ci --oracle"
cargo run --release -q -p dash-bench --bin e12_pscale -- --ci --oracle --label oracle >/dev/null
echo "check_bench[pscale]: oracle clean at 1/2/4 shards"

# --- e13_rt: real-time backend gate -------------------------------------
# A paced run: virtual time maps 1:1 onto the wall clock, so the CI size
# is used regardless of $CONFIG (a bigger config only costs more real
# seconds, it measures nothing new here). Counts are NOT deterministic —
# real carriage timing feeds back into the schedule — so events/messages
# are held to a generous band, not equality. What IS gated hard: the
# semantic oracle at zero violations and a clean stop (quiesced or
# horizon, never the wall-clock backstop). Wall-clock speed and the
# deadline-miss rate are reported, never gated: machine load moves them.
RT_BASELINE_FILE="BENCH_rt.json"
RT_BAND_LO="${RT_BAND_LO:-0.5}"
RT_BAND_HI="${RT_BAND_HI:-2.0}"

if [[ ! -f "$RT_BASELINE_FILE" ]]; then
    echo "check_bench: no $RT_BASELINE_FILE baseline; skipping rt gate" >&2
    exit 0
fi

fresh_rt="$(mktemp)"
trap 'rm -f "$fresh_json" "$fresh_routing" "$fresh_pscale" "$fresh_rt"' EXIT
cargo run --release -q -p dash-bench --bin e13_rt -- --ci --label fresh --json "$fresh_rt"

python3 - "$RT_BASELINE_FILE" "$fresh_rt" "$RT_BAND_LO" "$RT_BAND_HI" <<'EOF'
import json, sys

baseline_file, fresh_file, lo, hi = sys.argv[1:5]
lo, hi = float(lo), float(hi)
runs = [r for r in json.load(open(baseline_file))["runs"] if r.get("config") == "ci"]
if not runs:
    print("check_bench[rt]: no committed 'ci' rt baseline; skipping")
    sys.exit(0)
base = runs[-1]
fresh = json.load(open(fresh_file))["runs"][0]

ok = True
if fresh["oracle_violations"] != 0:
    ok = False
    print(f"check_bench[rt]: FAIL — {fresh['oracle_violations']} oracle violation(s)")
if fresh["stop"] == "wallbox":
    ok = False
    print("check_bench[rt]: FAIL — hit the wall-clock backstop with work outstanding")
for k in ("events", "messages"):
    b, f = base[k], fresh[k]
    ratio = f / b if b else float("inf")
    if not (lo <= ratio <= hi):
        ok = False
        print(f"check_bench[rt]: FAIL — {k} {b} -> {f} "
              f"(ratio {ratio:.2f} outside [{lo}, {hi}])")
    else:
        print(f"check_bench[rt]: {k} {f} (baseline {b}, ratio {ratio:.2f})")
print(f"check_bench[rt]: stop {fresh['stop']}, oracle clean, "
      f"{fresh['wall_secs']:.2f} s wall for {fresh['sim_secs']:.2f} s virtual, "
      f"miss rate {fresh['miss_rate']:.4f} (reported, not gated)")
sys.exit(0 if ok else 1)
EOF
