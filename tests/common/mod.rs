//! Helpers shared across the integration-test suite.
//!
//! Each `tests/*.rs` file is its own crate, so these are pulled in with
//! `mod common;` — items unused by one test binary are dead code there,
//! hence the allows.

use std::fmt::Debug;

use dash::net::state::NetState;
use dash::net::topology::TopologyBuilder;
use dash::net::NetworkSpec;
use dash::prelude::*;

/// Two hosts, each attached to two independent ethernets — the alternate
/// network is what makes ST-level failover possible. The workhorse
/// topology of the chaos and exploration suites.
#[allow(dead_code)]
pub fn dual_homed(seed: u64) -> (NetState, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let n0 = b.network(NetworkSpec::ethernet("primary"));
    let n1 = b.network(NetworkSpec::ethernet("backup"));
    let a = b.host();
    let c = b.host();
    b.attach(a, n0).attach(a, n1).attach(c, n0).attach(c, n1);
    b.seed(seed);
    (b.build(), a, c)
}

/// Deterministic-replay assertion: execute `run` twice and require the
/// `key` projection of both runs to match exactly. Returns the first run
/// for further checks. `key` selects the deterministic portion of the
/// outcome (wall-clock readings must stay out of it).
#[allow(dead_code)]
pub fn assert_replays<T, K>(label: &str, mut run: impl FnMut() -> T, key: impl Fn(&T) -> K) -> T
where
    K: PartialEq + Debug,
{
    let first = run();
    let second = run();
    let (ka, kb) = (key(&first), key(&second));
    assert_eq!(ka, kb, "{label}: replay diverged between identical runs");
    first
}
