//! Workspace-level integration tests: the whole stack, end to end, through
//! the facade crate.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use dash::apps::bulk::{run_until_complete, start_bulk};
use dash::apps::media::{start_media, MediaSpec};
use dash::apps::taps::Dispatcher;
use dash::apps::window::{start_window_system, WindowSpec};
use dash::net::pipeline::fail_network;
use dash::net::topology::{dumbbell, two_hosts_ethernet, TopologyBuilder};
use dash::net::{NetworkId, NetworkSpec};
use dash::sim::cpu::SchedPolicy;
use dash::sim::{Sim, SimDuration};
use dash::transport::rkom;
use dash::transport::stack::StackBuilder;
use dash::transport::stream::StreamProfile;

#[test]
fn every_workload_coexists_on_one_lan() {
    let (net, a, b) = two_hosts_ethernet();
    let stack = StackBuilder::new(net)
        .cpus(SchedPolicy::Edf, SimDuration::from_micros(5))
        .build();
    let mut sim = Sim::new(stack);
    let taps = Dispatcher::install(&mut sim, &[a, b]);

    let voice = start_media(
        &mut sim,
        &taps,
        a,
        b,
        MediaSpec::voice(SimDuration::from_secs(1)),
        3,
    );
    let window = start_window_system(&mut sim, &taps, a, b, WindowSpec::default(), 5);
    let bulk = start_bulk(
        &mut sim,
        &taps,
        a,
        b,
        256 * 1024,
        4 * 1024,
        StreamProfile::bulk(),
    );
    let echoed = Rc::new(RefCell::new(0u32));
    rkom::register_service(&mut sim.state, b, 1, |_s, _c, req| req);
    for _ in 0..10 {
        let e = Rc::clone(&echoed);
        rkom::call(
            &mut sim,
            a,
            b,
            1,
            Bytes::from_static(b"x"),
            move |_s, res| {
                assert!(res.is_ok());
                *e.borrow_mut() += 1;
            },
        );
    }
    let bulk_done = run_until_complete(&mut sim, &bulk, SimDuration::from_secs(10));
    sim.run_until(sim.now() + SimDuration::from_secs(2));

    assert!(bulk_done, "bulk: {:?}", bulk.borrow());
    assert_eq!(*echoed.borrow(), 10);
    let v = voice.borrow();
    assert!(
        v.on_time_fraction() > 0.9,
        "voice on-time {:?}",
        v.on_time_fraction()
    );
    let w = window.borrow();
    assert!(w.updates_received > 0);
    assert_eq!(w.late_interactions, 0);
}

#[test]
fn stack_survives_network_failure_and_reestablishes() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let taps = Dispatcher::install(&mut sim, &[a, b]);

    let bulk = start_bulk(
        &mut sim,
        &taps,
        a,
        b,
        64 * 1024,
        2 * 1024,
        StreamProfile::bulk(),
    );
    sim.run_until(sim.now() + SimDuration::from_millis(500));
    // The WAN dies mid-transfer.
    fail_network(&mut sim, NetworkId(1));
    sim.run_until(sim.now() + SimDuration::from_secs(1));
    assert!(bulk.borrow().failed || !bulk.borrow().is_complete());

    // The network comes back; a fresh session works (clients must create
    // new RMSs after failure, §4.4).
    dash::net::pipeline::restore_network(&mut sim, NetworkId(1));
    let retry = start_bulk(
        &mut sim,
        &taps,
        a,
        b,
        64 * 1024,
        2 * 1024,
        StreamProfile::bulk(),
    );
    let done = run_until_complete(&mut sim, &retry, SimDuration::from_secs(30));
    assert!(done, "retry transfer should complete: {:?}", retry.borrow());
}

#[test]
fn deterministic_runs_are_reproducible() {
    let run = || -> (u64, u64, u64) {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let voice = start_media(
            &mut sim,
            &taps,
            a,
            b,
            MediaSpec::voice(SimDuration::from_secs(1)),
            9,
        );
        sim.run();
        let v = voice.borrow();
        (v.sent, v.received, sim.events_processed())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same world, same events");
}

#[test]
fn secure_stream_on_untrusted_internetwork() {
    // A private ST RMS across an untrusted path: the payload is encrypted
    // on every wire segment.
    let mut b = TopologyBuilder::new();
    let lan = b.network(NetworkSpec::ethernet("lan"));
    let a = b.host_on(lan);
    let c = b.host_on(lan);
    let mut sim = Sim::new(StackBuilder::new(b.build()).build());
    sim.state.net.network_mut(NetworkId(0)).wiretap = Some(Vec::new());

    use dash::subtransport::engine as st;
    use rms_core::{Message, RmsParams, RmsRequest, SecurityParams};
    let params = RmsParams::builder(32 * 1024, 1024)
        .security(SecurityParams::FULL)
        .build()
        .unwrap();
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = Rc::clone(&got);
    sim.state.on_app(move |_sim, ev| {
        if let dash::transport::stack::AppEvent::StDeliver { msg, .. } = ev {
            g.borrow_mut().push(msg);
        }
    });
    let _tok = st::create(&mut sim, a, c, &RmsRequest::exact(params), false).unwrap();
    sim.run();
    let st_rms = *sim.state.st.host(a).streams.keys().next().unwrap();
    let secret = b"the midnight launch codes".to_vec();
    st::send(&mut sim, a, st_rms, Message::new(secret.clone())).unwrap();
    sim.run();

    assert_eq!(got.borrow().len(), 1);
    assert_eq!(got.borrow()[0].payload().as_ref(), &secret[..]);
    let taps = sim
        .state
        .net
        .network(NetworkId(0))
        .wiretap
        .as_ref()
        .unwrap();
    assert!(!taps.is_empty());
    assert!(
        taps.iter()
            .all(|t| !t.windows(secret.len()).any(|w| w == &secret[..])),
        "plaintext must never appear on the wire"
    );
}

#[test]
fn unfragmented_payload_is_delivered_without_copying() {
    // The scatter-gather wire path must forward the app's payload bytes by
    // reference all the way down through ST framing, the net pipeline, and
    // back up through decode: the delivered handle views the very
    // allocation the sender handed in.
    let mut b = TopologyBuilder::new();
    let lan = b.network(NetworkSpec::ethernet("lan"));
    let a = b.host_on(lan);
    let c = b.host_on(lan);
    let mut sim = Sim::new(StackBuilder::new(b.build()).build());

    use dash::subtransport::engine as st;
    use rms_core::{Message, RmsParams, RmsRequest};
    let params = RmsParams::builder(32 * 1024, 4096).build().unwrap();
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = Rc::clone(&got);
    sim.state.on_app(move |_sim, ev| {
        if let dash::transport::stack::AppEvent::StDeliver { msg, .. } = ev {
            g.borrow_mut().push(msg);
        }
    });
    let _tok = st::create(&mut sim, a, c, &RmsRequest::exact(params), false).unwrap();
    sim.run();
    let st_rms = *sim.state.st.host(a).streams.keys().next().unwrap();
    let body = Bytes::from(vec![0xABu8; 1024]);
    st::send(&mut sim, a, st_rms, Message::new(body.clone())).unwrap();
    sim.run();

    assert_eq!(got.borrow().len(), 1);
    let delivered = got.borrow()[0].payload();
    assert_eq!(delivered.as_ref(), body.as_ref());
    assert_eq!(
        delivered.as_ptr(),
        body.as_ptr(),
        "payload was copied somewhere on the wire path"
    );
}

#[test]
fn admission_control_limits_deterministic_load_end_to_end() {
    use dash::net::pipeline::create_rms;
    use rms_core::{DelayBound, RmsParams, RmsRequest};

    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let params = RmsParams::builder(100_000, 1_000)
        .delay(DelayBound::deterministic(
            SimDuration::from_millis(200),
            SimDuration::from_micros(2),
        ))
        .error_rate(rms_core::BitErrorRate::new(1e-4).unwrap())
        .build()
        .unwrap();
    // Each stream demands ~0.5 MB/s of a 1.25 MB/s wire (90% reservable)
    // and 100 KB of the 256 KB interface buffer: two fit, the third is
    // refused.
    let mut ok = 0;
    for _ in 0..3 {
        if create_rms(&mut sim, a, b, &RmsRequest::exact(params.clone())).is_ok() {
            sim.run();
        }
    }
    for host in [a, b] {
        ok += sim.state.net.host(host).rms.len();
    }
    // 2 admitted streams -> 4 endpoints (sender+receiver each).
    assert_eq!(ok, 4, "exactly two deterministic streams admitted");
}
