//! Integration test for message lifecycle spans (`dash_sim::obs`): on the
//! full stack, each delivered message's span must visit its stages in
//! pipeline order with non-negative per-stage latencies, and the span's
//! end-to-end time must equal the `DeliveryInfo` delay the port reports.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dash::core::{RmsParams, RmsRequest};
use dash::net::topology::two_hosts_ethernet;
use dash::prelude::*;
use dash::subtransport::engine as st_engine;
use dash::subtransport::st::StEvent;

/// Canonical pipeline order; every span's stage sequence must be a
/// subsequence of this.
const ORDER: &[Stage] = &[
    Stage::TransportSend,
    Stage::StSend,
    Stage::NetSend,
    Stage::IfaceEnqueue,
    Stage::WireTx,
    Stage::NetRecv,
    Stage::StDeliver,
];

fn rank(stage: Stage) -> usize {
    ORDER.iter().position(|s| *s == stage).expect("known stage")
}

#[test]
fn spans_are_ordered_nonnegative_and_sum_to_delivery_delay() {
    let (net, a, b) = two_hosts_ethernet();
    // Piggybacking off so every message takes the full per-stage path (a
    // bundle attributes its network stages to the oldest component only).
    let config = StConfig {
        piggyback: false,
        ..StConfig::default()
    };
    let mut sim = Sim::new(
        StackBuilder::new(net)
            .st_config(config)
            .obs(true)
            .retain_spans(true)
            .build(),
    );

    // Direct ST sends so the port's DeliveryInfo is observable at the tap.
    let st_rms: Rc<RefCell<Option<StRmsId>>> = Rc::new(RefCell::new(None));
    type DeliveryTimes = HashMap<(u64, u64), (SimTime, SimTime)>;
    let deliveries: Rc<RefCell<DeliveryTimes>> = Rc::new(RefCell::new(HashMap::new()));
    {
        let st_rms = Rc::clone(&st_rms);
        let deliveries = Rc::clone(&deliveries);
        sim.state.on_app(move |_sim, ev| match ev {
            AppEvent::StEvent {
                event: StEvent::Created { st_rms: id, .. },
                ..
            } => {
                *st_rms.borrow_mut() = Some(id);
            }
            AppEvent::StDeliver { info, .. } => {
                deliveries
                    .borrow_mut()
                    .insert((info.stream, info.seq), (info.sent_at, info.delivered_at));
            }
            _ => {}
        });
    }
    let request = RmsRequest::exact(RmsParams::builder(16 * 1024, 2048).build().unwrap());
    st_engine::create(&mut sim, a, b, &request, false).expect("create accepted");
    sim.run();
    let stream = st_rms.borrow().expect("ST RMS created");

    let n_msgs = 25usize;
    for i in 0..n_msgs {
        st_engine::send(&mut sim, a, stream, Message::new(vec![i as u8; 700]))
            .expect("send accepted");
        sim.run_until(sim.now() + SimDuration::from_millis(1));
    }
    sim.run();

    let deliveries = deliveries.borrow();
    assert_eq!(deliveries.len(), n_msgs, "all messages delivered");
    let spans: Vec<SpanRecord> = sim
        .state
        .net
        .obs
        .spans()
        .iter()
        .filter(|s| s.stream == stream.0)
        .cloned()
        .collect();
    assert_eq!(spans.len(), n_msgs, "one completed span per delivery");
    assert_eq!(sim.state.net.obs.spans_dropped(), 0);

    for span in &spans {
        // At least the StSend, NetSend/IfaceEnqueue/WireTx/NetRecv leg, and
        // StDeliver must have been observed.
        assert!(
            span.stages.len() >= 4,
            "span {} visited only {:?}",
            span.span,
            span.stages
        );
        // Stage sequence follows the pipeline order, first to last.
        for pair in span.stages.windows(2) {
            let ((s0, t0), (s1, t1)) = (pair[0], pair[1]);
            assert!(
                rank(s0) < rank(s1),
                "span {}: {s0:?} then {s1:?} is out of pipeline order",
                span.span
            );
            // Non-negative per-stage latency.
            assert!(
                t1 >= t0,
                "span {}: time went backwards between {s0:?} and {s1:?}",
                span.span
            );
        }
        assert_eq!(span.stages.first().expect("non-empty").0, Stage::StSend);
        assert_eq!(span.stages.last().expect("non-empty").0, Stage::StDeliver);

        // Per-stage latencies telescope to the end-to-end time, which must
        // equal the DeliveryInfo delay exactly (both ends are stamped from
        // the same event-queue instants).
        let sum: SimDuration = span
            .stages
            .windows(2)
            .map(|p| p[1].1.saturating_since(p[0].1))
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        assert_eq!(sum, span.e2e(), "stage latencies sum to the span e2e");
        let (sent_at, delivered_at) = deliveries
            .get(&(span.stream, span.seq))
            .expect("span matches a delivery");
        assert_eq!(
            span.e2e(),
            delivered_at.saturating_since(*sent_at),
            "span {} e2e equals the DeliveryInfo delay",
            span.span
        );
        assert_eq!(span.stage_time(Stage::StSend), Some(*sent_at));
        assert_eq!(span.stage_time(Stage::StDeliver), Some(*delivered_at));
    }
}
