//! Compile-time thread-safety audit of everything that crosses a shard
//! boundary under the parallel executor (`dash::par`).
//!
//! The executor's contract is that LP *worlds* stay on their worker
//! thread while envelopes, merged outputs, and shared parameter handles
//! move between threads. These static assertions pin down exactly which
//! types are licensed to cross: if a refactor slips an `Rc`, `RefCell`,
//! or raw pointer into one of them, this file stops compiling — the
//! failure is a build error at the offending line, not a runtime race.
//!
//! Each assertion is a monomorphisation of `assert_send`/`assert_sync`,
//! so the checks cost nothing at runtime and need no `#[test]` to fire;
//! the `#[test]` below exists only so the suite reports the audit ran.

use bytes::Bytes;
use dash::core::message::Message;
use dash::core::params::{RmsParams, SharedParams};
use dash::core::wire::WireMsg;
use dash::net::packet::Packet;
use dash::net::shard::WireEnvelope;
use dash::par::{ParConfig, ShardPlan};
use dash::sim::obs::{MetricRegistry, ObsEvent};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

/// Envelopes are the only live traffic between shards: each worker
/// pushes into every other shard's mailbox, and the owner drains at the
/// epoch barrier. `Send` is load-bearing; `Sync` comes along because the
/// payload is immutable once sealed.
const _: () = {
    let _ = assert_send::<WireEnvelope>;
    let _ = assert_sync::<WireEnvelope>;
    let _ = assert_send::<Packet>;
    let _ = assert_sync::<Packet>;
};

/// The packet payload path: `WireMsg` is a scatter-gather list of
/// `Bytes` segments, and `Bytes` shares its backing store by `Arc` (a
/// vendored subset of the crates.io crate — this assertion is what keeps
/// the vendored version honest about its concurrency story).
const _: () = {
    let _ = assert_send::<WireMsg>;
    let _ = assert_sync::<WireMsg>;
    let _ = assert_send::<Bytes>;
    let _ = assert_sync::<Bytes>;
    let _ = assert_send::<Message>;
    let _ = assert_sync::<Message>;
};

/// Negotiated QoS parameter sets ride inside control packets and are
/// retained by both endpoints; `SharedParams` is `Arc<RmsParams>`, so
/// one allocation may end up referenced from several shards at once.
const _: () = {
    let _ = assert_send::<SharedParams>;
    let _ = assert_sync::<SharedParams>;
    let _ = assert_send::<RmsParams>;
    let _ = assert_sync::<RmsParams>;
};

/// Merged outputs: every worker returns its LP's observability stream
/// and metric registry to the coordinating thread, which merges them in
/// fixed host order. These only need `Send` (moved, never shared), but
/// they are plain data and `Sync` documents that.
const _: () = {
    let _ = assert_send::<ObsEvent>;
    let _ = assert_sync::<ObsEvent>;
    let _ = assert_send::<MetricRegistry>;
    let _ = assert_sync::<MetricRegistry>;
};

/// Executor configuration is captured by reference from every worker
/// thread simultaneously (`std::thread::scope`), so `Sync` is required,
/// not just nice to have.
const _: () = {
    let _ = assert_send::<ParConfig>;
    let _ = assert_sync::<ParConfig>;
    let _ = assert_send::<ShardPlan>;
    let _ = assert_sync::<ShardPlan>;
};

/// The audit is compile-time; this test just records it in the report.
#[test]
fn shard_crossing_types_are_send_and_sync() {}
