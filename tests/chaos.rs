//! Seeded chaos harness: random fault schedules against the full stack.
//!
//! Every run must uphold three invariants regardless of what the fault
//! plan does to the world underneath it:
//!
//! 1. **Exactly-once, in-order, or typed failure.** Each reliable stream
//!    either delivers every accepted message to the receiver exactly once
//!    and in order, or the sender observes a typed terminal outcome
//!    ([`EndReason::ChannelFailed`], [`EndReason::RetriesExhausted`], or a
//!    typed send error) — never a silent stall.
//! 2. **No wedge.** The event queue always drains: the simulation reaches
//!    quiescence within a generous event bound.
//! 3. **Deterministic replay.** The same seed produces the identical
//!    event trace, byte for byte.

mod common;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use common::{assert_replays, dual_homed};
use dash::net::fault::schedule_fault_plan;
use dash::net::pipeline::fail_network;
use dash::prelude::*;
use dash::sim::{ChaosConfig, FaultPlan, Rng};
use dash::transport::stream::{self, EndReason};

/// Everything one chaos run produced.
struct ChaosRun {
    /// Canonical event trace (for replay comparison).
    trace: Vec<String>,
    /// Per-session sequence numbers delivered at the receiver, in order.
    delivered: BTreeMap<u64, Vec<u64>>,
    /// Per-session count of sends the stream layer accepted.
    accepted: BTreeMap<u64, u64>,
    /// Sessions that saw a typed terminal outcome (failed end or a typed
    /// send/open error).
    failed_typed: BTreeMap<u64, String>,
    /// Events processed before quiescence.
    processed: u64,
    /// True if the run hit the event bound with work still queued.
    wedged: bool,
}

const STREAMS: u64 = 3;
const MSGS_PER_STREAM: u64 = 30;
const EVENT_BOUND: u64 = 2_000_000;

/// Drive `STREAMS` reliable streams through a seeded random fault plan.
fn run_chaos(seed: u64) -> ChaosRun {
    let (net, a, b) = dual_homed(seed);
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());

    let trace: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let delivered: Rc<RefCell<BTreeMap<u64, Vec<u64>>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let failed_typed: Rc<RefCell<BTreeMap<u64, String>>> = Rc::new(RefCell::new(BTreeMap::new()));
    for host in [a, b] {
        let trace = Rc::clone(&trace);
        let delivered = Rc::clone(&delivered);
        let failed = Rc::clone(&failed_typed);
        sim.state.on_stream(host, move |sim, ev| {
            let now = sim.now().as_nanos();
            match ev {
                StreamEvent::Opened { session } => {
                    trace
                        .borrow_mut()
                        .push(format!("{now} h{} open {session}", host.0));
                }
                StreamEvent::Delivered {
                    session,
                    msg,
                    seq,
                    delay,
                } => {
                    trace.borrow_mut().push(format!(
                        "{now} h{} dlv {session} #{seq} {}B {:?}",
                        host.0,
                        msg.len(),
                        delay
                    ));
                    delivered.borrow_mut().entry(session).or_default().push(seq);
                }
                StreamEvent::Ended { session, reason } => {
                    trace
                        .borrow_mut()
                        .push(format!("{now} h{} end {session} {reason:?}", host.0));
                    if reason != EndReason::Closed {
                        failed.borrow_mut().insert(session, format!("{reason:?}"));
                    }
                }
                StreamEvent::OpenFailed { session, .. } => {
                    trace
                        .borrow_mut()
                        .push(format!("{now} h{} openfail {session}", host.0));
                    failed.borrow_mut().insert(session, "open failed".into());
                }
                StreamEvent::Drained { .. } | StreamEvent::Incoming { .. } => {}
            }
        });
    }

    // Reliable streams with a short enough RTO that the retry budget plays
    // out inside the run when a peer is unreachable for good.
    let profile = StreamProfile {
        reliable: true,
        rto: SimDuration::from_millis(100),
        max_retries: 8,
        ..StreamProfile::default()
    };
    let accepted: Rc<RefCell<BTreeMap<u64, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let mut sessions = Vec::new();
    for _ in 0..STREAMS {
        let session = stream::open(&mut sim, a, b, profile.clone()).expect("open accepted");
        accepted.borrow_mut().insert(session, 0);
        sessions.push(session);
    }
    for (k, &session) in sessions.iter().enumerate() {
        for i in 0..MSGS_PER_STREAM {
            let accepted = Rc::clone(&accepted);
            let trace = Rc::clone(&trace);
            let failed = Rc::clone(&failed_typed);
            // Stagger streams so sends interleave with the fault window.
            let at =
                SimTime::ZERO.saturating_add(SimDuration::from_millis(20 + k as u64 * 7 + i * 40));
            sim.schedule_at(at, move |sim| {
                match stream::send(sim, a, session, Message::zeroes(256)) {
                    Ok(()) => *accepted.borrow_mut().get_mut(&session).unwrap() += 1,
                    Err(e) => {
                        trace
                            .borrow_mut()
                            .push(format!("{} send_err {session} {e:?}", sim.now().as_nanos()));
                        failed.borrow_mut().insert(session, format!("{e:?}"));
                    }
                }
            });
        }
    }

    // The fault schedule: network outages, partitions, burst loss,
    // interface stalls, and receiver crashes, all drawn from the seed.
    let cfg = ChaosConfig {
        horizon: SimDuration::from_secs(2),
        networks: vec![0, 1],
        host_pairs: vec![(a.0, b.0)],
        stall_targets: vec![(a.0, 0), (b.0, 1)],
        crash_hosts: vec![b.0],
        min_faults: 2,
        max_faults: 6,
        ..ChaosConfig::default()
    };
    let plan = FaultPlan::random(&mut Rng::new(seed), &cfg);
    schedule_fault_plan(&mut sim, &plan);

    let processed = sim.run_bounded(EVENT_BOUND);
    let wedged = sim.events_pending() > 0;

    let run = ChaosRun {
        trace: trace.borrow().clone(),
        delivered: delivered.borrow().clone(),
        accepted: accepted.borrow().clone(),
        failed_typed: failed_typed.borrow().clone(),
        processed,
        wedged,
    };
    run
}

/// Invariants 1 and 2 on one finished run.
fn check_invariants(seed: u64, run: &ChaosRun) {
    assert!(
        !run.wedged,
        "seed {seed}: event queue wedged after {} events",
        run.processed
    );
    for (&session, &sent) in &run.accepted {
        let empty = Vec::new();
        let seqs = run.delivered.get(&session).unwrap_or(&empty);
        // Exactly-once, in-order: the receiver saw the contiguous prefix
        // 0..n with no duplicates or reordering.
        for (i, &seq) in seqs.iter().enumerate() {
            assert_eq!(
                seq, i as u64,
                "seed {seed} session {session}: delivery gap/dup/reorder in {seqs:?}"
            );
        }
        // Completeness or a typed failure — never a silent shortfall.
        if (seqs.len() as u64) < sent {
            assert!(
                run.failed_typed.contains_key(&session),
                "seed {seed} session {session}: {} of {sent} delivered yet no typed \
                 failure was reported",
                seqs.len(),
            );
        }
    }
}

#[test]
fn stream_fails_over_to_alternate_network_mid_transfer() {
    let (net, a, b) = dual_homed(7);
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).retain_spans(true).build());
    let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let ended: Rc<RefCell<Vec<EndReason>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let got = Rc::clone(&got);
        let ended = Rc::clone(&ended);
        sim.state.on_stream(b, move |_sim, ev| match ev {
            StreamEvent::Delivered { seq, .. } => got.borrow_mut().push(seq),
            StreamEvent::Ended { reason, .. } => ended.borrow_mut().push(reason),
            _ => {}
        });
    }
    let profile = StreamProfile {
        reliable: true,
        rto: SimDuration::from_millis(50),
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();

    // Which network carries the established stream? Fail exactly that one.
    let carrier = sim
        .state
        .net
        .host(a)
        .rms
        .values()
        .next()
        .expect("rms up")
        .path[0];

    let n = 30u64;
    let base = sim.now();
    for i in 0..n {
        let at = base.saturating_add(SimDuration::from_millis(5 + i * 10));
        sim.schedule_at(at, move |sim| {
            stream::send(sim, a, session, Message::zeroes(512)).expect("send accepted");
        });
    }
    // Kill the carrier mid-transfer; the stream must move to the backup.
    sim.schedule_at(
        base.saturating_add(SimDuration::from_millis(120)),
        move |sim| fail_network(sim, carrier),
    );
    sim.run();

    // Every message arrived exactly once, in order, despite the dead net.
    assert_eq!(*got.borrow(), (0..n).collect::<Vec<_>>());
    assert!(
        ended.borrow().is_empty(),
        "stream must survive: {:?}",
        ended.borrow()
    );

    // The failover is visible in the metric registry.
    let reg = &mut sim.state.net.obs.registry;
    assert!(reg.counter_value("st.failover_started") >= 1);
    assert!(reg.counter_value("st.failover_completed") >= 1);
    let lat = reg.histogram("fault.recovery_latency");
    assert!(lat.count() >= 1, "recovery latency must be recorded");
    assert!(lat.mean() >= 0.0);
    assert_eq!(reg.counter_value("net.network_failed"), 1);

    // Span accounting stays consistent across the failover: stages in
    // pipeline order, time never running backwards, telescoping e2e.
    let spans = sim.state.net.obs.spans();
    assert!(!spans.is_empty(), "spans must be retained");
    for span in spans {
        for pair in span.stages.windows(2) {
            let ((_, t0), (_, t1)) = (pair[0], pair[1]);
            assert!(t1 >= t0, "span {}: time went backwards", span.span);
        }
        let sum: SimDuration = span
            .stages
            .windows(2)
            .map(|p| p[1].1.saturating_since(p[0].1))
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        assert_eq!(
            sum,
            span.e2e(),
            "span {}: stage latencies telescope",
            span.span
        );
    }
}

#[test]
fn host_crash_yields_typed_end_not_a_stall() {
    let (net, a, b) = dual_homed(11);
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());
    let ends: Rc<RefCell<Vec<EndReason>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let ends = Rc::clone(&ends);
        sim.state.on_stream(a, move |_sim, ev| {
            if let StreamEvent::Ended { reason, .. } = ev {
                ends.borrow_mut().push(reason);
            }
        });
    }
    let profile = StreamProfile {
        reliable: true,
        rto: SimDuration::from_millis(50),
        max_retries: 4,
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    stream::send(&mut sim, a, session, Message::zeroes(256)).unwrap();
    sim.run();
    // The receiver dies for good: no alternate network can help.
    dash::net::fault::crash_host(&mut sim, b);
    stream::send(&mut sim, a, session, Message::zeroes(256)).ok();
    let processed = sim.run_bounded(EVENT_BOUND);
    assert_eq!(sim.events_pending(), 0, "crash must not wedge the queue");
    assert!(processed < EVENT_BOUND);
    let ends = ends.borrow();
    assert!(
        ends.iter()
            .any(|r| matches!(r, EndReason::ChannelFailed(_) | EndReason::RetriesExhausted)),
        "sender must see a typed end, got {ends:?}"
    );
}

#[test]
fn seeded_chaos_upholds_invariants_and_replays_identically() {
    // 28 seeds, each run twice: invariants on every run, and the two
    // traces of a seed must match byte for byte.
    let mut delivered_total = 0usize;
    let mut failed_total = 0usize;
    for seed in 0..28u64 {
        let first = assert_replays(
            &format!("chaos seed {seed}"),
            || run_chaos(seed),
            |r| (r.trace.clone(), r.processed),
        );
        check_invariants(seed, &first);
        delivered_total += first.delivered.values().map(Vec::len).sum::<usize>();
        failed_total += first.failed_typed.len();
    }
    // The suite as a whole exercised both outcomes: plenty of deliveries,
    // and at least some typed failures (otherwise the plans were toothless).
    assert!(delivered_total > 100, "only {delivered_total} deliveries");
    assert!(failed_total > 0, "no run produced a typed failure");
}

mod chaos_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any seed in a wide range upholds the chaos invariants.
        #[test]
        fn any_seed_upholds_invariants(seed in 0u64..10_000) {
            let run = run_chaos(seed);
            check_invariants(seed, &run);
        }
    }
}
