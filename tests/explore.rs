//! End-to-end tests of the dash-check pipeline: coverage-guided
//! exploration finds a seeded semantic bug, the shrinker reduces it to a
//! minimal repro, and the stored replay file re-runs byte-identically.
//!
//! The seeded bug is `NetConfig::debug_force_admission`: a debug switch
//! that makes every admission decision succeed without checking the
//! ledger — exactly the class of fault admission control exists to
//! prevent, and invisible to every throughput metric (traffic still
//! flows; only the *guarantee* is broken). Only the semantic oracle can
//! see it, via the `AdmissionDecision` ledger snapshot.

mod common;

use common::assert_replays;
use dash::check::{explore, replay, run_scenario, shrink, ExploreConfig, Scenario};

/// Baselines with the admission bypass armed — the seeded bug the
/// explorer is expected to find.
fn seeded_bug_corpus() -> Vec<Scenario> {
    let mut seeds = vec![Scenario::baseline(1), Scenario::baseline(2)];
    for s in &mut seeds {
        s.force_admission = true;
    }
    seeds
}

/// Fast fixed-seed smoke: a small healthy budget explores clean. This is
/// the time-boxed entry `scripts/verify.sh` runs.
#[test]
fn exploration_smoke_passes_clean_on_healthy_stack() {
    let seeds = [Scenario::baseline(1), Scenario::baseline(2)];
    let cfg = ExploreConfig {
        budget_runs: 12,
        mutation_seed: 5,
    };
    assert!(
        explore(&seeds, &cfg).is_none(),
        "healthy stack must survive the smoke budget"
    );
}

/// The acceptance path end to end: the explorer finds the seeded
/// admission bug inside the CI budget, the shrinker reduces the find to
/// a repro of at most 10 workload operations (in practice: one), and the
/// replay file reproduces the violation deterministically.
#[test]
fn explorer_finds_seeded_admission_bug_and_shrinks_it() {
    let cfg = ExploreConfig {
        budget_runs: 150,
        mutation_seed: 1,
    };
    let (found, report) =
        explore(&seeded_bug_corpus(), &cfg).expect("seeded bug must be found within the budget");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "admission-ledger"),
        "expected an admission-ledger violation, got {:?}",
        report.violations
    );
    // Violations carry their trailing event trace for diagnosis.
    assert!(report.violations[0]
        .trace
        .iter()
        .any(|l| l.contains("admission")));

    let min = shrink(&found);
    assert!(
        min.ops.len() <= 10,
        "repro must shrink to <= 10 ops, got {}",
        min.ops.len()
    );
    assert_eq!(min.fault_seed, None, "fault plan must shrink away");
    assert_eq!(min.jitter_max_us, 0, "jitter must shrink away");

    // The minimal scenario round-trips through the replay format and
    // still reproduces the violation — byte-identically, run for run.
    let text = replay::to_text(&min);
    let parsed = replay::parse(&text).expect("replay text parses");
    assert_eq!(parsed, min);
    let rerun = assert_replays(
        "shrunk repro",
        || run_scenario(&parsed),
        |r| {
            (
                r.processed,
                r.violations
                    .iter()
                    .map(|v| format!("{} {} {}", v.invariant, v.at.as_nanos(), v.detail))
                    .collect::<Vec<_>>(),
            )
        },
    );
    assert!(
        rerun
            .violations
            .iter()
            .any(|v| v.invariant == "admission-ledger"),
        "replayed repro must reproduce the violation"
    );
}

/// The repro stored in the tree (the output of the shrink above, checked
/// in as a regression anchor) replays byte-identically and still trips
/// the admission-ledger invariant.
#[test]
fn stored_repro_replays_byte_identically() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/repros/admission_oversubscribe.repro"
    ))
    .expect("stored repro exists");
    let scenario = replay::parse(&text).expect("stored repro parses");
    // The stored file is the canonical serialization of itself.
    assert_eq!(replay::to_text(&scenario), text);

    let report = assert_replays(
        "stored repro",
        || run_scenario(&scenario),
        |r| {
            (
                r.processed,
                r.violations
                    .iter()
                    .map(|v| format!("{} {} {}", v.invariant, v.at.as_nanos(), v.detail))
                    .collect::<Vec<_>>(),
            )
        },
    );
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].invariant, "admission-ledger");

    // With the seeded bug disarmed, the same workload is clean: the
    // oversubscribing open is denied (a typed outcome, not a violation).
    let mut fixed = scenario.clone();
    fixed.force_admission = false;
    let clean = run_scenario(&fixed);
    assert!(
        clean.violations.is_empty(),
        "disarmed run must pass: {:?}",
        clean.violations
    );
}
