//! Golden determinism gate for the e10 scale and e11 routing workloads.
//!
//! Runs the scaled-down CI sizes twice in-process and demands
//! byte-identical outcomes: the network-layer trace, the full
//! metric-registry dump, and every deterministic scalar (event count,
//! message count, peak queue depth). This is the safety net that licenses
//! refactors of the event engine's internals — any change to event
//! ordering, timer semantics, or metric accounting shows up here as a
//! byte-level diff long before it corrupts an experiment.

mod common;

use common::assert_replays;
use dash_bench::e_pscale::{run_pscale, PscaleParams};
use dash_bench::e_routing::{run_routing, RoutingParams};
use dash_bench::e_scale::{run_scale, ScaleParams};

/// The full CI scenario (faults, churn, CPUs, trace recording) twice.
/// The digest covers every deterministic scalar plus the full registry
/// and trace dumps, so digest equality is byte-identity of the run.
#[test]
fn e10_ci_replay_is_byte_identical() {
    let params = ScaleParams::ci();
    let first = assert_replays("e10 ci", || run_scale(&params), |o| o.determinism_digest());

    // The workload actually exercised the stack: real traffic, real
    // control-plane churn, real faults. A silent no-op run would make the
    // byte-compare above vacuous.
    assert!(
        first.streams_opened > 20,
        "CI scenario too small: {} streams",
        first.streams_opened
    );
    assert!(first.messages > 500, "only {} messages", first.messages);
    assert!(first.events > 10_000, "only {} events", first.events);
    assert_eq!(first.faults_injected, 4);
    assert!(
        !first.trace_dump.is_empty(),
        "CI size must record the network trace"
    );
}

/// Different seeds must actually change the run (the digest is sensitive
/// to what happens, not a constant).
#[test]
fn e10_ci_digest_depends_on_seed() {
    let mut a = ScaleParams::ci();
    a.record_trace = false; // digest sensitivity is visible in the registry alone
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = run_scale(&a);
    let rb = run_scale(&b);
    assert_ne!(
        ra.determinism_digest(),
        rb.determinism_digest(),
        "changing the seed must change the outcome"
    );
}

/// The fault drill is part of the determinism envelope: with it disabled
/// the run still replays byte-identically, so any nondeterminism found by
/// the main test is attributable to the drill (and vice versa).
#[test]
fn e10_ci_without_drill_also_replays() {
    let mut params = ScaleParams::ci();
    params.fault_drill = false;
    params.churn_per_wave = 2;
    assert_replays(
        "e10 ci without drill",
        || run_scale(&params),
        |o| o.determinism_digest(),
    );
}

/// Routing-churn golden: the e11 dumbbell scenario — link-state floods,
/// admission NAKs falling back across alternates, a mid-run corridor
/// outage with lazy reconvergence and subtransport failover — replays
/// byte-identically, trace and registry included. This pins down the
/// whole event-driven reconvergence path (flood ordering, LSDB updates,
/// route-generation staleness checks) at the trace level.
#[test]
fn e11_routing_churn_replay_is_byte_identical() {
    let params = RoutingParams::ci();
    let first = assert_replays(
        "e11 dumbbell",
        || run_routing(&params),
        |o| o.determinism_digest(),
    );

    // The scenario exercised what it claims to: establishment fell back
    // to an alternate, the outage triggered floods and recomputations,
    // and streams re-homed (failovers recorded recovery latency).
    assert!(first.streams_opened > 5, "{} streams", first.streams_opened);
    assert!(first.alternate_wins >= 1, "no alternate wins");
    assert!(first.floods > 0, "no link-state floods");
    assert!(first.recomputes > 0, "no route recomputations");
    assert!(first.recoveries > 0, "no subtransport failovers");
    assert!(
        !first.trace_dump.is_empty(),
        "CI size must record the trace"
    );
}

/// Same replay guarantee on the 3×3 mesh: reconvergence around the mesh
/// centre's outage is deterministic too.
#[test]
fn e11_mesh_replay_is_byte_identical() {
    let params = RoutingParams::ci().on_mesh();
    let first = assert_replays(
        "e11 mesh",
        || run_routing(&params),
        |o| o.determinism_digest(),
    );
    assert!(first.floods > 0 && first.recomputes > 0);
}

/// Run the e12 workload at each shard count and demand the merged
/// digests (trace dump, registry dump, every deterministic scalar) are
/// byte-identical. The 1-shard run is the serial reference; equality at
/// 2 and 4 shards is the parallel executor's core contract.
fn pscale_digests(mut params: PscaleParams) -> dash_bench::e_pscale::PscaleOutcome {
    params.shards = 1;
    let serial = run_pscale(&params);
    let reference = serial.determinism_digest();
    for shards in [2, 4] {
        params.shards = shards;
        let par = run_pscale(&params);
        assert_eq!(
            reference,
            par.determinism_digest(),
            "e12 diverged at {shards} shards (serial {} vs parallel {} events)",
            serial.events,
            par.events,
        );
    }
    serial
}

/// e10-flavoured golden: the scaled multi-LAN workload (voice pacing,
/// bulk flow control, RKOM calls, churn waves, the mid-run fault drill —
/// whose dark LAN and victim crash cross shard boundaries at 2 and 4
/// shards) produces byte-identical traces at shards = 1, 2, 4.
#[test]
fn e12_scale_workload_identical_at_1_2_4_shards() {
    let first = pscale_digests(PscaleParams::ci());
    assert!(
        first.streams_opened > 15,
        "{} streams",
        first.streams_opened
    );
    assert!(first.messages > 500, "only {} messages", first.messages);
    assert_eq!(first.faults_injected, 4, "the drill must actually run");
    assert!(first.rpc_completed > 10, "only {} rpc", first.rpc_completed);
    assert!(
        !first.trace_dump.is_empty(),
        "CI size must record the network trace"
    );
}

/// e11-flavoured golden: the WAN-outage variant (primary corridor goes
/// dark mid-run, traffic re-homes over the backup WAN path) replays
/// byte-identically at shards = 1, 2, 4 — reconvergence is deterministic
/// under partitioning too.
#[test]
fn e12_routing_workload_identical_at_1_2_4_shards() {
    let first = pscale_digests(PscaleParams::routing_ci());
    assert!(
        first.streams_opened > 15,
        "{} streams",
        first.streams_opened
    );
    assert!(
        first.faults_injected > 0,
        "the WAN outage must actually fire"
    );
}
