//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use bytes::Bytes;
use dash::core::compat::{is_compatible, negotiate, PerfLimits, RmsRequest, ServiceTable};
use dash::core::delay::{DelayBound, DelayBoundKind, StatisticalSpec};
use dash::core::params::{BitErrorRate, Reliability, RmsParams, SecurityParams};
use dash::core::wire::WireMsg;
use dash::sim::time::{SimDuration, SimTime};
use dash::subtransport::frag::{fragment, FragSpec, Reassembly};
use dash::subtransport::ids::StRmsId;
use dash::subtransport::piggyback::{PendingEntry, PiggybackQueue, PushOutcome};
use dash::subtransport::wire::{self, DataFrame, Frame};

/// Pull the sequence number back out of a pre-encoded pending entry.
fn decoded_seq(w: &WireMsg) -> u64 {
    match wire::decode(w).expect("entries hold valid frames") {
        Frame::Data(d) => d.seq,
        other => panic!("unexpected frame {other:?}"),
    }
}
use dash::subtransport::ids::StToken;
use dash::subtransport::wire::ControlMsg;
use dash::transport::flow::{AckWindow, RateLimiter, ReceiverWindow};

/// Ethernet MTU used by the repo's topology helpers
/// (`NetworkSpec::ethernet`): the interesting payload boundaries for the
/// scatter-gather codec sit on either side of it.
const MTU: usize = 1536;

fn boundary_size() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(MTU - 1),
        Just(MTU),
        Just(MTU + 1),
        Just(64usize * 1024),
    ]
}

fn arb_ctrl() -> impl Strategy<Value = ControlMsg> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(host, nonce, tag)| ControlMsg::Hello { host, nonce, tag }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(host, nonce, tag)| ControlMsg::HelloAck { host, nonce, tag }),
        (any::<u64>(), arb_params(), any::<bool>()).prop_map(|(t, params, fast_ack)| {
            ControlMsg::StCreateReq {
                token: StToken(t),
                params,
                fast_ack,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(t, s)| ControlMsg::StCreateAck {
            token: StToken(t),
            st_rms: StRmsId(s),
        }),
        (any::<u64>(), any::<u8>()).prop_map(|(t, reason)| ControlMsg::StCreateNak {
            token: StToken(t),
            reason,
        }),
        any::<u64>().prop_map(|s| ControlMsg::StClose { st_rms: StRmsId(s) }),
    ]
}

fn arb_security() -> impl Strategy<Value = SecurityParams> {
    prop_oneof![
        Just(SecurityParams::NONE),
        Just(SecurityParams::FULL),
        Just(SecurityParams {
            authentication: dash::core::params::Authentication::Authenticated,
            privacy: dash::core::params::Privacy::Open,
        }),
        Just(SecurityParams {
            authentication: dash::core::params::Authentication::Unauthenticated,
            privacy: dash::core::params::Privacy::Private,
        }),
    ]
}

fn arb_kind() -> impl Strategy<Value = DelayBoundKind> {
    prop_oneof![
        Just(DelayBoundKind::BestEffort),
        Just(DelayBoundKind::Deterministic),
        (1.0f64..1e7, 1.0f64..8.0, 0.5f64..1.0)
            .prop_map(|(l, b, p)| DelayBoundKind::Statistical(StatisticalSpec::new(l, b, p))),
    ]
}

fn arb_params() -> impl Strategy<Value = RmsParams> {
    (
        any::<bool>(),
        arb_security(),
        1u64..1_000_000,
        arb_kind(),
        1u64..1_000_000_000,
        0u64..100_000,
        0.0f64..0.01,
    )
        .prop_map(|(rel, sec, capacity, kind, fixed_ns, per_byte_ns, ber)| {
            let mms = (capacity / 2).max(1);
            RmsParams {
                reliability: if rel {
                    Reliability::Reliable
                } else {
                    Reliability::Unreliable
                },
                security: sec,
                capacity,
                max_message_size: mms,
                delay: DelayBound {
                    fixed: SimDuration::from_nanos(fixed_ns),
                    per_byte: SimDuration::from_nanos(per_byte_ns),
                    kind,
                },
                error_rate: BitErrorRate::new(ber).expect("in range"),
            }
        })
}

proptest! {
    /// Compatibility is reflexive and transitive over the parameter lattice.
    #[test]
    fn compatibility_reflexive_and_transitive(
        a in arb_params(), b in arb_params(), c in arb_params()
    ) {
        prop_assert!(is_compatible(&a, &a));
        if is_compatible(&a, &b) && is_compatible(&b, &c) {
            prop_assert!(is_compatible(&a, &c));
        }
    }

    /// Whatever negotiation produces is compatible with the acceptable set.
    #[test]
    fn negotiation_respects_the_floor(floor in arb_params()) {
        let mut table = ServiceTable::new();
        table.support(
            Reliability::Reliable,
            SecurityParams::FULL,
            PerfLimits {
                min_fixed_delay: SimDuration::ZERO,
                min_per_byte_delay: SimDuration::ZERO,
                max_capacity: u64::MAX,
                max_message_size: u64::MAX,
                min_error_rate: BitErrorRate::ZERO,
                max_kind_strength: 2,
            },
        );
        let request = RmsRequest::exact(floor.clone());
        if let Ok(actual) = negotiate(&table, &request) {
            prop_assert!(is_compatible(&actual, &floor));
        }
    }

    /// The ST wire codec round-trips arbitrary data frames.
    #[test]
    fn wire_codec_round_trips(
        st_rms in any::<u64>(),
        seq in any::<u64>(),
        fast_ack in any::<bool>(),
        sent_ns in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let frame = Frame::Data(DataFrame {
            st_rms: StRmsId(st_rms),
            seq,
            frag: None,
            sent_at: SimTime::from_nanos(sent_ns),
            fast_ack,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(payload),
        });
        let decoded = wire::decode(&wire::encode(&frame)).expect("round trip");
        prop_assert_eq!(decoded, frame);
    }

    /// Data, Ctrl, and Bundle frames all round-trip through the
    /// scatter-gather codec at the MTU boundary payload sizes
    /// (0, 1, MTU-1, MTU, MTU+1, 64K).
    #[test]
    fn wire_codec_round_trips_at_boundary_sizes(
        size in boundary_size(),
        seq in any::<u64>(),
        fill in any::<u8>(),
        ctrl in arb_ctrl(),
        bundle_sizes in proptest::collection::vec(boundary_size(), 1..4),
    ) {
        let data = |sz: usize, seq: u64| DataFrame {
            st_rms: StRmsId(9),
            seq,
            frag: None,
            sent_at: SimTime::from_nanos(41),
            fast_ack: false,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(vec![fill; sz]),
        };
        let bundle: Vec<DataFrame> = bundle_sizes
            .iter()
            .enumerate()
            .map(|(i, sz)| data(*sz, i as u64))
            .collect();
        for frame in [
            Frame::Data(data(size, seq)),
            Frame::Ctrl(ctrl.clone()),
            Frame::Bundle(bundle),
        ] {
            let decoded = wire::decode(&wire::encode(&frame)).expect("round trip");
            prop_assert_eq!(decoded, frame);
        }
    }

    /// Truncating an encoded frame never panics and never yields a frame.
    #[test]
    fn wire_codec_rejects_truncation(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame::Data(DataFrame {
            st_rms: StRmsId(1),
            seq: 7,
            frag: None,
            sent_at: SimTime::ZERO,
            fast_ack: false,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(payload),
        });
        let enc = wire::encode(&frame);
        let cut = ((enc.len() as f64) * cut_fraction) as usize;
        if cut < enc.len() {
            prop_assert!(wire::decode(&enc.slice(0, cut)).is_err());
        }
    }

    /// Fragmentation followed by in-order reassembly restores the payload.
    #[test]
    fn fragment_reassemble_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 1..8192),
        chunk in 1usize..2048,
    ) {
        let bytes = WireMsg::from_bytes(Bytes::from(payload.clone()));
        let spec = FragSpec {
            st_rms: StRmsId(1),
            seq: 3,
            sent_at: SimTime::ZERO,
            fast_ack: false,
            source: None,
            target: None,
            span: None,
        };
        let frames = fragment(&spec, &bytes, chunk);
        let mut r = Reassembly::new();
        let mut out = None;
        for f in frames {
            out = r.push(f);
        }
        let done = out.expect("last fragment completes");
        prop_assert_eq!(done.payload.contiguous().as_ref(), &payload[..]);
        prop_assert_eq!(done.seq, 3);
    }

    /// The piggyback queue never exceeds the bundle budget and never loses
    /// or reorders messages.
    #[test]
    fn piggyback_queue_preserves_order_and_budget(
        sizes in proptest::collection::vec(1u64..400, 1..40),
        budget in 500u64..4096,
    ) {
        let mut q = PiggybackQueue::new();
        let mut flushed: Vec<u64> = Vec::new();
        let mut pushed = 0u64;
        for (i, len) in sizes.iter().enumerate() {
            let frame = DataFrame {
                st_rms: StRmsId(1),
                seq: i as u64,
                frag: None,
                sent_at: SimTime::ZERO,
                fast_ack: false,
                source: None,
                target: None,
                span: None,
                payload: WireMsg::from(vec![0u8; *len as usize]),
            };
            let entry = PendingEntry {
                wire: wire::encode(&Frame::Data(frame)),
                st_rms: StRmsId(1),
                sent_at: SimTime::ZERO,
                span: None,
                min_deadline: SimTime::ZERO,
                max_deadline: SimTime::from_nanos(1_000_000),
            };
            pushed += 1;
            match q.try_push(entry.clone(), budget) {
                PushOutcome::Queued { .. } => {}
                PushOutcome::WouldOverflow | PushOutcome::DeadlineConflict => {
                    if let Some(bundle) = q.flush() {
                        flushed.extend(bundle.entries.iter().map(|e| decoded_seq(&e.wire)));
                    }
                    // After a flush the entry must fit (entries are smaller
                    // than any budget we generate).
                    match q.try_push(entry, budget.max(500)) {
                        PushOutcome::Queued { .. } => {}
                        _ => prop_assert!(false, "entry must fit an empty queue"),
                    }
                }
            }
            prop_assert!(q.bundle_bytes() <= budget.max(500));
        }
        if let Some(bundle) = q.flush() {
            flushed.extend(bundle.entries.iter().map(|e| decoded_seq(&e.wire)));
        }
        prop_assert_eq!(flushed.len() as u64, pushed);
        prop_assert!(flushed.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    /// The ack window never allows more than the capacity outstanding.
    #[test]
    fn ack_window_never_exceeds_capacity(
        capacity in 1u64..100_000,
        ops in proptest::collection::vec((any::<bool>(), 1u64..2000), 1..200),
    ) {
        let mut w = AckWindow::new(capacity);
        let mut next_seq = 0u64;
        for (is_send, n) in ops {
            if is_send {
                if w.may_send(n) {
                    w.record_send(next_seq, n);
                    next_seq += 1;
                }
            } else if next_seq > 0 {
                w.ack_through(next_seq - 1);
            }
            prop_assert!(w.outstanding() <= capacity);
        }
    }

    /// The rate limiter never admits more than C bytes per period.
    #[test]
    fn rate_limiter_respects_budget(
        capacity in 1_000u64..100_000,
        sends in proptest::collection::vec((0u64..1_000_000u64, 1u64..2_000), 1..100),
    ) {
        let params = RmsParams::builder(capacity, capacity.min(1_000))
            .delay(DelayBound::best_effort_with(
                SimDuration::from_millis(100),
                SimDuration::ZERO,
            ))
            .build()
            .unwrap();
        let mut rl = RateLimiter::new(&params);
        let mut t = 0u64;
        for (advance, len) in sends {
            t += advance;
            let now = SimTime::from_nanos(t);
            if rl.may_send(now, len) {
                rl.record_send(now, len);
            }
            prop_assert!(rl.in_window() <= capacity);
        }
    }

    /// The receiver window never reports more available than the buffer.
    #[test]
    fn receiver_window_bounded(
        buffer in 1u64..100_000,
        ops in proptest::collection::vec((any::<bool>(), 1u64..5_000), 1..200),
    ) {
        let mut w = ReceiverWindow::new(buffer);
        let mut consumed = 0u64;
        for (is_send, n) in ops {
            if is_send {
                if w.may_send(n) {
                    w.record_send(n);
                }
            } else {
                consumed += n;
                w.update_consumed(consumed);
            }
            prop_assert!(w.available() <= buffer);
        }
    }
}
