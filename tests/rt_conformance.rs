//! Sim-vs-rt conformance: the real-time backend must be the *same stack*,
//! not a lookalike.
//!
//! Three levels of evidence, strongest first:
//!
//! 1. **Exact** — the identical workload run under the virtual driver and
//!    under the monotonic (wall-pacing) driver produces identical logical
//!    `ObsEvent` sequences and an identical end-state metrics registry.
//!    With the null substrate both runs execute the same event queue in
//!    the same order; wall pacing may only change *when* events run,
//!    never *what* runs.
//! 2. **Tolerant** — moving carriage onto the threaded in-memory datagram
//!    substrate (zero loss) keeps session-level outcomes intact: every
//!    byte delivered, every call answered, the semantic oracle clean.
//!    Exact traces are out of reach here by design (real carriage timing
//!    feeds back into virtual arrival times), so the assertion drops to
//!    what must survive any legal timing: application outcomes and
//!    invariants.
//! 3. **Adversarial** — with injected loss on the substrate, the
//!    schedule-robust oracle invariants (delivery integrity, per-stream
//!    FIFO, completion) still hold at zero violations while the loss is
//!    demonstrably exercised.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dash::apps::bulk::{start_bulk, BulkStats};
use dash::apps::taps::Dispatcher;
use dash::check::{oracle, OracleConfig};
use dash::net::topology::two_hosts_ethernet;
use dash::prelude::*;
use dash::rt::{run_rt, MemConfig, MemDatagram, Monotonic, RtOptions, SimLinks, Substrate};
use dash::sim::driver::{TimeDriver, VirtualDriver};
use dash::transport::rkom;

/// Records `name + payload` per event — the logical sequence, timestamps
/// deliberately excluded (the ISSUE's conformance contract; payload
/// fields carry only virtual quantities).
struct LogicalTrace {
    lines: Rc<RefCell<Vec<String>>>,
}

impl ObsSink for LogicalTrace {
    fn on_event(&mut self, _time: SimTime, event: &ObsEvent) {
        self.lines.borrow_mut().push(format!("{event:?}"));
    }
}

/// The shared workload: one reliable bulk transfer each way plus a burst
/// of RKOM echo calls — enough to exercise streams, ST channels, ARQ,
/// and flow control, small enough that a wall-paced run stays subsecond.
struct Workload {
    sim: Sim<Stack>,
    bulk_ab: Rc<RefCell<BulkStats>>,
    bulk_ba: Rc<RefCell<BulkStats>>,
    rkom_ok: Rc<RefCell<u32>>,
    rkom_n: u32,
}

fn build_workload() -> Workload {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());
    let taps = Dispatcher::install(&mut sim, &[a, b]);
    // A tight RTO keeps retransmission stalls short in wall time.
    let mut profile = StreamProfile::bulk();
    profile.rto = SimDuration::from_millis(25);
    let bulk_ab = start_bulk(&mut sim, &taps, a, b, 48 * 1024, 4 * 1024, profile.clone());
    let bulk_ba = start_bulk(&mut sim, &taps, b, a, 24 * 1024, 4 * 1024, profile);
    rkom::register_service(&mut sim.state, b, 9, |_sim, _client, req| req);
    let rkom_ok = Rc::new(RefCell::new(0u32));
    let rkom_n = 8;
    for i in 0..rkom_n {
        let ok = Rc::clone(&rkom_ok);
        rkom::call(
            &mut sim,
            a,
            b,
            9,
            Bytes::from(vec![i as u8; 64]),
            move |_sim, res| {
                if res.is_ok() {
                    *ok.borrow_mut() += 1;
                }
            },
        );
    }
    Workload {
        sim,
        bulk_ab,
        bulk_ba,
        rkom_ok,
        rkom_n,
    }
}

/// Run the workload under `driver` with the null substrate; return the
/// logical trace and the end-state registry dump.
fn run_with_driver(driver: &mut dyn TimeDriver) -> (Vec<String>, String) {
    let mut w = build_workload();
    let lines = Rc::new(RefCell::new(Vec::new()));
    w.sim.state.net.obs.add_boxed_sink(Box::new(LogicalTrace {
        lines: Rc::clone(&lines),
    }));
    let mut links = SimLinks;
    let report = run_rt(
        &mut w.sim,
        driver,
        &mut links,
        &RtOptions {
            max_wall: Some(Duration::from_secs(120)),
            ..RtOptions::default()
        },
    );
    assert!(report.quiesced(), "stop {:?}", report.stop);
    assert!(w.bulk_ab.borrow().is_complete());
    assert!(w.bulk_ba.borrow().is_complete());
    assert_eq!(*w.rkom_ok.borrow(), w.rkom_n);
    let trace = lines.borrow().clone();
    (trace, w.sim.state.net.obs.registry.to_json_lines())
}

#[test]
fn virtual_and_monotonic_drivers_execute_identically() {
    let (virt_trace, virt_registry) = run_with_driver(&mut VirtualDriver::new());
    let (mono_trace, mono_registry) = run_with_driver(&mut Monotonic::start());
    assert!(!virt_trace.is_empty());
    // Identical logical event sequences, event by event...
    assert_eq!(virt_trace.len(), mono_trace.len());
    for (i, (v, m)) in virt_trace.iter().zip(mono_trace.iter()).enumerate() {
        assert_eq!(v, m, "logical trace diverges at event {i}");
    }
    // ...and identical end-state metrics.
    assert_eq!(virt_registry, mono_registry);
}

#[test]
fn memdatagram_substrate_preserves_session_outcomes() {
    let mut w = build_workload();
    w.sim.state.net.enable_wire_divert();
    let (sink, handle) = oracle(OracleConfig {
        check_completion: true,
        // Wall lag feeds real carriage timing back into arrival times —
        // the same reason det-delay is off for jittered schedules.
        check_det_delay: false,
        check_fifo_gaps: true,
    });
    w.sim.state.net.obs.add_boxed_sink(Box::new(sink));
    let mut driver = Monotonic::start();
    let mut substrate = MemDatagram::new(MemConfig::default());
    let report = run_rt(
        &mut w.sim,
        &mut driver,
        &mut substrate,
        &RtOptions {
            max_wall: Some(Duration::from_secs(120)),
            ..RtOptions::default()
        },
    );
    handle.finish(w.sim.now());
    assert!(report.quiesced(), "stop {:?}", report.stop);
    // Every wire hop really crossed the substrate, and none were lost.
    assert!(report.transmitted > 0);
    assert_eq!(report.injected, report.transmitted);
    assert_eq!(substrate.dropped(), 0);
    assert_eq!(substrate.in_flight(), 0);
    // Session outcomes match the virtual run's.
    assert!(w.bulk_ab.borrow().is_complete(), "{:?}", w.bulk_ab.borrow());
    assert!(w.bulk_ba.borrow().is_complete(), "{:?}", w.bulk_ba.borrow());
    assert_eq!(*w.rkom_ok.borrow(), w.rkom_n);
    let violations = handle.violations();
    assert!(violations.is_empty(), "oracle: {violations:?}");
}

#[test]
fn oracle_holds_on_lossy_realtime_run() {
    // The loss model only touches what the layers above are built to
    // recover: best-effort RMS data (see `Substrate::transmit`). The
    // interesting claim is about the steady state, so the run is handed
    // to the lossy substrate only once both directions' reverse ack
    // channels are live — before that point a receiver parks its
    // cumulative acks (`Session::ack_ready`), so a sender whose data is
    // dropped retransmits into a void until its retry budget kills the
    // session: a *typed* failure the oracle accepts, but a useless test.
    // The transfers are sized so plenty of data remains at that cutover
    // (the ack channels come up around t≈240ms under this load, measured;
    // the condition below adapts if that drifts).
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());
    let taps = Dispatcher::install(&mut sim, &[a, b]);
    let mut profile = StreamProfile::bulk();
    profile.rto = SimDuration::from_millis(25);
    let bulk_ab = start_bulk(&mut sim, &taps, a, b, 768 * 1024, 4 * 1024, profile.clone());
    let bulk_ba = start_bulk(&mut sim, &taps, b, a, 512 * 1024, 4 * 1024, profile);
    let (sink, handle) = oracle(OracleConfig {
        check_completion: true,
        check_det_delay: false,
        check_fifo_gaps: true,
    });
    sim.state.net.obs.add_boxed_sink(Box::new(sink));
    let acks_live = |sim: &Sim<Stack>| {
        let ready = |h, s| {
            sim.state
                .stream
                .session(h, s)
                .map(|x| x.ack_ready())
                .unwrap_or(false)
        };
        ready(b, bulk_ab.borrow().session) && ready(a, bulk_ba.borrow().session)
    };
    while !acks_live(&sim) && sim.step() {}
    assert!(acks_live(&sim), "ack channels never came up");
    assert!(
        !bulk_ab.borrow().is_complete(),
        "nothing left for the rt phase"
    );
    assert!(
        !bulk_ba.borrow().is_complete(),
        "nothing left for the rt phase"
    );

    sim.state.net.enable_wire_divert();
    // Anchor so the wall clock starts where virtual time already is: the
    // warm-up backlog is not fake lag.
    let mut driver = Monotonic::anchored_at(
        std::time::Instant::now() - Duration::from_nanos(sim.now().as_nanos()),
    );
    // 8% deterministic loss: every session must recover via ARQ, and the
    // chance that no drop occurs at all is negligible.
    let mut substrate = MemDatagram::new(MemConfig {
        loss_per_mille: 80,
        seed: 0xC0FFEE,
        ..MemConfig::default()
    });
    let report = run_rt(
        &mut sim,
        &mut driver,
        &mut substrate,
        &RtOptions {
            max_wall: Some(Duration::from_secs(120)),
            ..RtOptions::default()
        },
    );
    handle.finish(sim.now());
    assert!(report.quiesced(), "stop {:?}", report.stop);
    // The loss was real...
    assert!(report.substrate_dropped > 0, "loss never exercised");
    // ...and the reliable layers recovered everything anyway.
    assert!(bulk_ab.borrow().is_complete(), "{:?}", bulk_ab.borrow());
    assert!(bulk_ba.borrow().is_complete(), "{:?}", bulk_ba.borrow());
    let violations = handle.violations();
    assert!(violations.is_empty(), "oracle: {violations:?}");
}
