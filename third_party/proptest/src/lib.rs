//! Offline vendored minimal property-testing harness.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! small slice of the `proptest` API the workspace's property tests use:
//! the `Strategy` trait (ranges, tuples, [`prelude::Just`], `prop_map`,
//! [`collection::vec`], `any::<T>()`, `prop_oneof!`) and the `proptest!` /
//! `prop_assert!` macros. Generation is a deterministic splitmix64 stream,
//! so failures reproduce exactly; there is no shrinking. Swap the path
//! dependency back to crates.io to regain full proptest.

/// Number of random cases each `proptest!` test runs.
pub const NUM_CASES: u32 = 96;

/// Deterministic random source for strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh generator with a fixed seed (deterministic test runs).
    pub fn new() -> Self {
        TestRng {
            state: 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample range");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for TestRng {
    fn default() -> Self {
        TestRng::new()
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<T> {
        /// The alternatives.
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span.max(1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    }

    /// Types with a canonical full-range strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The full-range strategy for `T` (`any::<T>()`).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len` (see [`vec()`](vec())).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element`-generated values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything the `proptest!` test style needs in scope.
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies that all yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+],
        }
    };
}

/// Assert inside a property (plain panic; this shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Define property tests: each `arg in strategy` binding is sampled
/// [`NUM_CASES`] times and the body re-run.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::TestRng::new();
                for _ in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A,
        B(u64),
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u64..4, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b)),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn oneof_and_collections(
            kind in prop_oneof![
                Just(Kind::A),
                (1u64..100).prop_map(Kind::B),
            ],
            items in collection::vec(any::<u8>(), 1..16),
        ) {
            match kind {
                Kind::A => {}
                Kind::B(n) => prop_assert!((1..100).contains(&n)),
            }
            prop_assert!(!items.is_empty() && items.len() < 16);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new();
        let mut b = crate::TestRng::new();
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
