//! Offline vendored minimal benchmark harness.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! slice of the `criterion` API the workspace's benches use: [`Criterion`],
//! benchmark groups, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. It times a fixed number of iterations with
//! `std::time::Instant` and prints mean per-iteration wall time — enough
//! for relative comparisons; swap the path dependency back to crates.io
//! for statistically rigorous runs.

use std::time::{Duration, Instant};

/// Opaque value barrier to keep the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-function timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up round, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&name.to_string(), b.iters, b.elapsed, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Finalize (kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.iters,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("inner", |b| b.iter(|| black_box(vec![0u8; 64].len())));
        g.finish();
    }

    criterion_group!(simple, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn groups_run() {
        simple();
        configured();
    }
}
