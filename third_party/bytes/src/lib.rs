//! Offline vendored subset of the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of the `bytes` API it actually uses:
//! cheaply cloneable immutable [`Bytes`] (a shared buffer plus a view
//! range), growable [`BytesMut`], and the big-endian cursor traits
//! [`Buf`]/[`BufMut`]. Semantics match the real crate for this subset;
//! swap the path dependency back to crates.io to drop the shim.
//!
//! One extension beyond the real crate's API: [`Bytes::merge_contiguous`]
//! rejoins two views of the same backing buffer without copying. The
//! workspace's scatter-gather wire layer uses it to coalesce adjacent
//! payload slices (e.g. fragments being reassembled) back into a single
//! zero-copy view.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`] view: a shared heap buffer or a
/// borrowed `'static` slice (the latter costs no allocation, so
/// `Bytes::new()` and `Bytes::from_static` are free).
#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static slice without copying or allocating —
    /// the same code path real payloads take, just with a `'static`
    /// backing store.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            begin <= finish && finish <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + finish,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Rejoin two views that are adjacent windows of the same backing
    /// buffer into one view, without copying. Returns `None` when the
    /// views have different backings or are not exactly adjacent
    /// (`a` must end where `b` starts). Empty views join with anything.
    pub fn merge_contiguous(a: &Bytes, b: &Bytes) -> Option<Bytes> {
        if a.is_empty() {
            return Some(b.clone());
        }
        if b.is_empty() {
            return Some(a.clone());
        }
        let same_backing = match (&a.repr, &b.repr) {
            (Repr::Shared(x), Repr::Shared(y)) => Arc::ptr_eq(x, y),
            (Repr::Static(x), Repr::Static(y)) => std::ptr::eq(x.as_ptr(), y.as_ptr()),
            _ => false,
        };
        if same_backing && a.end == b.start {
            Some(Bytes {
                repr: a.repr.clone(),
                start: a.start,
                end: b.end,
            })
        } else {
            None
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(data) => &data[self.start..self.end],
            Repr::Static(data) => &data[self.start..self.end],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            repr: Repr::Shared(Arc::new(data)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let tail = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, tail),
        }
    }

    /// Take the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Big-endian read cursor over a contiguous buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Big-endian write cursor onto a growable buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian `f64`.
    fn put_f64(&mut self, n: f64) {
        self.put_u64(n.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090a0b0c0d0e);
        b.put_f64(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.split_to(3).as_ref(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let full = b.slice(..);
        assert_eq!(full, b);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4]);
    }

    #[test]
    fn from_static_is_zero_copy() {
        static PAGE: [u8; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        let a = Bytes::from_static(&PAGE);
        let b = Bytes::from_static(&PAGE);
        // Both views point straight at the static storage.
        assert_eq!(a.as_ptr(), PAGE.as_ptr());
        assert_eq!(b.as_ptr(), PAGE.as_ptr());
        assert_eq!(a.slice(2..5).as_ref(), &[3, 4, 5]);
        let mut c = a.clone();
        assert_eq!(c.split_to(3).as_ref(), &[1, 2, 3]);
        assert_eq!(c.as_ref(), &[4, 5, 6, 7, 8]);
    }

    #[test]
    fn merge_contiguous_rejoins_adjacent_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5, 6]);
        let head = b.slice(0..3);
        let tail = b.slice(3..6);
        let joined = Bytes::merge_contiguous(&head, &tail).expect("adjacent");
        assert_eq!(joined, b);
        assert_eq!(joined.as_ptr(), b.as_ptr());
        // Out of order or gapped views do not join.
        assert!(Bytes::merge_contiguous(&tail, &head).is_none());
        let gapped = b.slice(4..6);
        assert!(Bytes::merge_contiguous(&head, &gapped).is_none());
        // Different backings do not join.
        let other = Bytes::from(vec![7, 8]);
        assert!(Bytes::merge_contiguous(&head, &other).is_none());
        // Empty views join with anything.
        assert_eq!(Bytes::merge_contiguous(&Bytes::new(), &tail).unwrap(), tail);
        assert_eq!(Bytes::merge_contiguous(&head, &Bytes::new()).unwrap(), head);
    }

    #[test]
    fn bytes_mut_split_variants() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(b.as_ref(), b" world");
        let all = b.split();
        assert!(b.is_empty());
        assert_eq!(all.as_ref(), b" world");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u64();
    }
}
