//! Facade crate for the DASH / Real-Time Message Stream (RMS) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use dash::...`. See `README.md` for the map.

pub use dash_apps as apps;
pub use dash_baseline as baseline;
pub use dash_check as check;
pub use dash_net as net;
pub use dash_par as par;
pub use dash_rt as rt;
pub use dash_security as security;
pub use dash_sim as sim;
pub use dash_subtransport as subtransport;
pub use dash_transport as transport;
pub use rms_core as core;

/// The types nearly every program built on the stack touches: the
/// simulator, the assembled stack and its builder, messages, stream
/// profiles, ids, and the observability surface.
///
/// ```
/// use dash::prelude::*;
///
/// let (net, _a, _b) = dash::net::topology::two_hosts_ethernet();
/// let stack = StackBuilder::new(net).st_config(StConfig::default()).build();
/// let sim = Sim::new(stack);
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
pub mod prelude {
    pub use dash_net::fault::{apply_fault, crash_host, restart_host, schedule_fault_plan};
    pub use dash_net::ids::{HostId, NetRmsId, NetworkId};
    pub use dash_par::{run_sharded, ParConfig, ShardPlan, StackLp};
    pub use dash_rt::{run_rt, MemConfig, MemDatagram, Monotonic, RtOptions, SimLinks};
    pub use dash_sim::driver::{TimeDriver, VirtualDriver};
    pub use dash_sim::engine::Sim;
    pub use dash_sim::fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan, GilbertElliott};
    pub use dash_sim::obs::{
        JsonLinesSink, MetricRegistry, Obs, ObsEvent, ObsSink, SpanRecord, Stage,
    };
    pub use dash_sim::time::{SimDuration, SimTime};
    pub use dash_subtransport::ids::{StRmsId, StToken};
    pub use dash_subtransport::st::StConfig;
    pub use dash_transport::stack::{AppEvent, Stack, StackBuilder};
    pub use dash_transport::stream::{StreamEvent, StreamProfile};
    pub use rms_core::message::{Label, Message};
}
