//! Facade crate for the DASH / Real-Time Message Stream (RMS) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use dash::...`. See `README.md` for the map.

pub use dash_apps as apps;
pub use dash_baseline as baseline;
pub use dash_net as net;
pub use dash_security as security;
pub use dash_sim as sim;
pub use dash_subtransport as subtransport;
pub use dash_transport as transport;
pub use rms_core as core;
