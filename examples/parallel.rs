//! Parallel simulation with deterministic serial-equivalent replay.
//!
//! Builds two Ethernets joined by a long-haul WAN, gives every host a
//! paced voice stream (one of them crossing the WAN), and runs the same
//! workload twice under `dash::par`: once on a single worker thread and
//! once partitioned across four. The merged metric registries come out
//! byte-identical — partitioning changes wall-clock, never results.
//!
//! ```text
//! cargo run --release --example parallel
//! ```
//!
//! See DESIGN.md "Parallel execution model" for the epoch/lookahead math
//! this example rides on.

use dash::net::state::NetState;
use dash::net::topology::TopologyBuilder;
use dash::net::NetworkSpec;
use dash::par::{cross_shard_lookahead, local_lookahead};
use dash::prelude::*;
use dash::transport::stream;

const SEED: u64 = 7;
const HOSTS_PER_LAN: u32 = 3;
const HOSTS: u32 = 2 * HOSTS_PER_LAN + 2; // + one gateway per LAN
const HORIZON: SimDuration = SimDuration::from_millis(400);

/// The topology program every logical process replays identically:
/// two LANs bridged onto a 30 ms WAN by one gateway each.
fn build_net() -> NetState {
    let mut tb = TopologyBuilder::new();
    tb.seed(SEED);
    let wan = tb.network(NetworkSpec::long_haul("wan"));
    for lan in 0..2 {
        let net = tb.network(NetworkSpec::ethernet(format!("lan{lan}")));
        for _ in 0..HOSTS_PER_LAN {
            tb.host_on(net);
        }
        tb.gateway(net, wan);
    }
    tb.build()
}

/// Build host `owner`'s logical process: the full replica world plus
/// this host's share of the workload (a stream to its LAN neighbour;
/// host 0's stream crosses the WAN to host 3 on the other LAN).
fn build_lp(owner: u32) -> StackLp {
    let owner = HostId(owner);
    let mut sim = Sim::new(StackBuilder::new(build_net()).obs(true).build());

    // Every replica computes the same plan; each acts only on the
    // streams its owner sources. Gateways (hosts 3 and 7 in build
    // order) source nothing.
    let lan_of = |h: u32| h / (HOSTS_PER_LAN + 1);
    let is_gateway = |h: u32| h % (HOSTS_PER_LAN + 1) == HOSTS_PER_LAN;
    let dst_of = |h: u32| {
        if h == 0 {
            HOSTS_PER_LAN + 1 // cross-WAN: first host of the other LAN
        } else {
            lan_of(h) * (HOSTS_PER_LAN + 1) + (h + 1) % HOSTS_PER_LAN
        }
    };
    if !is_gateway(owner.0) {
        let dst = HostId(dst_of(owner.0));
        sim.schedule_in(SimDuration::from_millis(1), move |sim| {
            let session = stream::open(sim, owner, dst, StreamProfile::default())
                .expect("negotiation succeeds on an idle network");
            for i in 0..10u64 {
                sim.schedule_in(SimDuration::from_millis(20 * i), move |sim| {
                    let _ = stream::send(sim, owner, session, Message::zeroes(160));
                });
            }
        });
    }
    StackLp::new(sim, owner, SEED)
}

/// Run the workload on `shards` worker threads; return the merged
/// registry dump (the determinism digest) and total deliveries.
fn run(shards: u32) -> (String, u64) {
    // LAN-aligned placement: each LAN and its gateway share a shard, so
    // only the 30 ms WAN spans shards and the epoch is the WAN delay.
    let groups: Vec<Vec<u32>> = (0..2)
        .map(|lan| {
            (0..=HOSTS_PER_LAN)
                .map(|i| lan * (HOSTS_PER_LAN + 1) + i)
                .collect()
        })
        .collect();
    let plan = ShardPlan::grouped(HOSTS, shards, &groups);
    let proto = build_net();
    let cfg = ParConfig {
        horizon: SimTime::ZERO.saturating_add(HORIZON),
        cross_lookahead: cross_shard_lookahead(&proto, &plan),
        local_lookahead: local_lookahead(&proto),
    };
    if shards > 1 {
        println!(
            "  {} LPs on {shards} shards, epoch bound {} (cross), micro-window {} (local)",
            HOSTS, cfg.cross_lookahead, cfg.local_lookahead,
        );
    }
    let outs = run_sharded(&plan, &cfg, build_lp, |mut lp| {
        std::mem::take(&mut lp.sim.state.net.obs.registry)
    });
    // Fixed merge order (host ascending) — independent of the plan.
    let mut registry = dash::sim::obs::MetricRegistry::new();
    for part in &outs {
        registry.merge_from(part);
    }
    let delivered = registry.counter_value("stream.deliver");
    (registry.to_json_lines(), delivered)
}

fn main() {
    println!("serial reference (1 shard):");
    let (serial, delivered_1) = run(1);
    println!("  {delivered_1} messages delivered");

    println!("parallel run (4 shards):");
    let (parallel, delivered_4) = run(4);
    println!("  {delivered_4} messages delivered");

    assert_eq!(delivered_1, delivered_4);
    assert_eq!(
        serial, parallel,
        "the merged registries must be byte-identical"
    );
    println!("---");
    println!(
        "merged registries byte-identical: {} bytes, {} metric lines",
        serial.len(),
        serial.lines().count()
    );
}
