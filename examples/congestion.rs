//! Congestion at a shared gateway: RMS capacity enforcement vs the TCP
//! baseline with source quench (paper §4.4).
//!
//! Three flows share a 400 kb/s bottleneck behind a gateway with 16 KB of
//! buffer. Rate-enforced RMS streams never overrun it; TCP discovers the
//! bottleneck by filling the buffer and drowning in quenches.
//!
//! ```text
//! cargo run --release --example congestion
//! ```

use dash::apps::bulk::start_bulk;
use dash::apps::taps::Dispatcher;
use dash::baseline::tcp;
use dash::core::delay::DelayBound;
use dash::net::topology::TopologyBuilder;
use dash::net::{HostId, NetworkSpec};
use dash::sim::{Sim, SimDuration};
use dash::transport::flow::CapacityEnforcement;
use dash::transport::stack::{Stack, StackBuilder};
use dash::transport::stream::StreamProfile;

fn build() -> (Sim<Stack>, Vec<HostId>, Vec<HostId>, HostId) {
    let mut b = TopologyBuilder::new();
    let lan_a = b.network(NetworkSpec::ethernet("lan-a"));
    let mut wan = NetworkSpec::long_haul("wan");
    wan.rate_bps = 400_000.0;
    wan.drop_prob = 0.0;
    wan.caps.raw_ber = 0.0;
    let wan = b.network(wan);
    let lan_b = b.network(NetworkSpec::ethernet("lan-b"));
    let senders: Vec<HostId> = (0..3).map(|_| b.host_on(lan_a)).collect();
    let g1 = b.gateway(lan_a, wan);
    let _g2 = b.gateway(wan, lan_b);
    let receivers: Vec<HostId> = (0..3).map(|_| b.host_on(lan_b)).collect();
    b.iface_queue_limit(Some(16 * 1024));
    (
        Sim::new(StackBuilder::new(b.build()).build()),
        senders,
        receivers,
        g1,
    )
}

fn main() {
    // --- RMS flows, rate-enforced to their admitted share ---
    let (mut sim, senders, receivers, g1) = build();
    let all: Vec<HostId> = senders.iter().chain(receivers.iter()).copied().collect();
    let taps = Dispatcher::install(&mut sim, &all);
    let mut flows = Vec::new();
    for (s, r) in senders.iter().zip(receivers.iter()) {
        // Burst allowance sized so three flows fit the 16 KB gateway buffer.
        let profile = StreamProfile {
            capacity: 4 * 1024,
            max_message: 512,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(1200),
                SimDuration::from_micros(40),
            ),
            enforcement: CapacityEnforcement::RateBased,
            ..StreamProfile::default()
        };
        flows.push(start_bulk(&mut sim, &taps, *s, *r, 24 * 1024, 512, profile));
    }
    let end = sim.now() + SimDuration::from_secs(20);
    while sim.now() < end {
        sim.run_until(sim.now() + SimDuration::from_millis(100));
        if sim.events_pending() == 0 {
            break;
        }
    }
    let rms_drops = sim.state.net.host(g1).ifaces[1].stats.overflow_drops.get();
    let rms_bytes: u64 = flows.iter().map(|f| f.borrow().delivered_bytes).sum();
    println!(
        "RMS rate-enforced: {} gateway drops, {} KB delivered",
        rms_drops,
        rms_bytes / 1024
    );

    // --- TCP flows through the same bottleneck ---
    let (mut sim, senders, receivers, g1) = build();
    for (i, r) in receivers.iter().enumerate() {
        tcp::listen(&mut sim, *r, 8000 + i as u16);
    }
    let mut conns = Vec::new();
    for (i, (s, r)) in senders.iter().zip(receivers.iter()).enumerate() {
        conns.push((*s, tcp::connect(&mut sim, *s, *r, 8000 + i as u16)));
    }
    sim.run();
    for (s, c) in &conns {
        tcp::send(&mut sim, *s, *c, &vec![0u8; 64 * 1024]);
    }
    let end = sim.now() + SimDuration::from_secs(20);
    while sim.now() < end {
        sim.run_until(sim.now() + SimDuration::from_millis(100));
        if sim.events_pending() == 0 {
            break;
        }
    }
    let tcp_drops = sim.state.net.host(g1).ifaces[1].stats.overflow_drops.get();
    let tcp_bytes: u64 = receivers
        .iter()
        .flat_map(|r| sim.state.tcp.host(*r).conns.values())
        .map(|c| c.stats.bytes_delivered.get())
        .sum();
    println!(
        "TCP + source quench: {} gateway drops, {} quenches, {} KB delivered",
        tcp_drops,
        sim.state.net.stats.quenches_sent.get(),
        tcp_bytes / 1024
    );
    assert!(
        rms_drops < tcp_drops,
        "capacity enforcement should protect the gateway buffers"
    );
}
