//! A network window system (paper §2.5, ref [7]).
//!
//! Mouse/keyboard events flow user → application on a low-capacity RMS;
//! graphics updates flow back on a higher-capacity one. The example prints
//! the interaction (event → paint) latency distribution.
//!
//! ```text
//! cargo run --example window_system
//! ```

use dash::apps::taps::Dispatcher;
use dash::apps::window::{start_window_system, WindowSpec};
use dash::net::topology::two_hosts_ethernet;
use dash::sim::{Sim, SimDuration};
use dash::transport::stack::StackBuilder;

fn main() {
    let (net, user, app) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let taps = Dispatcher::install(&mut sim, &[user, app]);

    let spec = WindowSpec {
        event_rate: 80.0, // a busy user
        duration: SimDuration::from_secs(3),
        ..WindowSpec::default()
    };
    let stats = start_window_system(&mut sim, &taps, user, app, spec, 99);
    sim.run();

    let s = stats.borrow();
    let mut lat = s.interaction_latency.clone();
    println!("input events sent:       {}", s.events_sent);
    println!("events reaching the app: {}", s.events_received);
    println!("graphics updates painted: {}", s.updates_received);
    println!(
        "interaction latency: mean {:.2} ms, p99 {:.2} ms ({} over the 100 ms budget)",
        lat.mean() * 1e3,
        lat.quantile(0.99) * 1e3,
        s.late_interactions
    );
    assert!(s.updates_received > 0);
    assert_eq!(s.late_interactions, 0, "a quiet LAN should feel instant");
}
