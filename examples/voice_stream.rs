//! Digitized voice next to a bulk transfer — the paper's motivating mixed
//! workload (§1, §2.5).
//!
//! A 64 kb/s voice call shares a 10 Mb/s Ethernet with a saturating bulk
//! transfer. Because the voice stream's RMS has a low delay bound and the
//! bulk stream's a high one, deadline-ordered interfaces (§4.1, §2.5) keep
//! the voice frames on time anyway.
//!
//! ```text
//! cargo run --example voice_stream
//! ```

use dash::apps::bulk::{run_until_complete, start_bulk};
use dash::apps::media::{start_media, MediaSpec};
use dash::apps::taps::Dispatcher;
use dash::net::topology::two_hosts_ethernet;
use dash::sim::{Sim, SimDuration};
use dash::transport::stack::StackBuilder;
use dash::transport::stream::StreamProfile;

fn main() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let taps = Dispatcher::install(&mut sim, &[a, b]);

    // A two-second call...
    let voice = start_media(
        &mut sim,
        &taps,
        a,
        b,
        MediaSpec::voice(SimDuration::from_secs(2)),
        7,
    );
    // ...competing with a 768 KB transfer.
    let bulk = start_bulk(
        &mut sim,
        &taps,
        a,
        b,
        768 * 1024,
        8 * 1024,
        StreamProfile::bulk(),
    );
    let done = run_until_complete(&mut sim, &bulk, SimDuration::from_secs(5));
    sim.run_until(sim.now() + SimDuration::from_secs(1));

    let v = voice.borrow();
    let mut delays = v.delays.clone();
    println!("voice: {} frames sent, {} received", v.sent, v.received);
    println!(
        "voice: {:.1}% on time (40 ms budget), mean delay {:.2} ms, p99 {:.2} ms",
        v.on_time_fraction() * 100.0,
        delays.mean() * 1e3,
        delays.quantile(0.99) * 1e3
    );
    let bk = bulk.borrow();
    println!(
        "bulk: complete={done}, goodput {:.0} KB/s",
        bk.goodput().unwrap_or(0.0) / 1024.0
    );
    assert!(
        v.on_time_fraction() > 0.9,
        "deadline queueing should protect voice"
    );
}
