//! Quickstart: create a Real-Time Message Stream and send a message.
//!
//! Builds a two-host Ethernet, brings up the DASH stack, opens a stream
//! session (which negotiates ST and network RMSs underneath, §2.4), sends a
//! few messages, and prints what each layer did.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use dash::net::topology::two_hosts_ethernet;
use dash::prelude::*;
use dash::transport::stream;

fn main() {
    // 1. A network: two hosts on a 10 Mb/s Ethernet.
    let (net, alice, bob) = two_hosts_ethernet();

    // 2. The DASH stack on top of it.
    let mut sim = Sim::new(StackBuilder::new(net).build());

    // 3. Watch what Bob receives.
    let received = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&received);
    sim.state.on_stream(bob, move |_sim, ev| {
        if let StreamEvent::Delivered {
            msg, seq, delay, ..
        } = ev
        {
            println!("bob: message #{seq} ({} bytes) after {delay}", msg.len());
            r2.borrow_mut().push(msg);
        }
    });
    sim.state.on_stream(alice, |_sim, ev| {
        if let StreamEvent::Opened { session } = ev {
            println!("alice: session {session} open — RMS parameters negotiated");
        }
    });

    // 4. Open a stream (triggers control-channel setup, authentication, ST
    //    RMS creation, and network RMS admission underneath).
    let session = stream::open(&mut sim, alice, bob, StreamProfile::default())
        .expect("negotiation succeeds on a quiet LAN");
    sim.run();

    // 5. Send.
    for i in 0..3u8 {
        stream::send(&mut sim, alice, session, Message::new(vec![i; 64]))
            .expect("send port has room");
    }
    sim.run();

    assert_eq!(received.borrow().len(), 3);

    // 6. What the layers did.
    let st = &sim.state.st.host(alice).stats;
    println!("---");
    println!("subtransport at alice:");
    println!("  control channels created: {}", st.control_created.get());
    println!("  ST RMSs created:          {}", st.creates_completed.get());
    println!("  network RMSs created:     {}", st.cache_misses.get());
    println!("  net messages sent:        {}", st.net_msgs_sent.get());
    println!(
        "network: {} packets crossed the wire in {}",
        sim.state.net.stats.packets_sent.get(),
        sim.now()
    );
    let _ = SimDuration::ZERO;
}
