//! Request/reply with RKOM (paper §3.3).
//!
//! Registers a key-value service on one host and calls it from another
//! across a two-gateway internetwork. The RKOM channel (four ST RMSs:
//! low-delay initial traffic, high-delay retransmissions/acks) is built
//! lazily on the first call.
//!
//! ```text
//! cargo run --example rkom_rpc
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use dash::net::topology::dumbbell;
use dash::sim::Sim;
use dash::transport::rkom;
use dash::transport::stack::StackBuilder;

const KV_SERVICE: u16 = 7;

fn main() {
    let (net, client, server, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());

    // A toy key-value store: "set k v" / "get k".
    let store: Rc<RefCell<HashMap<String, String>>> = Rc::new(RefCell::new(HashMap::new()));
    let st = Rc::clone(&store);
    rkom::register_service(
        &mut sim.state,
        server,
        KV_SERVICE,
        move |_sim, _client, req| {
            let text = String::from_utf8_lossy(&req).to_string();
            let mut parts = text.splitn(3, ' ');
            let reply = match (parts.next(), parts.next(), parts.next()) {
                (Some("set"), Some(k), Some(v)) => {
                    st.borrow_mut().insert(k.into(), v.into());
                    "ok".to_string()
                }
                (Some("get"), Some(k), _) => st
                    .borrow()
                    .get(k)
                    .cloned()
                    .unwrap_or_else(|| "<missing>".into()),
                _ => "error".into(),
            };
            Bytes::from(reply)
        },
    );

    // Issue calls; each completion triggers the next.
    let results = Rc::new(RefCell::new(Vec::new()));
    for cmd in [
        "set color blue",
        "set answer 42",
        "get color",
        "get answer",
        "get nothing",
    ] {
        let r = Rc::clone(&results);
        let started = sim.now();
        rkom::call(
            &mut sim,
            client,
            server,
            KV_SERVICE,
            Bytes::from(cmd.as_bytes().to_vec()),
            move |sim, res| {
                let rtt = sim.now().saturating_since(started);
                let reply = String::from_utf8_lossy(&res.expect("call succeeds")).to_string();
                println!("{cmd:<18} -> {reply:<10} ({rtt})");
                r.borrow_mut().push(reply);
            },
        );
    }
    sim.run();

    let got = results.borrow();
    assert_eq!(got.len(), 5);
    assert_eq!(got[2], "blue");
    assert_eq!(got[3], "42");
    assert_eq!(got[4], "<missing>");

    // A warm call: the channel already exists, so this shows the steady-
    // state round trip (one WAN RTT).
    let warm_started = sim.now();
    rkom::call(
        &mut sim,
        client,
        server,
        KV_SERVICE,
        Bytes::from_static(b"get answer"),
        move |sim, res| {
            assert_eq!(res.unwrap().as_ref(), b"42");
            println!(
                "warm call round trip: {}",
                sim.now().saturating_since(warm_started)
            );
        },
    );
    sim.run();

    let stats = &sim.state.rkom.host(client).stats;
    println!("---");
    println!(
        "{} calls completed ({} retransmissions; the first batch paid channel setup)",
        stats.completed.get(),
        stats.retransmissions.get(),
    );
}
