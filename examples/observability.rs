//! Observability: message lifecycle spans exported as JSON Lines.
//!
//! Builds the full stack with a [`JsonLinesSink`] installed through
//! [`StackBuilder::obs_sink`], streams a few messages, and prints one JSON
//! span record per delivered message. Each record carries the timestamped
//! stages the message passed through — transport send, ST send, net send,
//! interface queue, wire, net receive, port delivery — so the per-layer
//! latency budget (Fig. 3) falls straight out of the output.
//!
//! ```text
//! cargo run --example observability
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use dash::net::topology::two_hosts_ethernet;
use dash::prelude::*;
use dash::transport::stream;

/// A `Write` the example can read back after the run (the sink takes
/// ownership of whatever writer it is given).
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let (net, alice, bob) = two_hosts_ethernet();

    // The sink is handed to the builder before the world exists; spans are
    // also retained in memory so the example can cross-check counts.
    // Piggybacking is off so every message crosses the wire in its own
    // frame and its span shows the full stage breakdown (a bundled message
    // books the network stages against the bundle's oldest component).
    let buf = SharedBuf::default();
    let config = StConfig {
        piggyback: false,
        ..StConfig::default()
    };
    let mut sim = Sim::new(
        StackBuilder::new(net)
            .st_config(config)
            .obs_sink(JsonLinesSink::new(buf.clone()))
            .retain_spans(true)
            .build(),
    );

    let delivered = Rc::new(RefCell::new(0usize));
    let d2 = Rc::clone(&delivered);
    sim.state.on_stream(bob, move |_sim, ev| {
        if let StreamEvent::Delivered { seq, delay, .. } = ev {
            println!("bob: message #{seq} delivered after {delay}");
            *d2.borrow_mut() += 1;
        }
    });

    let session = stream::open(&mut sim, alice, bob, StreamProfile::default())
        .expect("negotiation succeeds on a quiet LAN");
    sim.run();

    for i in 0..5u8 {
        stream::send(&mut sim, alice, session, Message::new(vec![i; 512]))
            .expect("send port has room");
    }
    sim.run();

    // One JSON span line per delivered message, each with >= 4 stages.
    let out = String::from_utf8(buf.0.borrow().clone()).expect("utf8");
    let span_lines: Vec<&str> = out
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"span\""))
        .collect();
    println!("---");
    for line in &span_lines {
        println!("{line}");
    }

    let delivered = *delivered.borrow();
    assert!(delivered >= 5, "stream deliveries observed");
    // The session-open handshake also completes a span, so >= holds.
    assert!(
        span_lines.len() >= delivered,
        "one span record per delivered message ({} spans, {} deliveries)",
        span_lines.len(),
        delivered
    );
    for line in &span_lines {
        let stages = line.matches("\"stage\":").count();
        assert!(stages >= 4, "span has >= 4 distinct stages: {line}");
    }
    println!("---");
    println!(
        "{} span records exported, every one with >= 4 timestamped stages",
        span_lines.len()
    );

    // The registry accumulated alongside the sink; show a taste.
    let reg = &mut sim.state.net.obs.registry;
    println!(
        "registry: st.send={} net.packet_delivered={} span.e2e mean={:.1}us",
        reg.counter_value("st.send"),
        reg.counter_value("net.packet_delivered"),
        reg.histogram("span.e2e").mean() * 1e6,
    );
}
