//! The DASH stack as a logical process, plus lookahead and merge helpers.
//!
//! Each LP is a *full replica* of the topology: build the same
//! `TopologyBuilder`/`StackBuilder` world in every LP (identical
//! build-time routes and LSDBs), then call [`StackLp::new`] to switch it
//! into replica mode for one owner host. Only the owner's protocol state
//! ever populates; the rest of the replica is static scaffolding that
//! lets routing, admission, and fault application run locally. Fault
//! plans are *replicated*, not forwarded: every LP applies the same plan
//! at the same times, and the ownership guard in
//! `dash_net::routing::flood_from` keeps packet-originating side effects
//! (witness floods) to the owning LP.

use dash_net::ids::HostId;
use dash_net::pipeline;
use dash_net::shard::WireEnvelope;
use dash_net::state::NetState;
use dash_sim::engine::Sim;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::stack::Stack;

use crate::exec::Lp;
use crate::plan::ShardPlan;

/// One host's logical process over the full transport [`Stack`].
pub struct StackLp {
    /// The replica world (public: harnesses install taps and read state).
    pub sim: Sim<Stack>,
    owner: HostId,
}

impl StackLp {
    /// Wrap a freshly built world as `owner`'s replica (see
    /// [`Stack::enable_lp_mode`] for what switches over).
    pub fn new(mut sim: Sim<Stack>, owner: HostId, root_seed: u64) -> Self {
        sim.state.enable_lp_mode(owner, root_seed);
        StackLp { sim, owner }
    }

    /// The owner host.
    pub fn owner(&self) -> HostId {
        self.owner
    }
}

impl Lp for StackLp {
    type Env = WireEnvelope;

    fn host(&self) -> u32 {
        self.owner.0
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.sim.next_event_time()
    }

    fn run_until_horizon(&mut self, horizon: SimTime) {
        self.sim.run_until_horizon(horizon);
    }

    fn drain_outbox(&mut self, sink: &mut Vec<WireEnvelope>) {
        let mut drained = self.sim.state.net.take_outbox();
        sink.append(&mut drained);
    }

    fn dst_of(env: &WireEnvelope) -> u32 {
        env.dst.0
    }

    fn inject(&mut self, env: WireEnvelope) {
        let key = env.arrival_key();
        let WireEnvelope {
            deliver_at,
            dst,
            packet,
            ..
        } = env;
        self.sim.schedule_arrival(deliver_at, key, move |sim| {
            pipeline::on_arrival(sim, dst, packet);
        });
    }
}

/// Wire delay below which conservative lookahead cannot drop: a network
/// with zero propagation would stall the executor, so it is clamped to
/// one nanosecond (events at the window minimum still run).
const MIN_LOOKAHEAD: SimDuration = SimDuration::from_nanos(1);

/// The intra-worker micro-window bound: the minimum propagation delay
/// over *all* networks — no envelope, wherever it goes, can deliver
/// sooner after the event that transmitted it.
pub fn local_lookahead(net: &NetState) -> SimDuration {
    net.networks
        .iter()
        .map(|n| n.spec.propagation)
        .min()
        .unwrap_or(SimDuration::MAX)
        .max(MIN_LOOKAHEAD)
}

/// The epoch bound: the minimum propagation delay over networks whose
/// attached hosts *span* more than one shard under `plan`. Networks
/// entirely inside one shard cannot carry cross-shard envelopes, so an
/// aligned placement (LANs co-located, only the WAN spanning) buys
/// epochs as long as the WAN delay. Falls back to a day when no network
/// spans shards at all (the epoch is then bounded by the horizon).
pub fn cross_shard_lookahead(net: &NetState, plan: &ShardPlan) -> SimDuration {
    net.networks
        .iter()
        .filter(|n| {
            let mut shards = n.attached.iter().map(|h| plan.shard_of(h.0));
            match shards.next() {
                None => false,
                Some(first) => shards.any(|s| s != first),
            }
        })
        .map(|n| n.spec.propagation)
        .min()
        .unwrap_or(SimDuration::from_secs(86_400))
        .max(MIN_LOOKAHEAD)
}

/// Merge per-LP trace buffers into the canonical run trace.
///
/// Each part is `(owner host, buffer)` where the buffer holds
/// `"{time_ns} {event name} {detail}"` lines (the repo's standard trace
/// sink format). Lines order by `(timestamp, owner host, emission
/// index)` — a total order that is a pure function of the run, so the
/// merged trace of a P-shard run is byte-identical to the 1-shard run.
pub fn merge_traces(parts: &[(u32, String)]) -> String {
    let mut decorated: Vec<(u64, u32, usize, &str)> = Vec::new();
    for (host, buf) in parts {
        for (idx, line) in buf.lines().enumerate() {
            let t: u64 = line
                .split(' ')
                .next()
                .and_then(|p| p.parse().ok())
                .unwrap_or(0);
            decorated.push((t, *host, idx, line));
        }
    }
    decorated.sort_unstable();
    let mut out = String::with_capacity(parts.iter().map(|(_, b)| b.len() + 1).sum());
    for (_, _, _, line) in decorated {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_merge_orders_by_time_then_host_then_index() {
        let parts = vec![
            (
                2u32,
                "100 b first-on-2\n100 b second-on-2\n50 a early\n".to_string(),
            ),
            (1u32, "100 a on-1\n".to_string()),
        ];
        let merged = merge_traces(&parts);
        assert_eq!(
            merged,
            "50 a early\n100 a on-1\n100 b first-on-2\n100 b second-on-2\n"
        );
    }

    #[test]
    fn lookaheads_reflect_spanning_networks() {
        use dash_net::network::NetworkSpec;
        use dash_net::topology::TopologyBuilder;

        let mut tb = TopologyBuilder::new();
        let lan = tb.network(NetworkSpec::ethernet("lan"));
        let wan = tb.network(NetworkSpec::long_haul("wan"));
        let a = tb.host_on(lan);
        let b = tb.host_on(lan);
        tb.attach(a, wan);
        tb.attach(b, wan);
        let state = tb.build();

        let lan_prop = state.networks[lan.0 as usize].spec.propagation;
        let wan_prop = state.networks[wan.0 as usize].spec.propagation;
        assert!(lan_prop < wan_prop);
        assert_eq!(local_lookahead(&state), lan_prop);

        // Both hosts on one shard: nothing spans, epoch bounded by horizon.
        let aligned = ShardPlan::from_placement(2, vec![0, 0]);
        assert!(cross_shard_lookahead(&state, &aligned) > wan_prop);
        // Split them: the LAN (the fastest spanning network) is the bound.
        let split = ShardPlan::from_placement(2, vec![0, 1]);
        assert_eq!(cross_shard_lookahead(&state, &split), lan_prop);
    }
}
