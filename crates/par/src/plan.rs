//! Host-to-shard placement.
//!
//! A [`ShardPlan`] is a pure function from host id to shard index, fixed
//! before the run. The default is a deterministic multiply-shift hash;
//! workloads whose topology has cheap cut edges (e.g. LANs joined by a
//! slow WAN) should override placement so only the high-latency networks
//! span shards — the executor's epoch length is the minimum wire delay
//! of any *spanning* network, so an aligned placement buys thousand-fold
//! longer epochs. Placement never changes results, only wall-clock: the
//! merged run is byte-identical under every plan (enforced by test).

/// Which worker thread owns each host's logical process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: u32,
    placement: Vec<u32>,
}

/// Fibonacci multiply-shift: deterministic, well-mixed, dependency-free.
fn spread(host: u32) -> u64 {
    (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

impl ShardPlan {
    /// Place `hosts` hosts on `shards` shards by deterministic hash of
    /// the host id.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn hashed(hosts: u32, shards: u32) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        ShardPlan {
            shards,
            placement: (0..hosts)
                .map(|h| (spread(h) % shards as u64) as u32)
                .collect(),
        }
    }

    /// Explicit placement map: `placement[host] = shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any entry names a shard out of range.
    pub fn from_placement(shards: u32, placement: Vec<u32>) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        assert!(
            placement.iter().all(|&s| s < shards),
            "placement names a shard out of range"
        );
        ShardPlan { shards, placement }
    }

    /// Group-aligned placement: hosts listed in `groups[g]` go to shard
    /// `g % shards` (so co-grouped hosts — a LAN and its gateway — always
    /// share a shard); hosts in no group fall back to the hash.
    pub fn grouped(hosts: u32, shards: u32, groups: &[Vec<u32>]) -> Self {
        let mut plan = ShardPlan::hashed(hosts, shards);
        for (g, members) in groups.iter().enumerate() {
            for &h in members {
                plan.placement[h as usize] = (g % shards as usize) as u32;
            }
        }
        plan
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of hosts (logical processes).
    pub fn hosts(&self) -> u32 {
        self.placement.len() as u32
    }

    /// The shard owning `host`'s logical process.
    #[inline]
    pub fn shard_of(&self, host: u32) -> u32 {
        self.placement[host as usize]
    }

    /// The hosts placed on `shard`, ascending.
    pub fn hosts_on(&self, shard: u32) -> impl Iterator<Item = u32> + '_ {
        self.placement
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == shard)
            .map(|(h, _)| h as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_is_deterministic_and_total() {
        let a = ShardPlan::hashed(100, 4);
        let b = ShardPlan::hashed(100, 4);
        assert_eq!(a, b);
        let mut counts = [0u32; 4];
        for h in 0..100 {
            counts[a.shard_of(h) as usize] += 1;
        }
        // Reasonably balanced: no shard empty, none hogging.
        assert!(counts.iter().all(|&c| c >= 10), "lopsided: {counts:?}");
    }

    #[test]
    fn grouped_keeps_groups_together() {
        let groups = vec![vec![0, 1, 2, 9], vec![3, 4, 5], vec![6, 7, 8]];
        let plan = ShardPlan::grouped(10, 2, &groups);
        assert_eq!(plan.shard_of(0), plan.shard_of(9));
        assert_eq!(plan.shard_of(3), plan.shard_of(5));
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(3), 1);
        assert_eq!(plan.shard_of(6), 0); // group 2 wraps onto shard 0
    }

    #[test]
    fn hosts_on_partitions_the_host_set() {
        let plan = ShardPlan::hashed(37, 5);
        let mut seen = [false; 37];
        for s in 0..5 {
            for h in plan.hosts_on(s) {
                assert!(!seen[h as usize]);
                seen[h as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
