//! Conservative parallel simulation with deterministic serial-equivalent
//! replay.
//!
//! The paper's DASH architecture is a *multiprocessor* communication
//! design — per-host protocol processes, per-interface deadline queues —
//! yet the reproduction so far executed every host on one thread. This
//! crate adds the standard answer for event-driven network stacks that
//! must scale across cores without giving up reproducibility: a
//! conservative (lookahead-synchronous) executor.
//!
//! * **One logical process per host** ([`netlp::StackLp`]): a full
//!   replica world whose protocol state only populates for its owner.
//!   "Shards" are worker threads owning groups of LPs ([`plan::ShardPlan`]);
//!   regrouping LPs never changes any LP's event sequence, which is the
//!   whole determinism argument.
//! * **Epochs bounded by wire lookahead** ([`exec::run_sharded`]): every
//!   inter-host interaction rides a wire with at least its network's
//!   propagation delay, so a shard may safely run `lookahead` ahead of
//!   the global minimum before exchanging envelopes at a barrier.
//! * **Canonical arrival order**: envelopes are injected with
//!   `(time, source, per-source seq)` keys
//!   ([`dash_sim::engine::Sim::schedule_arrival`]), making heap pop
//!   order a pure function of what was sent — never of thread timing,
//!   shard count, or injection batching.
//!
//! The result, enforced by tests from the synthetic executor level up to
//! the full-stack macro-workload: a P-shard run merges to byte-identical
//! traces, metric registries, and scalar outcomes as the 1-shard run.

pub mod exec;
pub mod netlp;
pub mod plan;

pub use exec::{run_sharded, Lp, ParConfig};
pub use netlp::{cross_shard_lookahead, local_lookahead, merge_traces, StackLp};
pub use plan::ShardPlan;
