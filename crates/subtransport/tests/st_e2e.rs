//! End-to-end subtransport tests: control channel + authentication, ST RMS
//! creation, multiplexing/caching, piggybacking, fragmentation, fast acks,
//! failure propagation.

use bytes::Bytes;
use dash_net::ids::{HostId, NetRmsId};
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::{dumbbell, two_hosts_ethernet};
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_subtransport::engine;
use dash_subtransport::ids::{StRmsId, StToken};
use dash_subtransport::st::{StConfig, StEvent, StState, StWorld};
use rms_core::delay::DelayBound;
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::port::DeliveryInfo;
use rms_core::{RejectReason, RmsError, RmsRequest};

struct World {
    net: NetState,
    st: StState,
    st_deliveries: Vec<(HostId, StRmsId, Message, DeliveryInfo)>,
    st_events: Vec<(HostId, String)>,
    created: Vec<(HostId, StToken, StRmsId)>,
    inbound: Vec<(HostId, StRmsId)>,
    fast_acks: Vec<(HostId, StRmsId, u64)>,
}

impl World {
    fn new(net: NetState, config: StConfig) -> Self {
        let n = net.hosts.len();
        let mut st = StState::new(config, n);
        st.provision_all_keys(n as u32);
        World {
            net,
            st,
            st_deliveries: Vec::new(),
            st_events: Vec::new(),
            created: Vec::new(),
            inbound: Vec::new(),
            fast_acks: Vec::new(),
        }
    }
}

impl NetWorld for World {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        msg: Message,
        info: DeliveryInfo,
    ) {
        engine::on_net_deliver(sim, host, rms, msg, info);
    }
    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent) {
        engine::on_net_event(sim, host, &event);
    }
}

impl StWorld for World {
    fn st(&mut self) -> &mut StState {
        &mut self.st
    }
    fn st_ref(&self) -> &StState {
        &self.st
    }
    fn st_deliver(
        sim: &mut Sim<Self>,
        host: HostId,
        st_rms: StRmsId,
        msg: Message,
        info: DeliveryInfo,
    ) {
        sim.state.st_deliveries.push((host, st_rms, msg, info));
    }
    fn st_event(sim: &mut Sim<Self>, host: HostId, event: StEvent) {
        sim.state.st_events.push((host, format!("{event:?}")));
        match event {
            StEvent::Created { token, st_rms, .. } => sim.state.created.push((host, token, st_rms)),
            StEvent::InboundCreated { st_rms, .. } => sim.state.inbound.push((host, st_rms)),
            StEvent::FastAck { st_rms, seq } => sim.state.fast_acks.push((host, st_rms, seq)),
            _ => {}
        }
    }
}

fn basic_request() -> RmsRequest {
    RmsRequest::exact(RmsParams::builder(32 * 1024, 8 * 1024).build().unwrap())
}

fn establish(sim: &mut Sim<World>, a: HostId, b: HostId, req: &RmsRequest, fa: bool) -> StRmsId {
    let token = engine::create(sim, a, b, req, fa).expect("create accepted");
    sim.run();
    sim.state
        .created
        .iter()
        .find(|(h, t, _)| *h == a && *t == token)
        .map(|(_, _, s)| *s)
        .unwrap_or_else(|| panic!("creation did not complete: {:?}", sim.state.st_events))
}

#[test]
fn create_and_send_end_to_end() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    assert_eq!(sim.state.inbound, vec![(b, st_rms)]);

    engine::send(&mut sim, a, st_rms, Message::new(vec![1, 2, 3])).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 1);
    let (host, rms, msg, info) = &sim.state.st_deliveries[0];
    assert_eq!(*host, b);
    assert_eq!(*rms, st_rms);
    assert_eq!(msg.payload().as_ref(), &[1, 2, 3]);
    assert_eq!(info.seq, 0);
    assert!(info.delay() > SimDuration::ZERO);
}

#[test]
fn control_channel_is_reused_across_streams() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let s1 = establish(&mut sim, a, b, &basic_request(), false);
    let hellos_after_first = sim.state.st.host(a).stats.hellos_sent.get();
    let s2 = establish(&mut sim, a, b, &basic_request(), false);
    assert_ne!(s1, s2);
    // No new Hello handshake for the second stream.
    assert_eq!(
        sim.state.st.host(a).stats.hellos_sent.get(),
        hellos_after_first
    );
    assert_eq!(sim.state.st.host(a).stats.control_created.get(), 1);
}

#[test]
fn compatible_streams_share_one_network_rms() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let req = RmsRequest::exact(RmsParams::builder(8 * 1024, 1024).build().unwrap());
    let s1 = establish(&mut sim, a, b, &req, false);
    let s2 = establish(&mut sim, a, b, &req, false);
    let stats = &sim.state.st.host(a).stats;
    assert_eq!(stats.cache_misses.get(), 1, "one data net RMS created");
    assert_eq!(
        stats.cache_hits.get(),
        1,
        "second stream multiplexed onto it"
    );
    // Both streams actually work.
    engine::send(&mut sim, a, s1, Message::new(vec![1u8; 100])).unwrap();
    engine::send(&mut sim, a, s2, Message::new(vec![2u8; 100])).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 2);
}

#[test]
fn closed_stream_leaves_cached_network_rms() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let req = basic_request();
    let s1 = establish(&mut sim, a, b, &req, false);
    engine::close(&mut sim, a, s1).unwrap();
    sim.run();
    // Receiver learned about the close.
    assert!(sim
        .state
        .st_events
        .iter()
        .any(|(h, e)| *h == b && e.contains("Closed")));
    // A new stream reuses the cached network RMS: no second create.
    let _s2 = establish(&mut sim, a, b, &req, false);
    let stats = &sim.state.st.host(a).stats;
    assert_eq!(stats.cache_misses.get(), 1);
    assert_eq!(stats.cache_hits.get(), 1);
}

#[test]
fn piggybacking_bundles_messages() {
    let (net, a, b) = two_hosts_ethernet();
    let config = StConfig {
        piggyback: true,
        piggyback_slack: SimDuration::from_millis(5),
        ..StConfig::default()
    };
    let mut sim = Sim::new(World::new(net, config));
    // A loose delay bound leaves room for queueing.
    let params = RmsParams::builder(32 * 1024, 1024)
        .delay(DelayBound::best_effort_with(
            SimDuration::from_millis(100),
            SimDuration::from_micros(10),
        ))
        .build()
        .unwrap();
    let st_rms = establish(&mut sim, a, b, &RmsRequest::exact(params), false);
    // Burst of small messages sent back-to-back: they should bundle.
    for i in 0..5u8 {
        engine::send(&mut sim, a, st_rms, Message::new(vec![i; 50])).unwrap();
    }
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 5);
    let stats = &sim.state.st.host(a).stats;
    assert!(
        stats.bundles_sent.get() >= 1,
        "at least one bundle: {stats:?}"
    );
    assert!(stats.msgs_bundled.get() >= 2);
    // Delivered in order.
    for (i, d) in sim.state.st_deliveries.iter().enumerate() {
        assert_eq!(d.2.payload()[0], i as u8);
        assert_eq!(d.3.seq, i as u64);
    }
}

#[test]
fn piggyback_disabled_sends_alone() {
    let (net, a, b) = two_hosts_ethernet();
    let config = StConfig {
        piggyback: false,
        ..StConfig::default()
    };
    let mut sim = Sim::new(World::new(net, config));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    for i in 0..5u8 {
        engine::send(&mut sim, a, st_rms, Message::new(vec![i; 50])).unwrap();
    }
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 5);
    let stats = &sim.state.st.host(a).stats;
    assert_eq!(stats.bundles_sent.get(), 0);
    assert_eq!(stats.msgs_alone.get(), 5);
}

#[test]
fn large_messages_fragment_and_reassemble() {
    let (net, a, b) = two_hosts_ethernet(); // MTU 1536
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    let body: Vec<u8> = (0..8000u32).map(|i| (i % 251) as u8).collect();
    engine::send(&mut sim, a, st_rms, Message::new(body.clone())).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 1);
    assert_eq!(sim.state.st_deliveries[0].2.payload().as_ref(), &body[..]);
    let stats = &sim.state.st.host(a).stats;
    assert_eq!(stats.msgs_fragmented.get(), 1);
    assert!(stats.fragments_sent.get() >= 6, "8000B over ~1.5KB MTU");
}

#[test]
fn fast_ack_reaches_sender() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), true);
    engine::send(&mut sim, a, st_rms, Message::new(vec![9u8; 64])).unwrap();
    sim.run();
    assert_eq!(sim.state.fast_acks, vec![(a, st_rms, 0)]);
    assert_eq!(sim.state.st.host(b).stats.fast_acks_sent.get(), 1);
}

#[test]
fn missing_pair_key_fails_fast() {
    let (net, a, b) = two_hosts_ethernet();
    let n = net.hosts.len();
    let world = World {
        net,
        st: StState::new(StConfig::default(), n), // no keys provisioned
        st_deliveries: Vec::new(),
        st_events: Vec::new(),
        created: Vec::new(),
        inbound: Vec::new(),
        fast_acks: Vec::new(),
    };
    let mut sim = Sim::new(world);
    let err = engine::create(&mut sim, a, b, &basic_request(), false).unwrap_err();
    assert!(matches!(
        err,
        RmsError::CreationRejected(RejectReason::AuthenticationFailed)
    ));
}

#[test]
fn mismatched_keys_fail_authentication() {
    let (net, a, b) = two_hosts_ethernet();
    let n = net.hosts.len();
    let mut st = StState::new(StConfig::default(), n);
    // Both sides have keys, but different ones: Hello verification fails.
    st.auth_keys.insert((0, 1), dash_security::Key(111));
    let world = World {
        net,
        st,
        st_deliveries: Vec::new(),
        st_events: Vec::new(),
        created: Vec::new(),
        inbound: Vec::new(),
        fast_acks: Vec::new(),
    };
    let mut sim = Sim::new(world);
    let token = engine::create(&mut sim, a, b, &basic_request(), false).unwrap();
    // Let the handshake proceed until a's Hello (signed with key 111) is on
    // the wire, then rotate the shared key: b now verifies with key 222 and
    // must reject the Hello.
    while sim.state.st.host(a).stats.hellos_sent.get() == 0 && sim.step() {}
    assert_eq!(sim.state.st.host(a).stats.hellos_sent.get(), 1);
    sim.state
        .st
        .auth_keys
        .insert((0, 1), dash_security::Key(222));
    sim.run();
    // Authentication cannot complete; the create fails by timeout.
    assert!(
        sim.state.st_events.iter().any(|(h, e)| *h == a
            && e.contains("CreateFailed")
            && e.contains("AuthenticationFailed")),
        "events: {:?}",
        sim.state.st_events
    );
    let _ = token;
    assert!(sim.state.st.host(b).stats.auth_failures.get() > 0);
}

#[test]
fn multihop_st_stream_works() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    engine::send(&mut sim, a, st_rms, Message::new(vec![5u8; 2000])).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 1);
    assert_eq!(sim.state.st_deliveries[0].2.len(), 2000);
}

#[test]
fn network_failure_fails_st_streams() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    dash_net::pipeline::fail_network(&mut sim, dash_net::NetworkId(1));
    sim.run();
    assert!(
        sim.state
            .st_events
            .iter()
            .any(|(h, e)| *h == a && e.contains("Failed")),
        "sender stream should fail: {:?}",
        sim.state.st_events
    );
    let err = engine::send(&mut sim, a, st_rms, Message::new(vec![0u8; 8])).unwrap_err();
    assert!(matches!(err, RmsError::Failed(_)));
}

#[test]
fn oversized_st_message_rejected() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let st_rms = establish(&mut sim, a, b, &basic_request(), false);
    let err = engine::send(&mut sim, a, st_rms, Message::zeroes(9000)).unwrap_err();
    assert!(matches!(err, RmsError::MessageTooLarge { .. }));
}

#[test]
fn st_offers_larger_messages_than_network_mtu() {
    // §4.3: the ST's maximum message size exceeds the network's.
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let req = RmsRequest::exact(RmsParams::builder(64 * 1024, 32 * 1024).build().unwrap());
    let st_rms = establish(&mut sim, a, b, &req, false);
    let body = vec![0xabu8; 32 * 1024];
    engine::send(&mut sim, a, st_rms, Message::new(body.clone())).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 1);
    assert_eq!(sim.state.st_deliveries[0].2.payload().as_ref(), &body[..]);
}

#[test]
fn send_datagram_payload_roundtrip_not_affected_by_st() {
    // ST and raw datagrams coexist on the same network state.
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let _st_rms = establish(&mut sim, a, b, &basic_request(), false);
    dash_net::pipeline::send_datagram(&mut sim, a, b, 9, Bytes::from_static(b"raw").into());
    sim.run();
    // Raw datagrams use the default no-op handler; nothing crashes, ST
    // deliveries unaffected.
    assert_eq!(sim.state.st_deliveries.len(), 0);
}

#[test]
fn idle_cache_evicts_beyond_limit() {
    let (net, a, b) = two_hosts_ethernet();
    let config = StConfig {
        cache_idle_limit: 1,
        ..StConfig::default()
    };
    let mut sim = Sim::new(World::new(net, config));
    // Two *incompatible* streams force two data network RMSs.
    let req1 = RmsRequest::exact(RmsParams::builder(8 * 1024, 1024).build().unwrap());
    let params2 = RmsParams::builder(8 * 1024, 1024)
        .reliability(rms_core::Reliability::Reliable)
        .error_rate(rms_core::BitErrorRate::ZERO)
        .build()
        .unwrap();
    let req2 = RmsRequest::exact(params2);
    let s1 = establish(&mut sim, a, b, &req1, false);
    let s2 = establish(&mut sim, a, b, &req2, false);
    assert_eq!(sim.state.st.host(a).stats.cache_misses.get(), 2);
    engine::close(&mut sim, a, s1).unwrap();
    engine::close(&mut sim, a, s2).unwrap();
    sim.run();
    // Only one idle entry may stay cached.
    assert_eq!(sim.state.st.host(a).stats.cache_evictions.get(), 1);
}

#[test]
fn deterministic_st_stream_gets_deterministic_net_rms() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net, StConfig::default()));
    let params = RmsParams::builder(16 * 1024, 1024)
        .delay(DelayBound::deterministic(
            SimDuration::from_millis(50),
            SimDuration::from_micros(5),
        ))
        .build()
        .unwrap();
    let st_rms = establish(&mut sim, a, b, &RmsRequest::exact(params), false);
    // The underlying data net RMS must be deterministic (§4.2 rule 1).
    let stream = &sim.state.st.host(a).streams[&st_rms];
    let slot = stream.slot.unwrap();
    let d = &sim.state.st.host(a).peers[&b].data[&slot];
    assert!(matches!(
        d.params.delay.kind,
        rms_core::DelayBoundKind::Deterministic
    ));
    engine::send(&mut sim, a, st_rms, Message::new(vec![1u8; 256])).unwrap();
    sim.run();
    assert_eq!(sim.state.st_deliveries.len(), 1);
}
