//! The §4.2 multiplexing rules, checked case by case:
//!
//! - "A deterministic ST RMS can be multiplexed only onto a deterministic
//!   network RMS."
//! - "A statistical ST RMS can be multiplexed only onto a deterministic or
//!   statistical network RMS."
//! - "The delay bound parameters of the ST RMS's must be at least those of
//!   the network RMS."
//! - "The capacity of the network RMS must be at least the sum of the
//!   capacities of the ST RMS's."

use dash_sim::time::SimDuration;
use dash_subtransport::can_multiplex;
use rms_core::delay::{DelayBound, DelayBoundKind, StatisticalSpec};
use rms_core::params::{BitErrorRate, Reliability, RmsParams, SecurityParams};

fn params(kind: DelayBoundKind, fixed_ms: u64, capacity: u64) -> RmsParams {
    RmsParams {
        reliability: Reliability::Unreliable,
        security: SecurityParams::NONE,
        capacity,
        max_message_size: capacity.min(1024),
        delay: DelayBound {
            fixed: SimDuration::from_millis(fixed_ms),
            per_byte: SimDuration::from_micros(10),
            kind,
        },
        error_rate: BitErrorRate::new(1e-4).unwrap(),
    }
}

const DET: DelayBoundKind = DelayBoundKind::Deterministic;
const BE: DelayBoundKind = DelayBoundKind::BestEffort;
fn stat() -> DelayBoundKind {
    DelayBoundKind::Statistical(StatisticalSpec::new(1e5, 2.0, 0.9))
}

#[test]
fn deterministic_st_requires_deterministic_net() {
    let st = params(DET, 100, 1_000);
    assert!(can_multiplex(&st, &params(DET, 50, 10_000), 0));
    assert!(!can_multiplex(&st, &params(stat(), 50, 10_000), 0));
    assert!(!can_multiplex(&st, &params(BE, 50, 10_000), 0));
}

#[test]
fn statistical_st_rides_deterministic_or_statistical() {
    let st = params(stat(), 100, 1_000);
    assert!(can_multiplex(&st, &params(DET, 50, 10_000), 0));
    assert!(can_multiplex(&st, &params(stat(), 50, 10_000), 0));
    assert!(!can_multiplex(&st, &params(BE, 50, 10_000), 0));
}

#[test]
fn best_effort_st_rides_anything() {
    let st = params(BE, 100, 1_000);
    for net_kind in [DET, stat(), BE] {
        assert!(can_multiplex(&st, &params(net_kind, 50, 10_000), 0));
    }
}

#[test]
fn st_delay_bounds_must_cover_net_bounds() {
    // ST bound 100 ms over a 50 ms net: the 50 ms difference is the
    // piggybacking budget. The reverse is illegal.
    let loose_st = params(BE, 100, 1_000);
    let tight_st = params(BE, 20, 1_000);
    let net = params(BE, 50, 10_000);
    assert!(can_multiplex(&loose_st, &net, 0));
    assert!(!can_multiplex(&tight_st, &net, 0));
}

#[test]
fn capacities_must_sum_within_the_carrier() {
    let st = params(BE, 100, 4_000);
    let net = params(BE, 50, 10_000);
    assert!(can_multiplex(&st, &net, 0));
    assert!(can_multiplex(&st, &net, 6_000)); // 6000 + 4000 = 10000, exact fit
    assert!(!can_multiplex(&st, &net, 6_001));
}

#[test]
fn security_and_reliability_must_be_covered() {
    let mut st = params(BE, 100, 1_000);
    st.security = SecurityParams::FULL;
    let open_net = params(BE, 50, 10_000);
    assert!(!can_multiplex(&st, &open_net, 0), "private ST on open net");
    let mut secure_net = open_net.clone();
    secure_net.security = SecurityParams::FULL;
    assert!(can_multiplex(&st, &secure_net, 0));

    let mut reliable_st = params(BE, 100, 1_000);
    reliable_st.reliability = Reliability::Reliable;
    assert!(!can_multiplex(&reliable_st, &secure_net, 0));
    let mut reliable_net = secure_net.clone();
    reliable_net.reliability = Reliability::Reliable;
    assert!(can_multiplex(&reliable_st, &reliable_net, 0));
}

#[test]
fn error_rate_must_be_covered() {
    let mut st = params(BE, 100, 1_000);
    st.error_rate = BitErrorRate::new(1e-9).unwrap(); // wants a clean channel
    let noisy_net = params(BE, 50, 10_000); // guarantees only 1e-4
    assert!(!can_multiplex(&st, &noisy_net, 0));
    let mut clean_net = noisy_net.clone();
    clean_net.error_rate = BitErrorRate::new(1e-12).unwrap();
    assert!(can_multiplex(&st, &clean_net, 0));
}
