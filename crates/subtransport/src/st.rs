//! Subtransport-layer state and the [`StWorld`] trait (paper §3.2).
//!
//! "The subtransport layer (ST) provides a variety of host-to-host
//! functions. All upper-level network communication in DASH passes through
//! the ST. ... The basic functions of the ST are to provide security, to do
//! deadline-based message queueing, to multiplex ST RMS's onto network
//! RMS's, and to arrange for 'fast acknowledgement' of messages sent on ST
//! RMS's."

use rms_core::hash::DetHashMap;

use dash_net::ids::{CreateToken, HostId, NetRmsId};
use dash_security::cipher::Key;
use dash_security::cost::CostModel;
use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::stats::Counter;
use dash_sim::time::{SimDuration, SimTime};
use rms_core::delay::DelayBound;
use rms_core::error::{FailReason, RejectReason};
use rms_core::message::Message;
use rms_core::params::{Reliability, RmsParams, SharedParams};
use rms_core::port::DeliveryInfo;

use crate::frag::Reassembly;
use crate::ids::{StRmsId, StToken};
use crate::piggyback::PiggybackQueue;
use crate::wire::ControlMsg;

/// Subtransport configuration.
#[derive(Debug, Clone)]
pub struct StConfig {
    /// Parameters requested for each direction of a peer control channel
    /// (§3.2: "two low capacity, low delay network RMS's, one per
    /// direction").
    pub control_params: RmsParams,
    /// Default capacity requested for new data network RMSs (headroom for
    /// multiplexing more ST RMSs later, §4.2).
    pub data_capacity_default: u64,
    /// Maximum message size offered to ST clients; larger than the network
    /// layer's, supported by fragmentation (§4.3).
    pub st_max_message_size: u64,
    /// Enable piggyback queueing (§4.3.1). Off = immediate sends.
    pub piggyback: bool,
    /// Delay budget the ST keeps for piggyback queueing: the difference
    /// between ST and network delay bounds (§4.2).
    pub piggyback_slack: SimDuration,
    /// CPU cost of ST processing per message, per side.
    pub st_cpu: CostModel,
    /// Require the Hello/HelloAck authentication handshake before control
    /// traffic flows.
    pub require_auth: bool,
    /// Maximum *idle* cached data network RMSs per peer before LRU eviction
    /// (§4.2 caching).
    pub cache_idle_limit: usize,
    /// How long to wait for control-channel authentication before failing
    /// queued creates.
    pub auth_timeout: SimDuration,
}

impl Default for StConfig {
    fn default() -> Self {
        StConfig {
            control_params: RmsParams {
                reliability: Reliability::Reliable,
                security: rms_core::params::SecurityParams::NONE,
                capacity: 4096,
                max_message_size: 512,
                // Generous floors: the control channel must be creatable on
                // any network the stack runs over (its urgency comes from
                // per-message transmission deadlines, not from this bound).
                delay: DelayBound::best_effort_with(
                    SimDuration::from_secs(2),
                    SimDuration::from_micros(100),
                ),
                error_rate: rms_core::params::BitErrorRate::new(1e-3).expect("valid"),
            },
            data_capacity_default: 64 * 1024,
            st_max_message_size: 64 * 1024,
            piggyback: true,
            piggyback_slack: SimDuration::from_millis(2),
            st_cpu: CostModel::new(SimDuration::from_micros(10), SimDuration::from_nanos(2)),
            require_auth: true,
            cache_idle_limit: 4,
            auth_timeout: SimDuration::from_secs(2),
        }
    }
}

/// What a network RMS create (initiated by the ST) was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPurpose {
    /// Our half of the control channel to `peer`.
    ControlOut(HostId),
    /// A data stream toward `peer`; the value is the local data-RMS slot.
    DataOut(HostId, u32),
}

/// What a known network RMS is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetUse {
    /// Our outgoing control half toward the peer.
    ControlOut(HostId),
    /// The peer's control half toward us.
    ControlIn(HostId),
    /// An outgoing data stream (value = local slot).
    DataOut(HostId, u32),
    /// An incoming data stream from the peer.
    DataIn(HostId),
}

/// An outgoing data network RMS slot: creating or ready, with its assigned
/// ST RMSs and piggyback queue.
#[derive(Debug)]
pub struct DataOut {
    /// The network RMS once created.
    pub net_rms: Option<NetRmsId>,
    /// The network create token while creating.
    pub token: Option<CreateToken>,
    /// Network-level parameters (requested while creating; actual once
    /// ready).
    pub params: SharedParams,
    /// ST RMSs multiplexed onto this network RMS (§4.2).
    pub assigned: Vec<StRmsId>,
    /// Sum of assigned ST RMS capacities (must stay ≤ `params.capacity`).
    pub assigned_capacity: u64,
    /// The piggyback queue (§4.3.1).
    pub queue: PiggybackQueue,
    /// Armed flush timer, with its deadline.
    pub flush_timer: Option<(TimerHandle, SimTime)>,
    /// Last time a message was sent (cache LRU).
    pub last_used: SimTime,
}

/// Authentication/connection state for one peer.
#[derive(Debug, Default)]
pub struct PeerState {
    /// Our outgoing control-channel network RMS.
    pub control_out: Option<NetRmsId>,
    /// True while the control-out create is in flight.
    pub control_creating: bool,
    /// The peer's incoming control-channel network RMS.
    pub control_in: Option<NetRmsId>,
    /// Nonce of our outstanding Hello.
    pub my_nonce: u64,
    /// True once the peer answered our Hello correctly.
    pub authed: bool,
    /// Control messages awaiting authentication.
    pub queued_ctrl: Vec<ControlMsg>,
    /// Hello/HelloAck frames awaiting the control-out RMS (pre-auth).
    pub pre_auth: Vec<ControlMsg>,
    /// Timer failing queued creates if authentication stalls.
    pub auth_timer: Option<TimerHandle>,
    /// Data slots (keyed by slot id).
    pub data: DetHashMap<u32, DataOut>,
    /// Next data slot id.
    pub next_slot: u32,
}

/// One ST RMS endpoint.
#[derive(Debug)]
pub struct StStream {
    /// Stream id (assigned by the receiving ST).
    pub id: StRmsId,
    /// The other host.
    pub peer: HostId,
    /// Our role.
    pub role: StRole,
    /// ST-level parameters.
    pub params: SharedParams,
    /// Whether data frames request fast acknowledgements (§3.2).
    pub fast_ack: bool,
    /// Sender: the data slot this stream is multiplexed onto.
    pub slot: Option<u32>,
    /// Sender: creation token to report once the slot is ready.
    pub pending_token: Option<StToken>,
    /// Sender: next message sequence number.
    pub next_seq: u64,
    /// Sender: ordering floor — the previous message's actual transmission
    /// deadline (§4.3.1).
    pub last_tx_deadline: SimTime,
    /// Monotone floor for send-side CPU-job deadlines (§4.1).
    pub last_send_job_deadline: SimTime,
    /// Monotone floor for receive-side CPU-job deadlines.
    pub last_recv_job_deadline: SimTime,
    /// Receiver: reassembly state (§4.3).
    pub reassembly: Reassembly,
    /// Receiver: the inbound network RMS (learned from the first frame).
    pub in_net: Option<NetRmsId>,
    /// Set when the stream failed.
    pub failed: bool,
    /// Sender: instant the stream lost its carrier to a network failure and
    /// began failing over; cleared (with a recovery-latency observation)
    /// when a replacement slot is ready.
    pub failover_since: Option<SimTime>,
    /// Receiver-side delivery statistics.
    pub delivered: Counter,
    /// Receiver-side payload bytes delivered.
    pub bytes: Counter,
    /// Receiver-side deliveries beyond the ST delay bound.
    pub late: Counter,
    /// Receiver-side end-to-end delays (client send → ST delivery), secs.
    pub delays: dash_sim::stats::Histogram,
}

impl StStream {
    /// Allocate the next message sequence number (sender side).
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

/// An ST RMS creation in flight at its creator.
#[derive(Debug)]
pub struct StPending {
    /// Data receiver.
    pub peer: HostId,
    /// Negotiated ST-level parameters.
    pub params: SharedParams,
    /// Fast-ack option.
    pub fast_ack: bool,
}

/// Host-level ST statistics (feeding experiments e1/e3/e4/e9).
#[derive(Debug, Default)]
pub struct StStats {
    /// Control channels established (outgoing halves).
    pub control_created: Counter,
    /// Hello messages sent.
    pub hellos_sent: Counter,
    /// Authentication failures observed.
    pub auth_failures: Counter,
    /// ST RMS creations requested here.
    pub creates_requested: Counter,
    /// ST RMS creations completed here.
    pub creates_completed: Counter,
    /// A cached data network RMS satisfied an assignment (§4.2).
    pub cache_hits: Counter,
    /// A new data network RMS had to be created.
    pub cache_misses: Counter,
    /// Idle cached network RMSs evicted (LRU).
    pub cache_evictions: Counter,
    /// Client messages sent on ST RMSs.
    pub msgs_sent: Counter,
    /// Network messages that carried a piggybacked bundle.
    pub bundles_sent: Counter,
    /// Client messages that travelled inside bundles.
    pub msgs_bundled: Counter,
    /// Client messages sent alone.
    pub msgs_alone: Counter,
    /// Queue flushes forced by the flush timer.
    pub flushes_timer: Counter,
    /// Queue flushes forced by overflow.
    pub flushes_overflow: Counter,
    /// Queue flushes forced by a deadline conflict.
    pub flushes_conflict: Counter,
    /// Messages that required fragmentation.
    pub msgs_fragmented: Counter,
    /// Fragments sent.
    pub fragments_sent: Counter,
    /// Fast acknowledgements sent (receiver side).
    pub fast_acks_sent: Counter,
    /// Fast acknowledgements delivered to clients (sender side).
    pub fast_acks_received: Counter,
    /// Frames that failed to decode.
    pub garbage_frames: Counter,
    /// Network bytes handed down (payloads only).
    pub net_bytes_sent: Counter,
    /// Network messages handed down.
    pub net_msgs_sent: Counter,
}

/// Per-host ST state.
#[derive(Debug, Default)]
pub struct StHost {
    /// Peer connection state.
    pub peers: DetHashMap<HostId, PeerState>,
    /// Live streams, both roles.
    pub streams: DetHashMap<StRmsId, StStream>,
    /// Purpose of in-flight network creates.
    pub net_pending: DetHashMap<CreateToken, NetPurpose>,
    /// Known network RMS usages.
    pub by_net: DetHashMap<NetRmsId, NetUse>,
    /// ST creations in flight.
    pub pending: DetHashMap<StToken, StPending>,
    /// Statistics.
    pub stats: StStats,
}

/// The subtransport layer's world state.
#[derive(Debug)]
pub struct StState {
    /// Configuration.
    pub config: StConfig,
    /// Per-host state, indexed by [`HostId`].
    pub hosts: Vec<StHost>,
    /// Out-of-band pair keys for control-channel authentication (a stand-in
    /// for the key-distribution protocol of Anderson et al. 1987, ref \[2\]).
    pub auth_keys: DetHashMap<(u32, u32), Key>,
    next_st_rms: u64,
    next_token: u64,
    nonce_seed: u64,
}

impl StState {
    /// ST state for `n_hosts` hosts.
    pub fn new(config: StConfig, n_hosts: usize) -> Self {
        StState {
            config,
            hosts: (0..n_hosts).map(|_| StHost::default()).collect(),
            auth_keys: Default::default(),
            next_st_rms: 1,
            next_token: 1,
            nonce_seed: 0x5eed,
        }
    }

    /// Provision a shared authentication key for a host pair.
    pub fn provision_key(&mut self, a: HostId, b: HostId, key: Key) {
        self.auth_keys.insert(Self::pair(a, b), key);
    }

    /// Provision keys for every pair among `hosts` (test/bench setup).
    pub fn provision_all_keys(&mut self, n_hosts: u32) {
        for a in 0..n_hosts {
            for b in (a + 1)..n_hosts {
                let key = Key(0x1000_0000u64 | (u64::from(a) << 20) | u64::from(b));
                self.auth_keys.insert((a, b), key);
            }
        }
    }

    fn pair(a: HostId, b: HostId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// The shared key for a host pair, if provisioned.
    pub fn pair_key(&self, a: HostId, b: HostId) -> Option<Key> {
        self.auth_keys.get(&Self::pair(a, b)).copied()
    }

    /// Access a host's ST state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn host(&self, id: HostId) -> &StHost {
        &self.hosts[id.0 as usize]
    }

    /// Mutable access to a host's ST state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn host_mut(&mut self, id: HostId) -> &mut StHost {
        &mut self.hosts[id.0 as usize]
    }

    /// Rebase ST RMS-id and token allocation to start at `base`.
    ///
    /// The parallel executor gives each logical process the disjoint
    /// namespace `(owner + 1) << 40`, so ids minted independently on
    /// different shards never collide when their streams interact.
    pub fn set_id_namespace(&mut self, base: u64) {
        self.next_st_rms = base;
        self.next_token = base;
    }

    /// Allocate a globally unique ST RMS id.
    pub fn alloc_st_rms(&mut self) -> StRmsId {
        let id = StRmsId(self.next_st_rms);
        self.next_st_rms += 1;
        id
    }

    /// Allocate an ST creation token.
    pub fn alloc_token(&mut self) -> StToken {
        let t = StToken(self.next_token);
        self.next_token += 1;
        t
    }

    /// A fresh Hello nonce.
    pub fn alloc_nonce(&mut self) -> u64 {
        self.nonce_seed = self
            .nonce_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.nonce_seed
    }
}

/// Which end of an ST RMS this host holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StRole {
    /// This host sends.
    Sender,
    /// This host receives.
    Receiver,
}

/// ST lifecycle events reported to clients.
#[derive(Debug)]
pub enum StEvent {
    /// A creation initiated here completed; the stream is ready to send on.
    Created {
        /// The creator's token.
        token: StToken,
        /// The new stream.
        st_rms: StRmsId,
        /// Its ST-level parameters.
        params: SharedParams,
    },
    /// A creation initiated here failed.
    CreateFailed {
        /// The creator's token.
        token: StToken,
        /// Why.
        reason: RejectReason,
    },
    /// A receiving stream appeared at this host.
    InboundCreated {
        /// The new stream.
        st_rms: StRmsId,
        /// The sending peer.
        peer: HostId,
        /// ST-level parameters.
        params: SharedParams,
        /// Whether its frames will request fast acks.
        fast_ack: bool,
    },
    /// A stream failed.
    Failed {
        /// The stream.
        st_rms: StRmsId,
        /// Why.
        reason: FailReason,
    },
    /// The peer closed a stream we were receiving on (or the provider
    /// confirmed our own close).
    Closed {
        /// The stream.
        st_rms: StRmsId,
    },
    /// A fast acknowledgement arrived for a message we sent (§3.2).
    FastAck {
        /// The stream.
        st_rms: StRmsId,
        /// The acknowledged message sequence number.
        seq: u64,
    },
}

/// The world contract for layers above the ST.
pub trait StWorld: dash_net::state::NetWorld {
    /// The embedded ST state.
    fn st(&mut self) -> &mut StState;
    /// Shared access to the embedded ST state.
    fn st_ref(&self) -> &StState;
    /// A message arrived on a receiving ST RMS.
    fn st_deliver(
        sim: &mut Sim<Self>,
        host: HostId,
        st_rms: StRmsId,
        msg: Message,
        info: DeliveryInfo,
    );
    /// An ST lifecycle event occurred.
    fn st_event(sim: &mut Sim<Self>, host: HostId, event: StEvent);
}
