//! Identifier newtypes for the subtransport layer.

use std::fmt;

/// An ST-level RMS (assigned by the receiving ST at creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StRmsId(pub u64);

impl fmt::Display for StRmsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strms{}", self.0)
    }
}

/// Correlation token for asynchronous ST RMS creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StToken(pub u64);

impl fmt::Display for StToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sttok{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(StRmsId(4).to_string(), "strms4");
        assert_eq!(StToken(9).to_string(), "sttok9");
    }
}
