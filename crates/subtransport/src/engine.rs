//! The subtransport engine: control channel, ST RMS creation, multiplexed
//! sends with piggybacking and fragmentation, delivery, fast acks, and
//! network-RMS caching (paper §3.2, §4.2, §4.3).
//!
//! All functions are generic over `W:`[`StWorld`]. The world's
//! [`dash_net::state::NetWorld`] implementation must forward network
//! deliveries and events here via [`on_net_deliver`] / [`on_net_event`].

use dash_net::ids::{HostId, NetRmsId, NetworkId};
use dash_net::pipeline as net;
use dash_net::state::NetRmsEvent;
use dash_sim::engine::Sim;
use dash_sim::obs::{FlushReason, ObsEvent};
use dash_sim::time::{SimDuration, SimTime};
use rms_core::compat::{negotiate, RmsRequest, ServiceTable};
use rms_core::delay::DelayBoundKind;
use rms_core::error::{FailReason, RejectReason, RmsError};
use rms_core::message::Message;
use rms_core::params::{RmsParams, SharedParams};
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;

use dash_security::mac;

use crate::frag::{fragment, FragSpec, Reassembly};
use crate::ids::{StRmsId, StToken};
use crate::piggyback::{PendingEntry, PiggybackQueue, PushOutcome};
use crate::st::{
    DataOut, NetPurpose, NetUse, PeerState, StEvent, StPending, StRole, StStream, StWorld,
};
use crate::wire::{decode, encode, ControlMsg, DataFrame, Frame};

const NAK_REASON_LIMITS: u8 = 1;

// ---------------------------------------------------------------------------
// Negotiation
// ---------------------------------------------------------------------------

/// Total delay the ST stage adds on top of the network stage: piggyback
/// queueing slack plus send+receive ST processing (§4.1: the upper-level
/// delay is divided among the stages).
fn stage_slack<W: StWorld>(state: &W) -> (SimDuration, SimDuration) {
    let cfg = &state.st_ref().config;
    let fixed = cfg
        .piggyback_slack
        .saturating_add(cfg.st_cpu.fixed.saturating_mul(2));
    let per_byte = cfg.st_cpu.per_byte.saturating_mul(2);
    (fixed, per_byte)
}

/// Negotiate ST-level parameters for a stream from `host` to `peer`: the
/// network path's combined service table, shifted by the ST stage's own
/// delay contribution, with the maximum message size raised to the ST's
/// fragmentation-backed offer (§4.3).
///
/// # Errors
///
/// [`RmsError`] if there is no route or no combination satisfies the
/// request.
pub fn st_negotiate<W: StWorld>(
    sim: &Sim<W>,
    host: HostId,
    peer: HostId,
    request: &RmsRequest,
) -> Result<RmsParams, RmsError> {
    let path = sim
        .state
        .net_ref()
        .path(host, peer)
        .ok_or(RmsError::CreationRejected(RejectReason::NoRoute))?;
    let net_table = net::combined_service_table(&sim.state, &path);
    let (slack_fixed, slack_per_byte) = stage_slack(&sim.state);
    let st_mms = sim.state.st_ref().config.st_max_message_size;
    let mut shifted = ServiceTable::new();
    for (rel, sec, limits) in net_table.iter() {
        let mut l = *limits;
        l.min_fixed_delay = l.min_fixed_delay.saturating_add(slack_fixed);
        l.min_per_byte_delay = l.min_per_byte_delay.saturating_add(slack_per_byte);
        l.max_message_size = l.max_message_size.max(st_mms).min(l.max_capacity);
        shifted.support(*rel, *sec, l);
    }
    Ok(negotiate(&shifted, request)?)
}

// ---------------------------------------------------------------------------
// Creation
// ---------------------------------------------------------------------------

/// Create an ST RMS from `host` (sender) to `peer` (receiver).
///
/// Triggers control-channel establishment and authentication on first
/// contact (§3.2). Completion is reported as [`StEvent::Created`] /
/// [`StEvent::CreateFailed`] with the returned token.
///
/// # Errors
///
/// Fails synchronously when there is no route, negotiation cannot succeed,
/// or authentication is required but no pair key is provisioned.
pub fn create<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    request: &RmsRequest,
    fast_ack: bool,
) -> Result<StToken, RmsError> {
    let params = st_negotiate(sim, host, peer, request)?;
    let st = sim.state.st();
    if st.config.require_auth && st.pair_key(host, peer).is_none() {
        return Err(RmsError::CreationRejected(
            RejectReason::AuthenticationFailed,
        ));
    }
    let token = st.alloc_token();
    st.host_mut(host).pending.insert(
        token,
        StPending {
            peer,
            params: params.clone().shared(),
            fast_ack,
        },
    );
    st.host_mut(host).stats.creates_requested.incr();
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::CreateRequested {
                    host: host.0,
                    peer: peer.0,
                },
            );
        }
    }
    send_ctrl(
        sim,
        host,
        peer,
        ControlMsg::StCreateReq {
            token,
            params,
            fast_ack,
        },
    );
    Ok(token)
}

/// Close an ST RMS from its sender side. The underlying data network RMS
/// stays cached for reuse (§4.2).
///
/// # Errors
///
/// [`RmsError::UnknownStream`] if the stream does not exist here, or
/// [`RmsError::WrongDirection`] if this host is the receiver.
pub fn close<W: StWorld>(sim: &mut Sim<W>, host: HostId, st_rms: StRmsId) -> Result<(), RmsError> {
    let (peer, slot) = {
        let sth = sim.state.st().host_mut(host);
        let stream = sth.streams.get(&st_rms).ok_or(RmsError::UnknownStream)?;
        if stream.role != StRole::Sender {
            return Err(RmsError::WrongDirection);
        }
        (stream.peer, stream.slot)
    };
    // Flush any queued frames of this stream before it disappears.
    if let Some(slot) = slot {
        flush_slot(sim, host, peer, slot, FlushCause::Close);
    }
    {
        let sth = sim.state.st().host_mut(host);
        sth.streams.remove(&st_rms);
        if let (Some(slot), Some(p)) = (slot, sth.peers.get_mut(&peer)) {
            if let Some(d) = p.data.get_mut(&slot) {
                d.assigned.retain(|s| *s != st_rms);
            }
        }
    }
    recompute_slot_capacity(sim, host, peer, slot);
    send_ctrl(sim, host, peer, ControlMsg::StClose { st_rms });
    evict_idle_cache(sim, host, peer);
    Ok(())
}

fn recompute_slot_capacity<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    slot: Option<u32>,
) {
    let Some(slot) = slot else { return };
    let st = sim.state.st();
    let assigned: Vec<StRmsId> = match st
        .host(host)
        .peers
        .get(&peer)
        .and_then(|p| p.data.get(&slot))
    {
        Some(d) => d.assigned.clone(),
        None => return,
    };
    let total: u64 = assigned
        .iter()
        .filter_map(|s| st.host(host).streams.get(s))
        .map(|s| s.params.capacity)
        .sum();
    if let Some(d) = st
        .host_mut(host)
        .peers
        .get_mut(&peer)
        .and_then(|p| p.data.get_mut(&slot))
    {
        d.assigned_capacity = total;
    }
}

// ---------------------------------------------------------------------------
// Control channel (§3.2)
// ---------------------------------------------------------------------------

fn peer_state<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId) -> &mut PeerState {
    sim.state.st().host_mut(host).peers.entry(peer).or_default()
}

fn ensure_control<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId) {
    let need_create = {
        let p = peer_state(sim, host, peer);
        p.control_out.is_none() && !p.control_creating
    };
    if !need_create {
        return;
    }
    peer_state(sim, host, peer).control_creating = true;
    let ctrl_params = sim.state.st_ref().config.control_params.clone();
    match net::create_rms(sim, host, peer, &RmsRequest::exact(ctrl_params)) {
        Ok(token) => {
            sim.state
                .st()
                .host_mut(host)
                .net_pending
                .insert(token, NetPurpose::ControlOut(peer));
        }
        Err(e) => {
            peer_state(sim, host, peer).control_creating = false;
            fail_queued_creates(sim, host, peer, reject_of(&e));
        }
    }
}

fn reject_of(e: &RmsError) -> RejectReason {
    match e {
        RmsError::CreationRejected(r) => r.clone(),
        _ => RejectReason::PeerRejected,
    }
}

/// Queue (or emit) a control message toward `peer`, establishing and
/// authenticating the control channel first if needed.
fn send_ctrl<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, msg: ControlMsg) {
    ensure_control(sim, host, peer);
    let ready = {
        let require_auth = sim.state.st_ref().config.require_auth;
        let p = peer_state(sim, host, peer);
        p.control_out.is_some() && (p.authed || !require_auth)
    };
    if ready {
        emit_ctrl(sim, host, peer, msg);
    } else {
        peer_state(sim, host, peer).queued_ctrl.push(msg);
        arm_auth_timer(sim, host, peer);
    }
}

fn arm_auth_timer<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId) {
    let timeout = sim.state.st_ref().config.auth_timeout;
    let already = peer_state(sim, host, peer).auth_timer.is_some();
    if already {
        return;
    }
    let handle = sim.schedule_timer(timeout, move |sim| {
        let authed = peer_state(sim, host, peer).authed;
        peer_state(sim, host, peer).auth_timer = None;
        if !authed {
            fail_queued_creates(sim, host, peer, RejectReason::AuthenticationFailed);
        }
    });
    peer_state(sim, host, peer).auth_timer = Some(handle);
}

fn fail_queued_creates<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    reason: RejectReason,
) {
    let queued = std::mem::take(&mut peer_state(sim, host, peer).queued_ctrl);
    for msg in queued {
        if let ControlMsg::StCreateReq { token, .. } = msg {
            sim.state.st().host_mut(host).pending.remove(&token);
            W::st_event(
                sim,
                host,
                StEvent::CreateFailed {
                    token,
                    reason: reason.clone(),
                },
            );
        }
    }
}

/// Actually put a control message on the wire (control channel must exist).
fn emit_ctrl<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, msg: ControlMsg) {
    let Some(rms) = peer_state(sim, host, peer).control_out else {
        // Channel vanished; requeue.
        peer_state(sim, host, peer).queued_ctrl.push(msg);
        return;
    };
    let payload = encode(&Frame::Ctrl(msg));
    let now = sim.now();
    let _ = net::send_on_rms(sim, host, rms, Message::from_wire(payload), Some(now), None);
}

/// Emit a pre-authentication frame (Hello/HelloAck) if the channel exists,
/// else hold it.
fn emit_pre_auth<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, msg: ControlMsg) {
    if peer_state(sim, host, peer).control_out.is_some() {
        emit_ctrl(sim, host, peer, msg);
    } else {
        peer_state(sim, host, peer).pre_auth.push(msg);
        ensure_control(sim, host, peer);
    }
}

fn send_hello<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId) {
    let key = sim.state.st_ref().pair_key(host, peer);
    let nonce = sim.state.st().alloc_nonce();
    peer_state(sim, host, peer).my_nonce = nonce;
    let tag = key.map(|k| mac::sign(k, nonce, b"hello").0).unwrap_or(0);
    sim.state.st().host_mut(host).stats.hellos_sent.incr();
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::HelloSent {
                    host: host.0,
                    peer: peer.0,
                },
            );
        }
    }
    emit_ctrl(
        sim,
        host,
        peer,
        ControlMsg::Hello {
            host: host.0,
            nonce,
            tag,
        },
    );
}

// ---------------------------------------------------------------------------
// Sending (§4.2, §4.3)
// ---------------------------------------------------------------------------

/// Send a message on an ST RMS. Per §2.2 the ST (as provider) enforces the
/// maximum message size; capacity is the *client's* responsibility (§4.4).
///
/// Returns the message's per-stream sequence number — the value the ST's
/// fast acknowledgement service (§3.2) will echo back to the sender, so
/// transports can clock windows off it.
///
/// # Errors
///
/// [`RmsError`] if the stream is unknown, not ready, failed, not a sender
/// endpoint, or the message is too large.
pub fn send<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    st_rms: StRmsId,
    mut msg: Message,
) -> Result<u64, RmsError> {
    let now = sim.now();
    let (peer, slot, st_params, fast_ack, seq) = {
        let sth = sim.state.st().host_mut(host);
        let stream = sth
            .streams
            .get_mut(&st_rms)
            .ok_or(RmsError::UnknownStream)?;
        if stream.role != StRole::Sender {
            return Err(RmsError::WrongDirection);
        }
        if stream.failed {
            return Err(RmsError::Failed(FailReason::NetworkDown));
        }
        let slot = stream.slot.ok_or(RmsError::UnknownStream)?;
        if msg.len() as u64 > stream.params.max_message_size {
            return Err(RmsError::MessageTooLarge {
                size: msg.len() as u64,
                limit: stream.params.max_message_size,
            });
        }
        let seq = stream.alloc_seq();
        (
            stream.peer,
            slot,
            stream.params.clone(),
            stream.fast_ack,
            seq,
        )
    };
    sim.state.st().host_mut(host).stats.msgs_sent.incr();
    let len = msg.len() as u64;
    {
        // Open (or adopt) the message's lifecycle span. `now` here equals
        // the frame's `sent_at`, so the StSend→StDeliver span interval
        // matches `DeliveryInfo::delay` exactly.
        let net = sim.state.net();
        if net.obs.is_active() {
            if msg.span.is_none() {
                msg.span = net.obs.start_span();
            }
            net.obs.emit(
                now,
                ObsEvent::StSend {
                    host: host.0,
                    st_rms: st_rms.0,
                    seq,
                    bytes: len,
                    span: msg.span,
                },
            );
        }
    }
    let cost = sim.state.st_ref().config.st_cpu.cost_for(len);
    let cpu_deadline = {
        let d = now.saturating_add(st_params.delay.bound_for(len));
        let sth = sim.state.st().host_mut(host);
        match sth.streams.get_mut(&st_rms) {
            Some(s) => {
                let d = d.max(s.last_send_job_deadline);
                s.last_send_job_deadline = d;
                d
            }
            None => d,
        }
    };
    W::charge_cpu(
        sim,
        host,
        cost,
        cpu_deadline,
        st_rms.0,
        Box::new(move |sim| {
            dispatch_send(
                sim,
                SendJob {
                    host,
                    peer,
                    slot,
                    st_rms,
                    st_params,
                    fast_ack,
                    seq,
                    msg,
                    sent_at: now,
                },
            );
        }),
    );
    Ok(seq)
}

/// Everything `send` resolves before the CPU charge that the deferred
/// dispatch needs again once the protocol processor gets to it.
struct SendJob {
    host: HostId,
    peer: HostId,
    slot: u32,
    st_rms: StRmsId,
    st_params: SharedParams,
    fast_ack: bool,
    seq: u64,
    msg: Message,
    sent_at: SimTime,
}

fn dispatch_send<W: StWorld>(sim: &mut Sim<W>, job: SendJob) {
    let SendJob {
        host,
        peer,
        slot,
        st_rms,
        st_params,
        fast_ack,
        seq,
        msg,
        sent_at,
    } = job;
    let now = sim.now();
    // The slot (and its network parameters) may have vanished meanwhile.
    let (net_params, net_rms) = {
        let st = sim.state.st();
        match st
            .host(host)
            .peers
            .get(&peer)
            .and_then(|p| p.data.get(&slot))
        {
            Some(d) => match d.net_rms {
                Some(r) => (d.params.clone(), r),
                None => return,
            },
            None => return,
        }
    };
    let len = msg.len() as u64;
    let source = msg.source;
    let target = msg.target;
    let span = msg.span;
    let payload_wire = msg.into_wire();
    let net_mms = net_params.max_message_size;

    // Encode the unfragmented frame up front (payload segments are shared,
    // not copied); its wire length — the single size authority — decides
    // between the whole-message and fragmentation paths.
    let wire = encode(&Frame::Data(DataFrame {
        st_rms,
        seq,
        frag: None,
        sent_at,
        fast_ack,
        source,
        target,
        span,
        payload: payload_wire.clone(),
    }));
    let frame_len = wire.len() as u64;

    if frame_len > net_mms {
        // Fragmentation path (§4.3): never piggybacked; flush the queue
        // first so per-stream ordering survives.
        flush_slot(sim, host, peer, slot, FlushCause::Fragment);
        // Per-fragment header: the whole-message header plus the 8 bytes
        // the frag flag adds (index + count).
        let header = (frame_len - len) + 8;
        let chunk = (net_mms.saturating_sub(header)).max(1) as usize;
        let frames = fragment(
            &FragSpec {
                st_rms,
                seq,
                sent_at,
                fast_ack,
                source,
                target,
                span,
            },
            &payload_wire,
            chunk,
        );
        let max_deadline = tx_max_deadline(now, &st_params, &net_params, len);
        let deadline = clamp_stream_deadline(sim, host, st_rms, max_deadline);
        {
            let stats = &mut sim.state.st().host_mut(host).stats;
            stats.msgs_fragmented.incr();
            stats.fragments_sent.add(frames.len() as u64);
        }
        {
            let count = frames.len() as u32;
            let net = sim.state.net();
            if net.obs.is_active() {
                net.obs.emit(
                    now,
                    ObsEvent::Fragment {
                        host: host.0,
                        st_rms: st_rms.0,
                        seq,
                        count,
                        span,
                    },
                );
            }
        }
        for f in frames {
            let payload = encode(&Frame::Data(f));
            send_net(sim, host, net_rms, payload, deadline, sent_at, span);
        }
        touch_slot(sim, host, peer, slot, now);
        return;
    }

    let max_deadline = tx_max_deadline(now, &st_params, &net_params, len);
    let piggyback = sim.state.st_ref().config.piggyback;
    if !piggyback {
        let deadline = clamp_stream_deadline(sim, host, st_rms, max_deadline);
        sim.state.st().host_mut(host).stats.msgs_alone.incr();
        send_net(sim, host, net_rms, wire, deadline, sent_at, span);
        touch_slot(sim, host, peer, slot, now);
        return;
    }

    // Piggyback path (§4.3.1).
    let min_deadline = sim
        .state
        .st_ref()
        .host(host)
        .streams
        .get(&st_rms)
        .map(|s| s.last_tx_deadline)
        .unwrap_or(SimTime::ZERO);
    let entry = PendingEntry {
        wire,
        st_rms,
        sent_at,
        span,
        min_deadline,
        max_deadline,
    };
    push_with_flush(sim, host, peer, slot, entry, net_mms);
    {
        let pending = with_slot_queue(sim, host, peer, slot, |q| q.len()).unwrap_or(0);
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::PiggybackCoalesce {
                    host: host.0,
                    net_rms: net_rms.0,
                    pending,
                },
            );
        }
    }
    touch_slot(sim, host, peer, slot, now);
}

/// §4.3.1: maximum transmission deadline = arrival + (ST bound − network
/// bound), clamped to "now" at minimum.
fn tx_max_deadline(
    now: SimTime,
    st_params: &RmsParams,
    net_params: &RmsParams,
    len: u64,
) -> SimTime {
    let st_bound = st_params.delay.bound_for(len);
    let net_bound = net_params.delay.bound_for(len);
    now.saturating_add(st_bound.saturating_sub(net_bound))
}

/// Enforce per-stream monotone deadlines (§4.3.1 minimum rule) and record
/// the actual deadline used.
fn clamp_stream_deadline<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    st_rms: StRmsId,
    deadline: SimTime,
) -> SimTime {
    let sth = sim.state.st().host_mut(host);
    if let Some(stream) = sth.streams.get_mut(&st_rms) {
        let d = deadline.max(stream.last_tx_deadline);
        stream.last_tx_deadline = d;
        d
    } else {
        deadline
    }
}

fn push_with_flush<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    slot: u32,
    entry: PendingEntry,
    net_mms: u64,
) {
    let now = sim.now();
    let outcome = with_slot_queue(sim, host, peer, slot, |q| {
        q.try_push(entry.clone(), net_mms)
    });
    match outcome {
        Some(PushOutcome::Queued { flush_at }) => {
            if flush_at <= now {
                flush_slot(sim, host, peer, slot, FlushCause::Timer);
            } else {
                arm_flush_timer(sim, host, peer, slot, flush_at);
            }
        }
        Some(PushOutcome::WouldOverflow) => {
            flush_slot(sim, host, peer, slot, FlushCause::Overflow);
            let retry = with_slot_queue(sim, host, peer, slot, |q| q.try_push(entry, net_mms));
            match retry {
                Some(PushOutcome::Queued { flush_at }) => {
                    if flush_at <= now {
                        flush_slot(sim, host, peer, slot, FlushCause::Timer);
                    } else {
                        arm_flush_timer(sim, host, peer, slot, flush_at);
                    }
                }
                _ => debug_assert!(false, "entry must fit an empty queue"),
            }
        }
        Some(PushOutcome::DeadlineConflict) => {
            flush_slot(sim, host, peer, slot, FlushCause::Conflict);
            let retry = with_slot_queue(sim, host, peer, slot, |q| q.try_push(entry, net_mms));
            match retry {
                Some(PushOutcome::Queued { flush_at }) => {
                    if flush_at <= now {
                        flush_slot(sim, host, peer, slot, FlushCause::Timer);
                    } else {
                        arm_flush_timer(sim, host, peer, slot, flush_at);
                    }
                }
                _ => debug_assert!(false, "entry must fit an empty queue"),
            }
        }
        None => {}
    }
}

fn with_slot_queue<W: StWorld, T>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    slot: u32,
    f: impl FnOnce(&mut PiggybackQueue) -> T,
) -> Option<T> {
    sim.state
        .st()
        .host_mut(host)
        .peers
        .get_mut(&peer)
        .and_then(|p| p.data.get_mut(&slot))
        .map(|d| f(&mut d.queue))
}

fn arm_flush_timer<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    slot: u32,
    flush_at: SimTime,
) {
    let now = sim.now();
    let rearm = {
        let st = sim.state.st();
        match st
            .host(host)
            .peers
            .get(&peer)
            .and_then(|p| p.data.get(&slot))
            .and_then(|d| d.flush_timer.as_ref())
        {
            Some((_, at)) => flush_at < *at,
            None => true,
        }
    };
    if !rearm {
        return;
    }
    // Cancel any existing timer.
    if let Some(d) = sim
        .state
        .st()
        .host_mut(host)
        .peers
        .get_mut(&peer)
        .and_then(|p| p.data.get_mut(&slot))
    {
        if let Some((t, _)) = d.flush_timer.take() {
            t.cancel();
        }
    }
    let delay = flush_at.saturating_since(now);
    let handle = sim.schedule_timer(delay, move |sim| {
        if let Some(d) = sim
            .state
            .st()
            .host_mut(host)
            .peers
            .get_mut(&peer)
            .and_then(|p| p.data.get_mut(&slot))
        {
            d.flush_timer = None;
        }
        flush_slot(sim, host, peer, slot, FlushCause::Timer);
    });
    if let Some(d) = sim
        .state
        .st()
        .host_mut(host)
        .peers
        .get_mut(&peer)
        .and_then(|p| p.data.get_mut(&slot))
    {
        d.flush_timer = Some((handle, flush_at));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Timer,
    Overflow,
    Conflict,
    Fragment,
    Close,
}

fn flush_slot<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    peer: HostId,
    slot: u32,
    cause: FlushCause,
) {
    let (bundle, net_rms) = {
        let st = sim.state.st();
        let Some(d) = st
            .host_mut(host)
            .peers
            .get_mut(&peer)
            .and_then(|p| p.data.get_mut(&slot))
        else {
            return;
        };
        if let Some((t, _)) = d.flush_timer.take() {
            t.cancel();
        }
        let Some(bundle) = d.queue.flush() else {
            return;
        };
        let Some(net_rms) = d.net_rms else { return };
        (bundle, net_rms)
    };
    {
        let stats = &mut sim.state.st().host_mut(host).stats;
        match cause {
            FlushCause::Timer => stats.flushes_timer.incr(),
            FlushCause::Overflow => stats.flushes_overflow.incr(),
            FlushCause::Conflict => stats.flushes_conflict.incr(),
            FlushCause::Fragment | FlushCause::Close => {}
        }
        if bundle.entries.len() > 1 {
            stats.bundles_sent.incr();
            stats.msgs_bundled.add(bundle.entries.len() as u64);
        } else {
            stats.msgs_alone.incr();
        }
    }
    let deadline = bundle.deadline;
    // The bundle's deadline becomes each component stream's actual
    // transmission deadline (ordering floor for their next messages).
    let streams: Vec<StRmsId> = bundle.entries.iter().map(|e| e.st_rms).collect();
    let earliest_sent = bundle
        .entries
        .iter()
        .map(|e| e.sent_at)
        .min()
        .unwrap_or_else(|| sim.now());
    // The network-layer leg of a bundle is attributed to the span of its
    // oldest frame; the other frames' spans skip the net stages and close
    // at delivery.
    let bundle_span = bundle
        .entries
        .iter()
        .min_by_key(|e| e.sent_at)
        .and_then(|e| e.span);
    {
        let sth = sim.state.st().host_mut(host);
        for s in streams {
            if let Some(stream) = sth.streams.get_mut(&s) {
                stream.last_tx_deadline = stream.last_tx_deadline.max(deadline);
            }
        }
    }
    {
        let frames = bundle.entries.len();
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            let reason = match cause {
                FlushCause::Timer => FlushReason::Timer,
                FlushCause::Overflow => FlushReason::Overflow,
                FlushCause::Conflict => FlushReason::Conflict,
                FlushCause::Fragment => FlushReason::Fragment,
                FlushCause::Close => FlushReason::Close,
            };
            net.obs.emit(
                now,
                ObsEvent::PiggybackFlush {
                    host: host.0,
                    net_rms: net_rms.0,
                    frames,
                    reason,
                },
            );
        }
    }
    let payload = bundle.encode();
    send_net(
        sim,
        host,
        net_rms,
        payload,
        deadline,
        earliest_sent,
        bundle_span,
    );
}

fn send_net<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    net_rms: NetRmsId,
    payload: WireMsg,
    deadline: SimTime,
    sent_at: SimTime,
    span: Option<u64>,
) {
    let bytes = payload.len() as u64;
    {
        let stats = &mut sim.state.st().host_mut(host).stats;
        stats.net_msgs_sent.incr();
        stats.net_bytes_sent.add(bytes);
    }
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::StNetMsg {
                    host: host.0,
                    net_rms: net_rms.0,
                    bytes,
                    span,
                },
            );
        }
    }
    let mut msg = Message::from_wire(payload);
    msg.span = span;
    let _ = net::send_on_rms(sim, host, net_rms, msg, Some(deadline), Some(sent_at));
}

fn touch_slot<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, slot: u32, now: SimTime) {
    if let Some(d) = sim
        .state
        .st()
        .host_mut(host)
        .peers
        .get_mut(&peer)
        .and_then(|p| p.data.get_mut(&slot))
    {
        d.last_used = now;
    }
}

// ---------------------------------------------------------------------------
// Multiplexing and caching (§4.2)
// ---------------------------------------------------------------------------

/// §4.2 multiplexing rules: can an ST RMS with `st` parameters ride on a
/// network RMS with `net` parameters that already carries
/// `assigned_capacity` of ST capacity?
pub fn can_multiplex(st: &RmsParams, net: &RmsParams, assigned_capacity: u64) -> bool {
    let kind_ok = match st.delay.kind {
        // "A deterministic ST RMS can be multiplexed only onto a
        // deterministic network RMS."
        DelayBoundKind::Deterministic => {
            matches!(net.delay.kind, DelayBoundKind::Deterministic)
        }
        // "A statistical ST RMS can be multiplexed only onto a
        // deterministic or statistical network RMS."
        DelayBoundKind::Statistical(_) => !matches!(net.delay.kind, DelayBoundKind::BestEffort),
        DelayBoundKind::BestEffort => true,
    };
    kind_ok
        // "The delay bound parameters of the ST RMS's must be at least
        // those of the network RMS."
        && net.delay.fixed <= st.delay.fixed
        && net.delay.per_byte <= st.delay.per_byte
        // Security/reliability/error-rate must be covered by the carrier.
        && net.security.includes(st.security)
        && net.reliability.includes(st.reliability)
        && net.error_rate <= st.error_rate
        // "The capacity of the network RMS must be at least the sum of the
        // capacities of the ST RMS's."
        && assigned_capacity + st.capacity <= net.capacity
}

/// Find or create a data network RMS for a new sender stream; returns true
/// if the stream is immediately ready (cache hit on a ready slot).
fn assign_slot<W: StWorld>(sim: &mut Sim<W>, host: HostId, st_rms: StRmsId) -> bool {
    let (peer, st_params) = {
        let stream = &sim.state.st_ref().host(host).streams[&st_rms];
        (stream.peer, stream.params.clone())
    };
    // Try existing slots (ready first, then creating).
    let candidate = {
        let st = sim.state.st_ref();
        let empty = Default::default();
        let p = st.host(host).peers.get(&peer).unwrap_or(&empty);
        let mut best: Option<(u32, bool)> = None;
        for (slot, d) in &p.data {
            if can_multiplex(&st_params, &d.params, d.assigned_capacity) {
                let ready = d.net_rms.is_some();
                match best {
                    Some((_, best_ready)) if best_ready || !ready => {}
                    _ => best = Some((*slot, ready)),
                }
            }
        }
        best
    };
    if let Some((slot, ready)) = candidate {
        {
            let now = sim.now();
            let net = sim.state.net();
            if net.obs.is_active() {
                net.obs.emit(now, ObsEvent::CacheHit { host: host.0 });
            }
        }
        let sth = sim.state.st().host_mut(host);
        sth.stats.cache_hits.incr();
        if let Some(d) = sth.peers.get_mut(&peer).and_then(|p| p.data.get_mut(&slot)) {
            d.assigned.push(st_rms);
            d.assigned_capacity += st_params.capacity;
        }
        if let Some(s) = sth.streams.get_mut(&st_rms) {
            s.slot = Some(slot);
        }
        return ready;
    }

    // Create a new network RMS (§4.2: "it is slow and costly to create
    // network RMS's" — this is the miss path).
    sim.state.st().host_mut(host).stats.cache_misses.incr();
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(now, ObsEvent::CacheMiss { host: host.0 });
        }
    }
    let (slack_fixed, slack_per_byte) = stage_slack(&sim.state);
    let cfg_capacity = sim.state.st_ref().config.data_capacity_default;
    let mut net_desired = (*st_params).clone();
    // Capacity headroom invites future multiplexing (§4.2) — but for
    // deterministic streams headroom is a real bandwidth reservation, so
    // request exactly what the stream needs.
    net_desired.capacity = match st_params.delay.kind {
        DelayBoundKind::Deterministic => st_params.capacity,
        _ => st_params.capacity.max(cfg_capacity),
    };
    net_desired.max_message_size = net_desired.capacity.min(64 * 1024);
    net_desired.delay.fixed = st_params.delay.fixed.saturating_sub(slack_fixed);
    net_desired.delay.per_byte = st_params.delay.per_byte.saturating_sub(slack_per_byte);
    let mut net_floor = net_desired.clone();
    net_floor.capacity = st_params.capacity;
    net_floor.max_message_size = 256.min(net_floor.capacity);
    let request = RmsRequest {
        desired: net_desired,
        acceptable: net_floor,
    };
    match net::create_rms(sim, host, peer, &request) {
        Ok(token) => {
            let sth = sim.state.st().host_mut(host);
            let p = sth.peers.entry(peer).or_default();
            let slot = p.next_slot;
            p.next_slot += 1;
            p.data.insert(
                slot,
                DataOut {
                    net_rms: None,
                    token: Some(token),
                    // While creating, advertise the *desired* parameters for
                    // multiplex matching; Created{params} replaces them with
                    // the negotiated actuals and spills streams if the
                    // grant came back smaller.
                    params: request.desired.clone().shared(),
                    assigned: vec![st_rms],
                    assigned_capacity: st_params.capacity,
                    queue: PiggybackQueue::new(),
                    flush_timer: None,
                    last_used: SimTime::ZERO,
                },
            );
            sth.net_pending
                .insert(token, NetPurpose::DataOut(peer, slot));
            if let Some(s) = sth.streams.get_mut(&st_rms) {
                s.slot = Some(slot);
            }
            false
        }
        Err(e) => {
            // Report failure through the pending token; an established
            // stream (re-admitting after its carrier died) has none, so it
            // stays behind marked failed — later sends return a typed
            // [`RmsError::Failed`] — and the client hears a typed event.
            let token = sim
                .state
                .st()
                .host_mut(host)
                .streams
                .get_mut(&st_rms)
                .and_then(|s| s.pending_token.take());
            if let Some(token) = token {
                sim.state.st().host_mut(host).streams.remove(&st_rms);
                let reason = reject_of(&e);
                W::st_event(sim, host, StEvent::CreateFailed { token, reason });
            } else {
                if let Some(s) = sim.state.st().host_mut(host).streams.get_mut(&st_rms) {
                    s.failed = true;
                    s.failover_since = None;
                }
                W::st_event(
                    sim,
                    host,
                    StEvent::Failed {
                        st_rms,
                        reason: FailReason::NetworkDown,
                    },
                );
            }
            send_ctrl(sim, host, peer, ControlMsg::StClose { st_rms });
            false
        }
    }
}

/// Evict least-recently-used idle cached network RMSs beyond the limit.
fn evict_idle_cache<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId) {
    let limit = sim.state.st_ref().config.cache_idle_limit;
    let mut idle: Vec<(u32, SimTime, NetRmsId)> = {
        let st = sim.state.st_ref();
        match st.host(host).peers.get(&peer) {
            Some(p) => p
                .data
                .iter()
                .filter(|(_, d)| d.assigned.is_empty() && d.net_rms.is_some() && d.queue.is_empty())
                .map(|(slot, d)| (*slot, d.last_used, d.net_rms.expect("checked")))
                .collect(),
            None => return,
        }
    };
    if idle.len() <= limit {
        return;
    }
    idle.sort_by_key(|(_, used, _)| *used);
    let excess = idle.len() - limit;
    for (slot, _, net_rms) in idle.into_iter().take(excess) {
        {
            let now = sim.now();
            let net = sim.state.net();
            if net.obs.is_active() {
                net.obs.emit(now, ObsEvent::CacheEvict { host: host.0 });
            }
            let sth = sim.state.st().host_mut(host);
            sth.stats.cache_evictions.incr();
            sth.by_net.remove(&net_rms);
            if let Some(p) = sth.peers.get_mut(&peer) {
                p.data.remove(&slot);
            }
        }
        let _ = net::close_rms(sim, host, net_rms);
    }
}

// ---------------------------------------------------------------------------
// Upcalls from the network layer
// ---------------------------------------------------------------------------

/// The world's `NetWorld::deliver_up` must forward here.
pub fn on_net_deliver<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    net_rms: NetRmsId,
    msg: Message,
    _info: DeliveryInfo,
) {
    let frame = match decode(msg.wire()) {
        Ok(f) => f,
        Err(_) => {
            sim.state.st().host_mut(host).stats.garbage_frames.incr();
            return;
        }
    };
    match frame {
        Frame::Ctrl(c) => handle_ctrl(sim, host, net_rms, c),
        Frame::Data(d) => handle_data(sim, host, net_rms, d),
        Frame::Bundle(frames) => {
            for d in frames {
                handle_data(sim, host, net_rms, d);
            }
        }
        Frame::FastAck { st_rms, seq } => {
            sim.state
                .st()
                .host_mut(host)
                .stats
                .fast_acks_received
                .incr();
            let known = sim
                .state
                .st_ref()
                .host(host)
                .streams
                .get(&st_rms)
                .map(|s| s.role == StRole::Sender)
                .unwrap_or(false);
            if known {
                W::st_event(sim, host, StEvent::FastAck { st_rms, seq });
            }
        }
    }
}

fn net_peer_of<W: StWorld>(sim: &Sim<W>, host: HostId, net_rms: NetRmsId) -> Option<HostId> {
    sim.state
        .net_ref()
        .host(host)
        .rms
        .get(&net_rms)
        .map(|r| r.peer)
}

fn handle_ctrl<W: StWorld>(sim: &mut Sim<W>, host: HostId, net_rms: NetRmsId, msg: ControlMsg) {
    let Some(peer) = net_peer_of(sim, host, net_rms) else {
        return;
    };
    // Lazily register this network RMS as the peer's control-in half.
    sim.state
        .st()
        .host_mut(host)
        .by_net
        .entry(net_rms)
        .or_insert(NetUse::ControlIn(peer));
    match msg {
        ControlMsg::Hello {
            host: claimed,
            nonce,
            tag,
        } => {
            let require_auth = sim.state.st_ref().config.require_auth;
            let key = sim.state.st_ref().pair_key(host, peer);
            let ok = if require_auth {
                claimed == peer.0
                    && key
                        .map(|k| mac::verify(k, nonce, b"hello", mac::Tag(tag)))
                        .unwrap_or(false)
            } else {
                claimed == peer.0
            };
            if !ok {
                sim.state.st().host_mut(host).stats.auth_failures.incr();
                return;
            }
            peer_state(sim, host, peer).control_in = Some(net_rms);
            let ack_tag = key
                .map(|k| mac::sign(k, nonce.wrapping_add(1), b"hello-ack").0)
                .unwrap_or(0);
            emit_pre_auth(
                sim,
                host,
                peer,
                ControlMsg::HelloAck {
                    host: host.0,
                    nonce,
                    tag: ack_tag,
                },
            );
        }
        ControlMsg::HelloAck {
            host: claimed,
            nonce,
            tag,
        } => {
            let require_auth = sim.state.st_ref().config.require_auth;
            let key = sim.state.st_ref().pair_key(host, peer);
            let my_nonce = peer_state(sim, host, peer).my_nonce;
            let ok = if require_auth {
                claimed == peer.0
                    && nonce == my_nonce
                    && key
                        .map(|k| mac::verify(k, nonce.wrapping_add(1), b"hello-ack", mac::Tag(tag)))
                        .unwrap_or(false)
            } else {
                claimed == peer.0
            };
            if !ok {
                sim.state.st().host_mut(host).stats.auth_failures.incr();
                return;
            }
            let queued = {
                let p = peer_state(sim, host, peer);
                p.authed = true;
                if let Some(t) = p.auth_timer.take() {
                    t.cancel();
                }
                std::mem::take(&mut p.queued_ctrl)
            };
            for m in queued {
                emit_ctrl(sim, host, peer, m);
            }
        }
        ControlMsg::StCreateReq {
            token,
            params,
            fast_ack,
        } => {
            // Receiver-side accept policy: parameters were negotiated by
            // the sender against the real path; we only enforce our own
            // client-facing limits.
            if params.max_message_size > sim.state.st_ref().config.st_max_message_size {
                send_ctrl(
                    sim,
                    host,
                    peer,
                    ControlMsg::StCreateNak {
                        token,
                        reason: NAK_REASON_LIMITS,
                    },
                );
                return;
            }
            let st_rms = sim.state.st().alloc_st_rms();
            let params = params.shared();
            let stream = new_stream(st_rms, peer, StRole::Receiver, params.clone(), fast_ack);
            sim.state.st().host_mut(host).streams.insert(st_rms, stream);
            send_ctrl(sim, host, peer, ControlMsg::StCreateAck { token, st_rms });
            W::st_event(
                sim,
                host,
                StEvent::InboundCreated {
                    st_rms,
                    peer,
                    params,
                    fast_ack,
                },
            );
        }
        ControlMsg::StCreateAck { token, st_rms } => {
            let Some(pending) = sim.state.st().host_mut(host).pending.remove(&token) else {
                return;
            };
            let mut stream = new_stream(
                st_rms,
                pending.peer,
                StRole::Sender,
                pending.params.clone(),
                pending.fast_ack,
            );
            stream.pending_token = Some(token);
            sim.state.st().host_mut(host).streams.insert(st_rms, stream);
            let ready = assign_slot(sim, host, st_rms);
            if ready {
                if let Some(s) = sim.state.st().host_mut(host).streams.get_mut(&st_rms) {
                    s.pending_token = None;
                }
                sim.state.st().host_mut(host).stats.creates_completed.incr();
                W::st_event(
                    sim,
                    host,
                    StEvent::Created {
                        token,
                        st_rms,
                        params: pending.params,
                    },
                );
            }
        }
        ControlMsg::StCreateNak { token, reason: _ } => {
            if sim
                .state
                .st()
                .host_mut(host)
                .pending
                .remove(&token)
                .is_some()
            {
                W::st_event(
                    sim,
                    host,
                    StEvent::CreateFailed {
                        token,
                        reason: RejectReason::PeerRejected,
                    },
                );
            }
        }
        ControlMsg::StClose { st_rms } => {
            let existed = sim.state.st().host_mut(host).streams.remove(&st_rms);
            if existed.is_some() {
                W::st_event(sim, host, StEvent::Closed { st_rms });
            }
        }
    }
}

fn new_stream(
    id: StRmsId,
    peer: HostId,
    role: StRole,
    params: SharedParams,
    fast_ack: bool,
) -> StStream {
    StStream {
        id,
        peer,
        role,
        params,
        fast_ack,
        slot: None,
        pending_token: None,
        next_seq: 0,
        last_tx_deadline: SimTime::ZERO,
        last_send_job_deadline: SimTime::ZERO,
        last_recv_job_deadline: SimTime::ZERO,
        reassembly: Reassembly::new(),
        in_net: None,
        failed: false,
        failover_since: None,
        delivered: Default::default(),
        bytes: Default::default(),
        late: Default::default(),
        delays: Default::default(),
    }
}

fn handle_data<W: StWorld>(sim: &mut Sim<W>, host: HostId, net_rms: NetRmsId, d: DataFrame) {
    let Some(peer) = net_peer_of(sim, host, net_rms) else {
        return;
    };
    sim.state
        .st()
        .host_mut(host)
        .by_net
        .entry(net_rms)
        .or_insert(NetUse::DataIn(peer));
    let st_rms = d.st_rms;
    let exists = {
        let sth = sim.state.st().host_mut(host);
        match sth.streams.get_mut(&st_rms) {
            Some(s) if s.role == StRole::Receiver && !s.failed => {
                s.in_net = Some(net_rms);
                true
            }
            _ => false,
        }
    };
    if !exists {
        return;
    }
    let len = d.payload.len() as u64;
    let cost = sim.state.st_ref().config.st_cpu.cost_for(len);
    // §4.1: stage deadline = current time + stage allocation (monotone per
    // stream; see the send path for why).
    let cpu_deadline = {
        let now = sim.now();
        let sth = sim.state.st().host_mut(host);
        match sth.streams.get_mut(&st_rms) {
            Some(s) => {
                let dl = now
                    .saturating_add(s.params.delay.bound_for(len))
                    .max(s.last_recv_job_deadline);
                s.last_recv_job_deadline = dl;
                dl
            }
            None => now.saturating_add(SimDuration::ZERO),
        }
    };
    W::charge_cpu(
        sim,
        host,
        cost,
        cpu_deadline,
        st_rms.0,
        Box::new(move |sim| deliver_data(sim, host, peer, d)),
    );
}

fn deliver_data<W: StWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, d: DataFrame) {
    let now = sim.now();
    let st_rms = d.st_rms;
    let was_frag = d.frag.is_some();
    // Reassemble if fragmented.
    let complete = {
        let sth = sim.state.st().host_mut(host);
        let Some(stream) = sth.streams.get_mut(&st_rms) else {
            return;
        };
        if was_frag {
            stream.reassembly.push(d).map(|r| {
                let mut m = Message::from_wire(r.payload);
                m.source = r.source;
                m.target = r.target;
                m.span = r.span;
                (m, r.seq, r.sent_at, r.fast_ack)
            })
        } else {
            let mut m = Message::from_wire(d.payload);
            m.source = d.source;
            m.target = d.target;
            m.span = d.span;
            Some((m, d.seq, d.sent_at, d.fast_ack))
        }
    };
    let Some((msg, seq, sent_at, fast_ack)) = complete else {
        return;
    };
    // Stats + lateness.
    let (late, det) = {
        let sth = sim.state.st().host_mut(host);
        if let Some(stream) = sth.streams.get_mut(&st_rms) {
            stream.delivered.incr();
            stream.bytes.add(msg.len() as u64);
            let delay = now.saturating_since(sent_at);
            stream.delays.record(delay.as_secs_f64());
            let late = delay > stream.params.delay.bound_for(msg.len() as u64);
            if late {
                stream.late.incr();
            }
            let det = matches!(
                stream.params.delay.kind,
                rms_core::delay::DelayBoundKind::Deterministic
            );
            (late, det)
        } else {
            (false, false)
        }
    };
    {
        // `now` here equals `DeliveryInfo::delivered_at`, closing the span
        // exactly at the delay clock's end.
        let net = sim.state.net();
        if net.obs.is_active() {
            if was_frag {
                net.obs.emit(
                    now,
                    ObsEvent::Reassemble {
                        host: host.0,
                        st_rms: st_rms.0,
                        seq,
                        span: msg.span,
                    },
                );
            }
            net.obs.emit(
                now,
                ObsEvent::StDeliver {
                    host: host.0,
                    st_rms: st_rms.0,
                    seq,
                    bytes: msg.len() as u64,
                    late,
                    det,
                    span: msg.span,
                },
            );
        }
    }
    // Fast acknowledgement (§3.2): a small frame on the control channel.
    if fast_ack {
        let ctrl_out = peer_state(sim, host, peer).control_out;
        if let Some(rms) = ctrl_out {
            sim.state.st().host_mut(host).stats.fast_acks_sent.incr();
            {
                let net = sim.state.net();
                if net.obs.is_active() {
                    net.obs.emit(
                        now,
                        ObsEvent::FastAckSent {
                            host: host.0,
                            st_rms: st_rms.0,
                            seq,
                        },
                    );
                }
            }
            let payload = encode(&Frame::FastAck { st_rms, seq });
            let now = sim.now();
            let _ = net::send_on_rms(sim, host, rms, Message::from_wire(payload), Some(now), None);
        }
    }
    let info = DeliveryInfo {
        sent_at,
        delivered_at: now,
        stream: st_rms.0,
        seq,
    };
    W::st_deliver(sim, host, st_rms, msg, info);
}

/// The world's `NetWorld::rms_event` must forward here.
pub fn on_net_event<W: StWorld>(sim: &mut Sim<W>, host: HostId, event: &NetRmsEvent) {
    match event {
        NetRmsEvent::Created { token, rms, params } => {
            let purpose = sim.state.st().host_mut(host).net_pending.remove(token);
            match purpose {
                Some(NetPurpose::ControlOut(peer)) => {
                    {
                        let sth = sim.state.st().host_mut(host);
                        sth.stats.control_created.incr();
                        sth.by_net.insert(*rms, NetUse::ControlOut(peer));
                    }
                    {
                        let now = sim.now();
                        let net = sim.state.net();
                        if net.obs.is_active() {
                            net.obs.emit(
                                now,
                                ObsEvent::ControlCreated {
                                    host: host.0,
                                    peer: peer.0,
                                },
                            );
                        }
                    }
                    {
                        let p = peer_state(sim, host, peer);
                        p.control_out = Some(*rms);
                        p.control_creating = false;
                    }
                    // Authenticate (§3.2), then flush any pre-auth frames.
                    let require_auth = sim.state.st_ref().config.require_auth;
                    if require_auth {
                        send_hello(sim, host, peer);
                    } else {
                        peer_state(sim, host, peer).authed = true;
                    }
                    let pre = std::mem::take(&mut peer_state(sim, host, peer).pre_auth);
                    for m in pre {
                        emit_ctrl(sim, host, peer, m);
                    }
                    if !require_auth {
                        let queued = std::mem::take(&mut peer_state(sim, host, peer).queued_ctrl);
                        for m in queued {
                            emit_ctrl(sim, host, peer, m);
                        }
                    }
                }
                Some(NetPurpose::DataOut(peer, slot)) => {
                    // Adopt the actual parameters; if the grant is smaller
                    // than the multiplexed demand (§4.2 capacity rule),
                    // spill the newest streams to other slots.
                    let (ready_streams, spilled) = {
                        let sth = sim.state.st().host_mut(host);
                        sth.by_net.insert(*rms, NetUse::DataOut(peer, slot));
                        let mut assigned =
                            match sth.peers.get_mut(&peer).and_then(|p| p.data.get_mut(&slot)) {
                                Some(d) => {
                                    d.net_rms = Some(*rms);
                                    d.token = None;
                                    d.params = params.clone();
                                    d.assigned.clone()
                                }
                                None => Vec::new(),
                            };
                        let cap_of = |sth: &crate::st::StHost, sid: &StRmsId| {
                            sth.streams.get(sid).map(|s| s.params.capacity).unwrap_or(0)
                        };
                        let mut sum: u64 = assigned.iter().map(|sid| cap_of(sth, sid)).sum();
                        let mut spilled = Vec::new();
                        while sum > params.capacity && assigned.len() > 1 {
                            let victim = assigned.pop().expect("len > 1");
                            sum -= cap_of(sth, &victim);
                            spilled.push(victim);
                        }
                        if let Some(d) =
                            sth.peers.get_mut(&peer).and_then(|p| p.data.get_mut(&slot))
                        {
                            d.assigned = assigned.clone();
                            d.assigned_capacity = sum;
                        }
                        let mut out = Vec::new();
                        for sid in &assigned {
                            if let Some(s) = sth.streams.get_mut(sid) {
                                out.push((s.id, s.pending_token.take(), s.params.clone()));
                            }
                        }
                        (out, spilled)
                    };
                    for (st_rms, token, st_params) in ready_streams {
                        if let Some(token) = token {
                            sim.state.st().host_mut(host).stats.creates_completed.incr();
                            W::st_event(
                                sim,
                                host,
                                StEvent::Created {
                                    token,
                                    st_rms,
                                    params: st_params,
                                },
                            );
                        }
                        complete_failover_if_pending(sim, host, st_rms);
                    }
                    for st_rms in spilled {
                        if let Some(s) = sim.state.st().host_mut(host).streams.get_mut(&st_rms) {
                            s.slot = None;
                        }
                        let ready = assign_slot(sim, host, st_rms);
                        if ready {
                            let (token, st_params) = {
                                let sth = sim.state.st().host_mut(host);
                                match sth.streams.get_mut(&st_rms) {
                                    Some(s) => (s.pending_token.take(), s.params.clone()),
                                    None => (
                                        None,
                                        RmsParams::builder(1, 1).build().expect("valid").shared(),
                                    ),
                                }
                            };
                            if let Some(token) = token {
                                sim.state.st().host_mut(host).stats.creates_completed.incr();
                                W::st_event(
                                    sim,
                                    host,
                                    StEvent::Created {
                                        token,
                                        st_rms,
                                        params: st_params,
                                    },
                                );
                            }
                            complete_failover_if_pending(sim, host, st_rms);
                        }
                    }
                }
                None => {}
            }
        }
        NetRmsEvent::CreateFailed { token, reason } => {
            let purpose = sim.state.st().host_mut(host).net_pending.remove(token);
            match purpose {
                Some(NetPurpose::ControlOut(peer)) => {
                    peer_state(sim, host, peer).control_creating = false;
                    fail_queued_creates(sim, host, peer, reason.clone());
                }
                Some(NetPurpose::DataOut(peer, slot)) => {
                    let victims: Vec<(StRmsId, Option<StToken>)> = {
                        let sth = sim.state.st().host_mut(host);
                        let assigned = sth
                            .peers
                            .get_mut(&peer)
                            .and_then(|p| p.data.remove(&slot))
                            .map(|d| d.assigned)
                            .unwrap_or_default();
                        let mut out = Vec::new();
                        for sid in assigned {
                            if !sth.streams.contains_key(&sid) {
                                continue;
                            }
                            let tok = sth
                                .streams
                                .get_mut(&sid)
                                .and_then(|s| s.pending_token.take());
                            if tok.is_some() {
                                // Never-established create: forget it.
                                sth.streams.remove(&sid);
                            } else if let Some(s) = sth.streams.get_mut(&sid) {
                                // Established stream whose failover carrier
                                // could not be created: keep it marked
                                // failed so sends return a typed error.
                                s.failed = true;
                                s.failover_since = None;
                                s.slot = None;
                            }
                            out.push((sid, tok));
                        }
                        out
                    };
                    for (st_rms, tok) in victims {
                        send_ctrl(sim, host, peer, ControlMsg::StClose { st_rms });
                        if let Some(tok) = tok {
                            W::st_event(
                                sim,
                                host,
                                StEvent::CreateFailed {
                                    token: tok,
                                    reason: reason.clone(),
                                },
                            );
                        } else {
                            W::st_event(
                                sim,
                                host,
                                StEvent::Failed {
                                    st_rms,
                                    reason: FailReason::NetworkDown,
                                },
                            );
                        }
                    }
                }
                None => {}
            }
        }
        NetRmsEvent::Failed { rms, reason } => {
            handle_net_failure(sim, host, *rms, *reason);
        }
        NetRmsEvent::Closed { rms } => {
            let use_ = sim.state.st().host_mut(host).by_net.remove(rms);
            if let Some(NetUse::ControlIn(peer)) = use_ {
                peer_state(sim, host, peer).control_in = None;
            }
        }
        // The ST does not use invites or raw inbound notifications.
        NetRmsEvent::InboundCreated { .. }
        | NetRmsEvent::SenderCreatedByInvite { .. }
        | NetRmsEvent::InviteFailed { .. } => {}
    }
}

fn handle_net_failure<W: StWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    rms: NetRmsId,
    _reason: FailReason,
) {
    let use_ = sim.state.st().host_mut(host).by_net.remove(&rms);
    match use_ {
        Some(NetUse::ControlOut(peer)) => {
            {
                let p = peer_state(sim, host, peer);
                p.control_out = None;
                p.authed = false;
            }
            fail_queued_creates(sim, host, peer, RejectReason::Timeout);
            // An alternate network may still connect the two hosts:
            // re-establish eagerly so later creates don't pay the setup.
            ensure_control(sim, host, peer);
        }
        Some(NetUse::ControlIn(peer)) => {
            peer_state(sim, host, peer).control_in = None;
        }
        Some(NetUse::DataOut(peer, slot)) => {
            // Failover (§4.2): the carrier died, but the ST streams on it
            // are still live contracts with their clients. Detach them and
            // re-run admission over whatever routes remain — a cached
            // network RMS on an alternate network, or a fresh creation
            // whose `dash_net::routing` candidate walk re-homes the path
            // across the surviving k-alternates (admission NAKs on one
            // alternate fall through to the next). Only when every
            // alternate is exhausted does the client see a typed failure
            // (via assign_slot / CreateFailed).
            let now = sim.now();
            let victims: Vec<StRmsId> = {
                let sth = sim.state.st().host_mut(host);
                let assigned = sth
                    .peers
                    .get_mut(&peer)
                    .and_then(|p| p.data.remove(&slot))
                    .map(|d| d.assigned)
                    .unwrap_or_default();
                let mut out = Vec::new();
                for sid in &assigned {
                    if let Some(s) = sth.streams.get_mut(sid) {
                        s.slot = None;
                        if s.failover_since.is_none() {
                            s.failover_since = Some(now);
                        }
                        out.push(s.id);
                    }
                }
                out
            };
            if !victims.is_empty() {
                let net = sim.state.net();
                if net.obs.is_active() {
                    net.obs.emit(
                        now,
                        ObsEvent::FailoverStarted {
                            host: host.0,
                            streams: victims.len() as u32,
                        },
                    );
                }
            }
            for st_rms in victims {
                if assign_slot(sim, host, st_rms) {
                    complete_failover_if_pending(sim, host, st_rms);
                }
            }
        }
        Some(NetUse::DataIn(_peer)) => {
            // Receiver side: the inbound carrier died, but the sender may
            // fail over to a replacement; the binding is re-learned from
            // the first frame on the new carrier (handle_data). Forget it.
            let sth = sim.state.st().host_mut(host);
            for s in sth.streams.values_mut() {
                if s.role == StRole::Receiver && s.in_net == Some(rms) {
                    s.in_net = None;
                }
            }
        }
        None => {}
    }
}

/// If `st_rms` was failing over, close the failover span: record the
/// recovery latency and emit [`ObsEvent::FailoverCompleted`].
fn complete_failover_if_pending<W: StWorld>(sim: &mut Sim<W>, host: HostId, st_rms: StRmsId) {
    let since = sim
        .state
        .st()
        .host_mut(host)
        .streams
        .get_mut(&st_rms)
        .and_then(|s| s.failover_since.take());
    let Some(since) = since else {
        return;
    };
    let now = sim.now();
    let latency_s = now.saturating_since(since).as_secs_f64();
    let net = sim.state.net();
    if net.obs.is_active() {
        net.obs.emit(
            now,
            ObsEvent::FailoverCompleted {
                host: host.0,
                st_rms: st_rms.0,
                latency_s,
            },
        );
    }
}

/// The world's `NetWorld::network_event` must forward here.
///
/// On recovery (`up = true`) every host re-establishes control channels the
/// failure tore down, so stream creation toward those peers works again
/// without waiting for client traffic. Failure (`up = false`) needs no
/// extra work: [`on_net_event`] already saw `Failed` for every RMS on the
/// dead network.
pub fn on_network_event<W: StWorld>(sim: &mut Sim<W>, network: NetworkId, up: bool) {
    let _ = network;
    if !up {
        return;
    }
    let work: Vec<(HostId, HostId)> = {
        let state = &sim.state;
        let st = state.st_ref();
        let mut out = Vec::new();
        for (h, sth) in st.hosts.iter().enumerate() {
            let host = HostId(h as u32);
            if !state.net_ref().host(host).up {
                continue;
            }
            let mut peers: Vec<HostId> = sth
                .peers
                .iter()
                .filter(|(peer, p)| {
                    p.control_out.is_none()
                        && !p.control_creating
                        && (!p.data.is_empty()
                            || !p.queued_ctrl.is_empty()
                            || sth.streams.values().any(|s| s.peer == **peer))
                })
                .map(|(peer, _)| *peer)
                .collect();
            // `peers` is a HashMap: sort for deterministic replay.
            peers.sort();
            for peer in peers {
                out.push((host, peer));
            }
        }
        out
    };
    for (host, peer) in work {
        ensure_control(sim, host, peer);
    }
}
