//! ST wire format.
//!
//! Everything the subtransport layer sends rides inside network-RMS message
//! payloads as serialized *frames*. Real byte-level encoding keeps the
//! layering honest: piggybacked bundles (§4.2) really are one network
//! message whose size is the sum of its parts, and fragment headers (§4.3)
//! really cost bytes.
//!
//! Frames encode to scatter-gather [`WireMsg`]s: the fixed-size header
//! fields go into one small owned chunk and payload bytes ride along as
//! zero-copy segment views — a message body is never copied on encode.
//! Decode walks a [`WireCursor`] over the shared segments and hands the
//! payload back as views of the sender's buffer. [`WireMsg::len`] on the
//! encoder's output is the single source of truth for frame sizes; there
//! is no parallel size computation to drift out of sync with `put_data`.

use bytes::{BufMut, BytesMut};
use dash_sim::time::{SimDuration, SimTime};
use rms_core::delay::{DelayBound, DelayBoundKind, StatisticalSpec};
use rms_core::message::Label;
use rms_core::params::{
    Authentication, BitErrorRate, Privacy, Reliability, RmsParams, SecurityParams,
};
use rms_core::wire::{Truncated, WireCursor, WireMsg};

use crate::ids::{StRmsId, StToken};

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Unknown frame or control tag.
    BadTag(u8),
    /// A decoded value was structurally invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<Truncated> for WireError {
    fn from(_: Truncated) -> Self {
        WireError::Truncated
    }
}

/// Fragment position within a fragmented ST message (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragInfo {
    /// Zero-based fragment index.
    pub index: u32,
    /// Total fragments in the message.
    pub count: u32,
}

/// A data frame: one ST message or fragment thereof.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    /// The ST RMS this belongs to.
    pub st_rms: StRmsId,
    /// Per-ST-RMS sequence number of the *message* (fragments share it).
    pub seq: u64,
    /// Fragmentation info, if this is a fragment.
    pub frag: Option<FragInfo>,
    /// When the client's send operation started (delay clock origin, §2.2).
    pub sent_at: SimTime,
    /// The receiver ST should send a fast acknowledgement (§3.2).
    pub fast_ack: bool,
    /// Optional source label.
    pub source: Option<Label>,
    /// Optional target label.
    pub target: Option<Label>,
    /// Optional observability span id, carried end-to-end so the receiver
    /// can close the message's lifecycle span (`dash_sim::obs`). Present
    /// on the wire only when set (adds 8 bytes); `None` whenever
    /// observability is off, keeping the baseline wire format unchanged.
    pub span: Option<u64>,
    /// Payload bytes (scatter-gather; fragments are views of the original
    /// message body).
    pub payload: WireMsg,
}

/// Control messages carried on the per-peer control channel (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Authentication challenge: "I am `host`; prove you share our key".
    Hello {
        /// Sender's host id.
        host: u32,
        /// Fresh nonce.
        nonce: u64,
        /// MAC over the nonce under the pair key.
        tag: u64,
    },
    /// Authentication response: MAC over `nonce + 1` under the pair key.
    HelloAck {
        /// The responder's host id.
        host: u32,
        /// Echo of the challenge nonce.
        nonce: u64,
        /// MAC over `nonce + 1`.
        tag: u64,
    },
    /// Request to create an ST RMS toward the receiver (the requester is
    /// the data sender).
    StCreateReq {
        /// Requester's correlation token.
        token: StToken,
        /// The negotiated ST-level parameters.
        params: RmsParams,
        /// Whether data frames will request fast acknowledgements.
        fast_ack: bool,
    },
    /// Positive reply carrying the receiver-assigned stream id.
    StCreateAck {
        /// Echo of the request token.
        token: StToken,
        /// The new stream id.
        st_rms: StRmsId,
    },
    /// Negative reply.
    StCreateNak {
        /// Echo of the request token.
        token: StToken,
        /// Coarse reason code.
        reason: u8,
    },
    /// Close an ST RMS (sent by its sender side).
    StClose {
        /// The stream being closed.
        st_rms: StRmsId,
    },
}

/// Any ST frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A single data frame.
    Data(DataFrame),
    /// Several data frames piggybacked into one network message (§4.2).
    Bundle(Vec<DataFrame>),
    /// A control message.
    Ctrl(ControlMsg),
    /// Fast acknowledgement for `(st_rms, seq)` (§3.2).
    FastAck {
        /// Acknowledged stream.
        st_rms: StRmsId,
        /// Acknowledged message sequence number.
        seq: u64,
    },
}

const TAG_DATA: u8 = 1;
const TAG_BUNDLE: u8 = 2;
const TAG_CTRL: u8 = 3;
const TAG_FASTACK: u8 = 4;

const CTRL_HELLO: u8 = 1;
const CTRL_HELLO_ACK: u8 = 2;
const CTRL_CREATE_REQ: u8 = 3;
const CTRL_CREATE_ACK: u8 = 4;
const CTRL_CREATE_NAK: u8 = 5;
const CTRL_CLOSE: u8 = 6;

const FLAG_FRAG: u8 = 1;
const FLAG_FAST_ACK: u8 = 2;
const FLAG_SOURCE: u8 = 4;
const FLAG_TARGET: u8 = 8;
const FLAG_SPAN: u8 = 16;

/// Write `d`'s header fields — everything up to and including the payload
/// length prefix, but not the payload itself — into `buf`.
fn put_data_header(buf: &mut BytesMut, d: &DataFrame) {
    buf.put_u8(TAG_DATA);
    buf.put_u64(d.st_rms.0);
    buf.put_u64(d.seq);
    let mut flags = 0u8;
    if d.frag.is_some() {
        flags |= FLAG_FRAG;
    }
    if d.fast_ack {
        flags |= FLAG_FAST_ACK;
    }
    if d.source.is_some() {
        flags |= FLAG_SOURCE;
    }
    if d.target.is_some() {
        flags |= FLAG_TARGET;
    }
    if d.span.is_some() {
        flags |= FLAG_SPAN;
    }
    buf.put_u8(flags);
    if let Some(f) = d.frag {
        buf.put_u32(f.index);
        buf.put_u32(f.count);
    }
    buf.put_u64(d.sent_at.as_nanos());
    if let Some(s) = d.source {
        buf.put_u64(s.0);
    }
    if let Some(t) = d.target {
        buf.put_u64(t.0);
    }
    if let Some(sp) = d.span {
        buf.put_u64(sp);
    }
    buf.put_u32(d.payload.len() as u32);
}

fn put_params(buf: &mut BytesMut, p: &RmsParams) {
    buf.put_u8(match p.reliability {
        Reliability::Unreliable => 0,
        Reliability::Reliable => 1,
    });
    buf.put_u8(match p.security.authentication {
        Authentication::Unauthenticated => 0,
        Authentication::Authenticated => 1,
    });
    buf.put_u8(match p.security.privacy {
        Privacy::Open => 0,
        Privacy::Private => 1,
    });
    buf.put_u64(p.capacity);
    buf.put_u64(p.max_message_size);
    buf.put_u64(p.delay.fixed.as_nanos());
    buf.put_u64(p.delay.per_byte.as_nanos());
    match p.delay.kind {
        DelayBoundKind::BestEffort => buf.put_u8(0),
        DelayBoundKind::Statistical(s) => {
            buf.put_u8(1);
            buf.put_f64(s.average_load);
            buf.put_f64(s.burstiness);
            buf.put_f64(s.delay_probability);
        }
        DelayBoundKind::Deterministic => buf.put_u8(2),
    }
    buf.put_f64(p.error_rate.rate());
}

fn put_ctrl(buf: &mut BytesMut, c: &ControlMsg) {
    buf.put_u8(TAG_CTRL);
    match c {
        ControlMsg::Hello { host, nonce, tag } => {
            buf.put_u8(CTRL_HELLO);
            buf.put_u32(*host);
            buf.put_u64(*nonce);
            buf.put_u64(*tag);
        }
        ControlMsg::HelloAck { host, nonce, tag } => {
            buf.put_u8(CTRL_HELLO_ACK);
            buf.put_u32(*host);
            buf.put_u64(*nonce);
            buf.put_u64(*tag);
        }
        ControlMsg::StCreateReq {
            token,
            params,
            fast_ack,
        } => {
            buf.put_u8(CTRL_CREATE_REQ);
            buf.put_u64(token.0);
            buf.put_u8(u8::from(*fast_ack));
            put_params(buf, params);
        }
        ControlMsg::StCreateAck { token, st_rms } => {
            buf.put_u8(CTRL_CREATE_ACK);
            buf.put_u64(token.0);
            buf.put_u64(st_rms.0);
        }
        ControlMsg::StCreateNak { token, reason } => {
            buf.put_u8(CTRL_CREATE_NAK);
            buf.put_u64(token.0);
            buf.put_u8(*reason);
        }
        ControlMsg::StClose { st_rms } => {
            buf.put_u8(CTRL_CLOSE);
            buf.put_u64(st_rms.0);
        }
    }
}

/// Encode a frame as a scatter-gather [`WireMsg`]: header fields in one
/// owned chunk (bundles share a single header arena), payload bytes as
/// zero-copy segment views. `encode(f).len()` is the frame's exact wire
/// size.
pub fn encode(frame: &Frame) -> WireMsg {
    match frame {
        Frame::Data(d) => {
            let mut buf = BytesMut::with_capacity(64);
            put_data_header(&mut buf, d);
            let mut out = WireMsg::from_bytes(buf.freeze());
            out.append(&d.payload);
            out
        }
        Frame::Bundle(frames) => {
            // All headers go into one arena; the frame payloads are
            // interleaved between zero-copy slices of it.
            let mut buf = BytesMut::with_capacity(16 + 48 * frames.len());
            buf.put_u8(TAG_BUNDLE);
            buf.put_u16(frames.len() as u16);
            let mut cuts = Vec::with_capacity(frames.len());
            for d in frames {
                put_data_header(&mut buf, d);
                cuts.push(buf.len());
            }
            let arena = buf.freeze();
            let mut out = WireMsg::new();
            let mut prev = 0;
            for (d, cut) in frames.iter().zip(cuts) {
                out.push(arena.slice(prev..cut));
                out.append(&d.payload);
                prev = cut;
            }
            out
        }
        Frame::Ctrl(c) => {
            let mut buf = BytesMut::with_capacity(64);
            put_ctrl(&mut buf, c);
            WireMsg::from_bytes(buf.freeze())
        }
        Frame::FastAck { st_rms, seq } => {
            let mut buf = BytesMut::with_capacity(17);
            buf.put_u8(TAG_FASTACK);
            buf.put_u64(st_rms.0);
            buf.put_u64(*seq);
            WireMsg::from_bytes(buf.freeze())
        }
    }
}

fn get_data(c: &mut WireCursor<'_>) -> Result<DataFrame, WireError> {
    let st_rms = StRmsId(c.get_u64()?);
    let seq = c.get_u64()?;
    let flags = c.get_u8()?;
    let frag = if flags & FLAG_FRAG != 0 {
        let index = c.get_u32()?;
        let count = c.get_u32()?;
        if count == 0 || index >= count {
            return Err(WireError::Invalid("fragment index/count"));
        }
        Some(FragInfo { index, count })
    } else {
        None
    };
    let sent_at = SimTime::from_nanos(c.get_u64()?);
    let source = if flags & FLAG_SOURCE != 0 {
        Some(Label(c.get_u64()?))
    } else {
        None
    };
    let target = if flags & FLAG_TARGET != 0 {
        Some(Label(c.get_u64()?))
    } else {
        None
    };
    let span = if flags & FLAG_SPAN != 0 {
        Some(c.get_u64()?)
    } else {
        None
    };
    let len = c.get_u32()? as usize;
    let payload = c.take_wire(len)?;
    Ok(DataFrame {
        st_rms,
        seq,
        frag,
        sent_at,
        fast_ack: flags & FLAG_FAST_ACK != 0,
        source,
        target,
        span,
        payload,
    })
}

fn get_params(c: &mut WireCursor<'_>) -> Result<RmsParams, WireError> {
    let reliability = match c.get_u8()? {
        0 => Reliability::Unreliable,
        1 => Reliability::Reliable,
        t => return Err(WireError::BadTag(t)),
    };
    let authentication = match c.get_u8()? {
        0 => Authentication::Unauthenticated,
        1 => Authentication::Authenticated,
        t => return Err(WireError::BadTag(t)),
    };
    let privacy = match c.get_u8()? {
        0 => Privacy::Open,
        1 => Privacy::Private,
        t => return Err(WireError::BadTag(t)),
    };
    let capacity = c.get_u64()?;
    let max_message_size = c.get_u64()?;
    let fixed = SimDuration::from_nanos(c.get_u64()?);
    let per_byte = SimDuration::from_nanos(c.get_u64()?);
    let kind = match c.get_u8()? {
        0 => DelayBoundKind::BestEffort,
        1 => {
            let average_load = c.get_f64()?;
            let burstiness = c.get_f64()?;
            let delay_probability = c.get_f64()?;
            if !(average_load >= 0.0
                && burstiness >= 1.0
                && (0.0..=1.0).contains(&delay_probability))
            {
                return Err(WireError::Invalid("statistical spec"));
            }
            DelayBoundKind::Statistical(StatisticalSpec::new(
                average_load,
                burstiness,
                delay_probability,
            ))
        }
        2 => DelayBoundKind::Deterministic,
        t => return Err(WireError::BadTag(t)),
    };
    let error_rate = BitErrorRate::new(c.get_f64()?).ok_or(WireError::Invalid("error rate"))?;
    let params = RmsParams {
        reliability,
        security: SecurityParams {
            authentication,
            privacy,
        },
        capacity,
        max_message_size,
        delay: DelayBound {
            fixed,
            per_byte,
            kind,
        },
        error_rate,
    };
    params
        .validate()
        .map_err(|_| WireError::Invalid("parameter invariants"))?;
    Ok(params)
}

fn get_ctrl(c: &mut WireCursor<'_>) -> Result<ControlMsg, WireError> {
    match c.get_u8()? {
        CTRL_HELLO => Ok(ControlMsg::Hello {
            host: c.get_u32()?,
            nonce: c.get_u64()?,
            tag: c.get_u64()?,
        }),
        CTRL_HELLO_ACK => Ok(ControlMsg::HelloAck {
            host: c.get_u32()?,
            nonce: c.get_u64()?,
            tag: c.get_u64()?,
        }),
        CTRL_CREATE_REQ => {
            let token = StToken(c.get_u64()?);
            let fast_ack = c.get_u8()? != 0;
            let params = get_params(c)?;
            Ok(ControlMsg::StCreateReq {
                token,
                params,
                fast_ack,
            })
        }
        CTRL_CREATE_ACK => Ok(ControlMsg::StCreateAck {
            token: StToken(c.get_u64()?),
            st_rms: StRmsId(c.get_u64()?),
        }),
        CTRL_CREATE_NAK => Ok(ControlMsg::StCreateNak {
            token: StToken(c.get_u64()?),
            reason: c.get_u8()?,
        }),
        CTRL_CLOSE => Ok(ControlMsg::StClose {
            st_rms: StRmsId(c.get_u64()?),
        }),
        t => Err(WireError::BadTag(t)),
    }
}

/// Decode one frame from a wire message, slicing its shared segments —
/// payload bytes are handed back as zero-copy views, never copied.
///
/// # Errors
///
/// [`WireError`] on truncation, unknown tags, or invalid fields.
pub fn decode(msg: &WireMsg) -> Result<Frame, WireError> {
    let mut c = msg.cursor();
    match c.get_u8()? {
        TAG_DATA => Ok(Frame::Data(get_data(&mut c)?)),
        TAG_BUNDLE => {
            let count = c.get_u16()? as usize;
            let mut frames = Vec::with_capacity(count);
            for _ in 0..count {
                let tag = c.get_u8()?;
                if tag != TAG_DATA {
                    return Err(WireError::BadTag(tag));
                }
                frames.push(get_data(&mut c)?);
            }
            Ok(Frame::Bundle(frames))
        }
        TAG_CTRL => Ok(Frame::Ctrl(get_ctrl(&mut c)?)),
        TAG_FASTACK => Ok(Frame::FastAck {
            st_rms: StRmsId(c.get_u64()?),
            seq: c.get_u64()?,
        }),
        t => Err(WireError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn sample_data(seq: u64, len: usize) -> DataFrame {
        DataFrame {
            st_rms: StRmsId(42),
            seq,
            frag: None,
            sent_at: SimTime::from_nanos(123_456),
            fast_ack: false,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(vec![7u8; len]),
        }
    }

    fn sample_params() -> RmsParams {
        RmsParams::builder(10_000, 1_000)
            .reliability(Reliability::Reliable)
            .security(SecurityParams::FULL)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(5),
                SimDuration::from_nanos(800),
            ))
            .error_rate(BitErrorRate::new(1e-7).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn data_round_trip() {
        let f = Frame::Data(sample_data(9, 100));
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn data_with_everything_round_trip() {
        let mut d = sample_data(1, 10);
        d.frag = Some(FragInfo { index: 2, count: 5 });
        d.fast_ack = true;
        d.source = Some(Label(11));
        d.target = Some(Label(22));
        d.span = Some(0xdead_beef);
        let f = Frame::Data(d);
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn bundle_round_trip() {
        let f = Frame::Bundle(vec![
            sample_data(0, 5),
            sample_data(1, 0),
            sample_data(2, 300),
        ]);
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn encode_and_decode_never_copy_payload_bytes() {
        let body = Bytes::from(vec![9u8; 256]);
        let mut d = sample_data(4, 0);
        d.payload = WireMsg::from_bytes(body.clone());
        let enc = encode(&Frame::Data(d));
        // The encoded message's payload segment *is* the caller's buffer.
        assert!(enc.segments().any(|s| s.as_ptr() == body.as_ptr()));
        // And decode hands the same buffer back.
        let Frame::Data(out) = decode(&enc).unwrap() else {
            panic!("expected data frame");
        };
        assert_eq!(out.payload.contiguous().as_ptr(), body.as_ptr());
    }

    #[test]
    fn bundle_headers_share_one_arena() {
        let f = Frame::Bundle(vec![sample_data(0, 64), sample_data(1, 64)]);
        let enc = encode(&f);
        // [hdr0, payload0, hdr1, payload1]: both header chunks are slices
        // of one arena allocation, adjacent payloads stay distinct.
        let segs: Vec<_> = enc.segments().collect();
        assert_eq!(segs.len(), 4);
        let arena_base = segs[0].as_ptr();
        let hdr1 = segs[2].as_ptr();
        assert_eq!(unsafe { arena_base.add(segs[0].len()) }, hdr1);
    }

    #[test]
    fn ctrl_round_trips() {
        let msgs = vec![
            ControlMsg::Hello {
                host: 3,
                nonce: 99,
                tag: 0xabcd,
            },
            ControlMsg::HelloAck {
                host: 4,
                nonce: 99,
                tag: 0xef01,
            },
            ControlMsg::StCreateReq {
                token: StToken(7),
                params: sample_params(),
                fast_ack: true,
            },
            ControlMsg::StCreateAck {
                token: StToken(7),
                st_rms: StRmsId(12),
            },
            ControlMsg::StCreateNak {
                token: StToken(7),
                reason: 2,
            },
            ControlMsg::StClose {
                st_rms: StRmsId(12),
            },
        ];
        for m in msgs {
            let f = Frame::Ctrl(m);
            assert_eq!(decode(&encode(&f)).unwrap(), f, "failed for {f:?}");
        }
    }

    #[test]
    fn statistical_params_round_trip() {
        let mut p = sample_params();
        p.delay.kind = DelayBoundKind::Statistical(StatisticalSpec::new(5e5, 3.0, 0.95));
        let f = Frame::Ctrl(ControlMsg::StCreateReq {
            token: StToken(1),
            params: p,
            fast_ack: false,
        });
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn fast_ack_round_trip() {
        let f = Frame::FastAck {
            st_rms: StRmsId(5),
            seq: 77,
        };
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn truncated_fails() {
        let f = Frame::Data(sample_data(1, 50));
        let enc = encode(&f);
        for cut in [0, 1, 5, enc.len() - 1] {
            let partial = enc.slice(0, cut);
            assert!(decode(&partial).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_fails() {
        let b = WireMsg::from_bytes(Bytes::from_static(&[200, 0, 0]));
        assert_eq!(decode(&b), Err(WireError::BadTag(200)));
    }

    #[test]
    fn invalid_frag_fails() {
        let mut d = sample_data(1, 4);
        d.frag = Some(FragInfo { index: 5, count: 5 }); // index >= count
        let enc = encode(&Frame::Data(d));
        assert!(matches!(decode(&enc), Err(WireError::Invalid(_))));
    }

    #[test]
    fn encoded_len_is_header_plus_options_plus_payload() {
        // WireMsg::len() on the encoder output is the size authority; pin
        // the layout arithmetic so accidental format drift is loud. Base
        // header: tag + st_rms + seq + flags + sent_at + payload length
        // prefix = 30 bytes; frag/source/target/span add 8 bytes each.
        for (len, frag, src, tgt, span) in [
            (0usize, false, false, false, false),
            (100, true, false, false, false),
            (5, false, true, true, false),
            (7, false, false, false, true),
            (1000, true, true, true, true),
        ] {
            let mut d = sample_data(3, len);
            if frag {
                d.frag = Some(FragInfo { index: 0, count: 2 });
            }
            if src {
                d.source = Some(Label(1));
            }
            if tgt {
                d.target = Some(Label(2));
            }
            if span {
                d.span = Some(9);
            }
            let expected = 30 + len + [frag, src, tgt, span].iter().filter(|&&b| b).count() * 8;
            assert_eq!(
                encode(&Frame::Data(d)).len(),
                expected,
                "mismatch for len={len} frag={frag} src={src} tgt={tgt} span={span}"
            );
        }
    }

    #[test]
    fn bundle_overhead_is_three_bytes() {
        let d = sample_data(0, 10);
        let single = encode(&Frame::Data(d.clone())).len();
        let bundle = encode(&Frame::Bundle(vec![d.clone(), d])).len();
        assert_eq!(bundle, 3 + 2 * single);
    }
}
