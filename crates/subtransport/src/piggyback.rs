//! Piggybacking queues (paper §4.3.1).
//!
//! For each outgoing data network RMS the ST keeps a queue of client
//! messages awaiting transmission, hoping to combine several into one
//! network message. The paper's policy:
//!
//! - A message's **maximum transmission deadline** is its arrival time plus
//!   the ST RMS delay bound minus the network RMS delay bound.
//! - Its **minimum transmission deadline** is the actual transmission
//!   deadline of the previous message on the same ST RMS (ordering).
//! - The queue never exceeds the network RMS maximum message size; messages
//!   that require fragmentation are never piggybacked.
//! - The queue is flushed when its maximum transmission deadline is reached
//!   or when it overflows, with the flush deadline passed to the network
//!   layer.
//!
//! Entries are queued *pre-encoded*: each holds the scatter-gather
//! [`WireMsg`] its frame encoded to, so a flush concatenates segment
//! lists (plus a 3-byte bundle header) instead of re-encoding — and
//! `wire.len()` is the entry's size, with no parallel size bookkeeping.
//!
//! **Interpretation note** (garbled sentence in the source scan, recorded
//! in DESIGN.md): we take the queue's *maximum* transmission deadline to be
//! the **earliest** component maximum — flushing any later would make that
//! component late — and the queue's *minimum* to be the **latest** component
//! minimum, since the bundle's single network deadline must satisfy every
//! component's ordering floor. A new message whose maximum deadline lies
//! before the queue's minimum cannot join (no single deadline would serve
//! both); the queue is flushed first.

use bytes::{BufMut, BytesMut};
use dash_sim::time::SimTime;
use rms_core::wire::WireMsg;

use crate::ids::StRmsId;

/// Overhead bytes of a bundle wrapper (tag + count). Pinned against the
/// encoder by `bundle_overhead_matches_encoder` in `wire`'s tests.
pub const BUNDLE_OVERHEAD: u64 = 3;

const TAG_BUNDLE: u8 = 2;

/// One message waiting in a piggybacking queue, already encoded.
#[derive(Debug, Clone)]
pub struct PendingEntry {
    /// The frame, encoded and ready to transmit (`wire.len()` is its
    /// exact on-wire size).
    pub wire: WireMsg,
    /// The ST RMS the frame belongs to (flush bookkeeping).
    pub st_rms: StRmsId,
    /// The client send time carried in the frame.
    pub sent_at: SimTime,
    /// Observability span id carried in the frame, if any.
    pub span: Option<u64>,
    /// Ordering floor: the previous message's actual transmission deadline
    /// on the same ST RMS.
    pub min_deadline: SimTime,
    /// Latest time this message may be handed to the network layer:
    /// `arrival + (ST delay bound − network delay bound)`.
    pub max_deadline: SimTime,
}

/// Result of trying to add a message to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; (re)arm the flush timer for the returned instant.
    Queued {
        /// When the queue must be flushed at the latest.
        flush_at: SimTime,
    },
    /// The bundle would exceed the network maximum message size: flush the
    /// queue, then retry.
    WouldOverflow,
    /// The message's maximum deadline precedes the queue's minimum: no
    /// single network deadline could satisfy both. Flush, then retry.
    DeadlineConflict,
}

/// A per-network-RMS piggybacking queue.
#[derive(Debug, Default)]
pub struct PiggybackQueue {
    entries: Vec<PendingEntry>,
    encoded_bytes: u64,
}

impl PiggybackQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PiggybackQueue::default()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The queue's minimum transmission deadline: the latest component
    /// minimum (the bundle deadline must be at or after every floor).
    pub fn min_deadline(&self) -> Option<SimTime> {
        self.entries.iter().map(|e| e.min_deadline).max()
    }

    /// The queue's maximum transmission deadline: the earliest component
    /// maximum (flush any later and that component is late).
    pub fn max_deadline(&self) -> Option<SimTime> {
        self.entries.iter().map(|e| e.max_deadline).min()
    }

    /// The network-message size the queue would occupy if flushed now.
    pub fn bundle_bytes(&self) -> u64 {
        match self.entries.len() {
            0 => 0,
            1 => self.encoded_bytes,
            _ => BUNDLE_OVERHEAD + self.encoded_bytes,
        }
    }

    /// Try to append `entry`, keeping the bundle within
    /// `max_bundle_bytes`.
    pub fn try_push(&mut self, entry: PendingEntry, max_bundle_bytes: u64) -> PushOutcome {
        let entry_len = entry.wire.len() as u64;
        let projected = if self.entries.is_empty() {
            entry_len
        } else {
            BUNDLE_OVERHEAD + self.encoded_bytes + entry_len
        };
        if projected > max_bundle_bytes {
            return PushOutcome::WouldOverflow;
        }
        if let Some(queue_min) = self.min_deadline() {
            if entry.max_deadline < queue_min {
                return PushOutcome::DeadlineConflict;
            }
        }
        self.encoded_bytes += entry_len;
        self.entries.push(entry);
        let flush_at = self.max_deadline().expect("non-empty");
        PushOutcome::Queued { flush_at }
    }

    /// Flush: take every queued message. Returns the entries (in arrival
    /// order), the network transmission deadline to pass down (the queue's
    /// maximum, clamped to its minimum), and the per-stream actual deadline
    /// each component message is considered to have had.
    pub fn flush(&mut self) -> Option<FlushedBundle> {
        if self.entries.is_empty() {
            return None;
        }
        let max_d = self.max_deadline().expect("non-empty");
        let min_d = self.min_deadline().expect("non-empty");
        let deadline = if max_d < min_d { min_d } else { max_d };
        let entries = std::mem::take(&mut self.entries);
        self.encoded_bytes = 0;
        Some(FlushedBundle { entries, deadline })
    }
}

/// The result of flushing a queue.
#[derive(Debug)]
pub struct FlushedBundle {
    /// Component entries, in arrival order, each carrying its pre-encoded
    /// frame.
    pub entries: Vec<PendingEntry>,
    /// The single transmission deadline the bundle gets at the network
    /// layer — also the actual transmission deadline of every component
    /// (feeding the next messages' minimum-deadline floors).
    pub deadline: SimTime,
}

impl FlushedBundle {
    /// Assemble the single network payload: the lone entry's frame as-is,
    /// or a 3-byte bundle header followed by every entry's segments. No
    /// frame is re-encoded and no payload byte is copied.
    pub fn encode(mut self) -> WireMsg {
        if self.entries.len() == 1 {
            return self.entries.remove(0).wire;
        }
        let mut hdr = BytesMut::with_capacity(BUNDLE_OVERHEAD as usize);
        hdr.put_u8(TAG_BUNDLE);
        hdr.put_u16(self.entries.len() as u16);
        let mut out = WireMsg::from_bytes(hdr.freeze());
        for e in &self.entries {
            out.append(&e.wire);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode, DataFrame, Frame};
    use rms_core::wire::WireMsg;

    fn entry(stream: u64, len: usize, min_ns: u64, max_ns: u64) -> PendingEntry {
        let frame = DataFrame {
            st_rms: StRmsId(stream),
            seq: 0,
            frag: None,
            sent_at: SimTime::ZERO,
            fast_ack: false,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(vec![0u8; len]),
        };
        PendingEntry {
            wire: encode(&Frame::Data(frame)),
            st_rms: StRmsId(stream),
            sent_at: SimTime::ZERO,
            span: None,
            min_deadline: SimTime::from_nanos(min_ns),
            max_deadline: SimTime::from_nanos(max_ns),
        }
    }

    fn entry_with_seq(stream: u64, seq: u64, max_ns: u64) -> PendingEntry {
        let frame = DataFrame {
            st_rms: StRmsId(stream),
            seq,
            frag: None,
            sent_at: SimTime::ZERO,
            fast_ack: false,
            source: None,
            target: None,
            span: None,
            payload: WireMsg::from(vec![0u8; 10]),
        };
        PendingEntry {
            wire: encode(&Frame::Data(frame)),
            st_rms: StRmsId(stream),
            sent_at: SimTime::ZERO,
            span: None,
            min_deadline: SimTime::ZERO,
            max_deadline: SimTime::from_nanos(max_ns),
        }
    }

    #[test]
    fn queue_accumulates_and_tracks_deadlines() {
        let mut q = PiggybackQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.max_deadline(), None);
        match q.try_push(entry(1, 10, 0, 1_000), 10_000) {
            PushOutcome::Queued { flush_at } => assert_eq!(flush_at, SimTime::from_nanos(1_000)),
            other => panic!("{other:?}"),
        }
        match q.try_push(entry(2, 10, 100, 500), 10_000) {
            // Earlier max tightens the flush time.
            PushOutcome::Queued { flush_at } => assert_eq!(flush_at, SimTime::from_nanos(500)),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.min_deadline(), Some(SimTime::from_nanos(100)));
        assert_eq!(q.max_deadline(), Some(SimTime::from_nanos(500)));
    }

    #[test]
    fn overflow_is_reported() {
        let mut q = PiggybackQueue::new();
        let e = entry(1, 400, 0, 1_000);
        let budget = e.wire.len() as u64 + 10; // fits one, not two
        assert!(matches!(
            q.try_push(e.clone(), budget),
            PushOutcome::Queued { .. }
        ));
        assert_eq!(q.try_push(e, budget), PushOutcome::WouldOverflow);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn deadline_conflict_is_reported() {
        let mut q = PiggybackQueue::new();
        // Queue holds a message whose ordering floor is 2000ns.
        q.try_push(entry(1, 10, 2_000, 5_000), 10_000);
        // A new very-urgent message (max 1500ns) cannot share a deadline.
        assert_eq!(
            q.try_push(entry(2, 10, 0, 1_500), 10_000),
            PushOutcome::DeadlineConflict
        );
    }

    #[test]
    fn flush_single_message_encodes_as_plain_data() {
        let mut q = PiggybackQueue::new();
        q.try_push(entry(1, 25, 0, 1_000), 10_000);
        let bundle = q.flush().unwrap();
        assert_eq!(bundle.deadline, SimTime::from_nanos(1_000));
        let payload = bundle.encode();
        assert!(matches!(decode(&payload).unwrap(), Frame::Data(_)));
        assert!(q.is_empty());
        assert!(q.flush().is_none());
    }

    #[test]
    fn flush_many_encodes_as_bundle_in_arrival_order() {
        let mut q = PiggybackQueue::new();
        for i in 0..3u64 {
            q.try_push(entry_with_seq(i, i, 1_000 + i), 10_000);
        }
        let payload = q.flush().unwrap().encode();
        match decode(&payload).unwrap() {
            Frame::Bundle(frames) => {
                assert_eq!(frames.len(), 3);
                for (i, f) in frames.iter().enumerate() {
                    assert_eq!(f.st_rms, StRmsId(i as u64));
                    assert_eq!(f.seq, i as u64);
                }
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn flush_bundle_matches_wire_encoder_bytes() {
        // The flush-time concatenation must produce byte-identical output
        // to encoding a Frame::Bundle of the same frames.
        let frames: Vec<DataFrame> = (0..3u64)
            .map(|i| DataFrame {
                st_rms: StRmsId(i),
                seq: i,
                frag: None,
                sent_at: SimTime::from_nanos(40 + i),
                fast_ack: i == 1,
                source: None,
                target: None,
                span: None,
                payload: WireMsg::from(vec![i as u8; 16]),
            })
            .collect();
        let mut q = PiggybackQueue::new();
        for f in &frames {
            let e = PendingEntry {
                wire: encode(&Frame::Data(f.clone())),
                st_rms: f.st_rms,
                sent_at: f.sent_at,
                span: f.span,
                min_deadline: SimTime::ZERO,
                max_deadline: SimTime::from_nanos(1_000),
            };
            q.try_push(e, 100_000);
        }
        let flushed = q.flush().unwrap().encode();
        let reference = encode(&Frame::Bundle(frames));
        assert_eq!(flushed.contiguous(), reference.contiguous());
        assert_eq!(flushed.len(), reference.len());
    }

    #[test]
    fn flush_deadline_clamps_to_min_floor() {
        let mut q = PiggybackQueue::new();
        // min 5000 > max 3000 can only arise transiently through clamping
        // elsewhere; flush must still produce a deadline ≥ every floor.
        q.try_push(entry(1, 10, 5_000, 3_000), 10_000);
        let bundle = q.flush().unwrap();
        assert_eq!(bundle.deadline, SimTime::from_nanos(5_000));
    }

    #[test]
    fn bundle_bytes_accounting() {
        let mut q = PiggybackQueue::new();
        assert_eq!(q.bundle_bytes(), 0);
        let e = entry(1, 10, 0, 1_000);
        let one = e.wire.len() as u64;
        q.try_push(e.clone(), 10_000);
        assert_eq!(q.bundle_bytes(), one);
        q.try_push(e, 10_000);
        assert_eq!(q.bundle_bytes(), BUNDLE_OVERHEAD + 2 * one);
    }
}
