//! Fragmentation and reassembly (paper §4.3).
//!
//! "The ST does fragmentation and reassembly to support this larger message
//! size. It does not retransmit fragments; if a message is incomplete when
//! a fragment of the next message arrives, the partial message is
//! discarded."
//!
//! The network RMS delivers in sequence, so fragments of one message arrive
//! in index order; a gap simply means loss, detected when the next
//! message's fragment shows up.
//!
//! Both directions are zero-copy: [`fragment`] slices the message body
//! into segment views, and [`Reassembly`] concatenates the arriving
//! views back into one [`WireMsg`] — adjacent slices of the same buffer
//! coalesce, so a reassembled message recovers the sender's original
//! payload view instead of a fresh copy.

use dash_sim::time::SimTime;
use rms_core::message::Label;
use rms_core::wire::WireMsg;

use crate::wire::{DataFrame, FragInfo};

/// A fully reassembled message.
#[derive(Debug, Clone, PartialEq)]
pub struct Reassembled {
    /// Message sequence number (shared by its fragments).
    pub seq: u64,
    /// Concatenated payload (segment views of the fragments, no copy).
    pub payload: WireMsg,
    /// Original client send time.
    pub sent_at: SimTime,
    /// Source label from the fragments.
    pub source: Option<Label>,
    /// Target label from the fragments.
    pub target: Option<Label>,
    /// Whether a fast acknowledgement was requested.
    pub fast_ack: bool,
    /// Observability span id adopted from any fragment carrying one.
    pub span: Option<u64>,
}

#[derive(Debug)]
struct Partial {
    seq: u64,
    count: u32,
    next_index: u32,
    buf: WireMsg,
    sent_at: SimTime,
    source: Option<Label>,
    target: Option<Label>,
    fast_ack: bool,
    span: Option<u64>,
}

/// Per-ST-RMS reassembly state.
#[derive(Debug, Default)]
pub struct Reassembly {
    partial: Option<Partial>,
    /// Partial messages discarded because a newer message's fragment
    /// arrived first (§4.3).
    pub partials_discarded: u64,
    /// Stray fragments dropped (bad index within the current message).
    pub fragments_dropped: u64,
}

impl Reassembly {
    /// Fresh state.
    pub fn new() -> Self {
        Reassembly::default()
    }

    /// True if a message is partially assembled.
    pub fn has_partial(&self) -> bool {
        self.partial.is_some()
    }

    /// Feed one fragment. Returns the completed message when this fragment
    /// finishes it.
    ///
    /// # Panics
    ///
    /// Panics if `frame.frag` is `None` (whole messages bypass reassembly).
    pub fn push(&mut self, frame: DataFrame) -> Option<Reassembled> {
        let FragInfo { index, count } = frame.frag.expect("push requires a fragment");
        // A fragment of a different message than the one in progress
        // discards the partial (§4.3: no fragment retransmission).
        if let Some(p) = &self.partial {
            if p.seq != frame.seq {
                self.partials_discarded += 1;
                self.partial = None;
            }
        }
        match &mut self.partial {
            None => {
                if index != 0 {
                    // Mid-message fragment of a message whose head we lost.
                    self.fragments_dropped += 1;
                    return None;
                }
                if count == 1 {
                    return Some(Reassembled {
                        seq: frame.seq,
                        payload: frame.payload,
                        sent_at: frame.sent_at,
                        source: frame.source,
                        target: frame.target,
                        fast_ack: frame.fast_ack,
                        span: frame.span,
                    });
                }
                self.partial = Some(Partial {
                    seq: frame.seq,
                    count,
                    next_index: 1,
                    buf: frame.payload,
                    sent_at: frame.sent_at,
                    source: frame.source,
                    target: frame.target,
                    fast_ack: frame.fast_ack,
                    span: frame.span,
                });
                None
            }
            Some(p) => {
                if index != p.next_index || count != p.count {
                    // A gap within the same message: the missing fragment
                    // was lost; discard everything.
                    self.partials_discarded += 1;
                    self.fragments_dropped += 1;
                    self.partial = None;
                    return None;
                }
                p.buf.append(&frame.payload);
                // The fast-ack request rides on the last fragment (§3.2);
                // adopt it whenever any fragment carries it.
                p.fast_ack |= frame.fast_ack;
                p.span = p.span.or(frame.span);
                p.next_index += 1;
                if p.next_index == p.count {
                    let done = self.partial.take().expect("just matched");
                    return Some(Reassembled {
                        seq: done.seq,
                        payload: done.buf,
                        sent_at: done.sent_at,
                        source: done.source,
                        target: done.target,
                        fast_ack: done.fast_ack,
                        span: done.span,
                    });
                }
                None
            }
        }
    }
}

/// The per-message frame fields every fragment of one message shares —
/// a [`DataFrame`] minus the per-fragment `frag` index and `payload`
/// view, which [`fragment`] fills in.
#[derive(Debug, Clone, Copy)]
pub struct FragSpec {
    /// The ST stream the message belongs to.
    pub st_rms: crate::ids::StRmsId,
    /// The message's per-stream sequence number.
    pub seq: u64,
    /// The sender-side `send` call time.
    pub sent_at: SimTime,
    /// Fast-ack request; rides only the last fragment, where delivery
    /// completes.
    pub fast_ack: bool,
    /// Sender identity label.
    pub source: Option<Label>,
    /// Receiver identity label.
    pub target: Option<Label>,
    /// Observability span carried end to end.
    pub span: Option<u64>,
}

/// Split a payload into fragment frames of at most `chunk` payload bytes.
/// Each fragment's payload is a zero-copy sub-view of `payload`'s
/// segments.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn fragment(spec: &FragSpec, payload: &WireMsg, chunk: usize) -> Vec<DataFrame> {
    assert!(chunk > 0, "fragment chunk must be positive");
    let count = payload.len().div_ceil(chunk).max(1) as u32;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let start = i as usize * chunk;
        let end = (start + chunk).min(payload.len());
        out.push(DataFrame {
            st_rms: spec.st_rms,
            seq: spec.seq,
            frag: Some(FragInfo { index: i, count }),
            sent_at: spec.sent_at,
            // Only the last fragment asks for the ack: delivery completes
            // there.
            fast_ack: spec.fast_ack && i + 1 == count,
            source: spec.source,
            target: spec.target,
            span: spec.span,
            payload: payload.slice(start, end),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StRmsId;
    use bytes::Bytes;

    fn spec(seq: u64) -> FragSpec {
        FragSpec {
            st_rms: StRmsId(1),
            seq,
            sent_at: SimTime::ZERO,
            fast_ack: false,
            source: None,
            target: None,
            span: None,
        }
    }

    fn frames(seq: u64, n_frags: u32, frag_len: usize) -> Vec<DataFrame> {
        let total: Vec<u8> = (0..(n_frags as usize * frag_len))
            .map(|i| (i % 251) as u8)
            .collect();
        fragment(
            &FragSpec {
                sent_at: SimTime::from_nanos(5),
                ..spec(seq)
            },
            &WireMsg::from(total),
            frag_len,
        )
    }

    #[test]
    fn fragment_splits_correctly() {
        let fs = frames(0, 4, 100);
        assert_eq!(fs.len(), 4);
        for (i, f) in fs.iter().enumerate() {
            assert_eq!(f.frag.unwrap().index, i as u32);
            assert_eq!(f.frag.unwrap().count, 4);
            assert_eq!(f.payload.len(), 100);
            assert_eq!(f.seq, 0);
        }
    }

    #[test]
    fn fragment_uneven_tail() {
        let payload = WireMsg::from(vec![1u8; 250]);
        let fs = fragment(&spec(0), &payload, 100);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[2].payload.len(), 50);
    }

    #[test]
    fn reassembly_round_trip() {
        let fs = frames(7, 3, 64);
        let expected: Vec<u8> = fs
            .iter()
            .flat_map(|f| f.payload.contiguous().to_vec())
            .collect();
        let mut r = Reassembly::new();
        assert!(r.push(fs[0].clone()).is_none());
        assert!(r.has_partial());
        assert!(r.push(fs[1].clone()).is_none());
        let done = r.push(fs[2].clone()).expect("complete");
        assert_eq!(done.seq, 7);
        assert_eq!(done.payload.contiguous().as_ref(), &expected[..]);
        assert!(!r.has_partial());
        assert_eq!(r.partials_discarded, 0);
    }

    #[test]
    fn reassembly_recovers_original_view_without_copying() {
        let body = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        let fs = fragment(&spec(0), &WireMsg::from_bytes(body.clone()), 100);
        assert_eq!(fs.len(), 3);
        let mut r = Reassembly::new();
        r.push(fs[0].clone());
        r.push(fs[1].clone());
        let done = r.push(fs[2].clone()).unwrap();
        // Adjacent fragment views coalesce back into the original buffer:
        // one segment, pointer-identical to the sender's payload.
        assert_eq!(done.payload.seg_count(), 1);
        assert_eq!(done.payload.contiguous().as_ptr(), body.as_ptr());
    }

    #[test]
    fn retransmitted_middle_fragment_round_trips_byte_identically() {
        // A retransmitted fragment arrives as a fresh serialization — a
        // different backing buffer than the sender's original payload
        // view. Reassembly must concatenate it by value, not assume the
        // neighbours share a backing: the middle segment cannot coalesce
        // with either side, but the payload must still be byte-identical
        // to the original message.
        let body = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        let fs = fragment(&spec(9), &WireMsg::from_bytes(body.clone()), 100);
        assert_eq!(fs.len(), 3);
        let mut retx = fs[1].clone();
        retx.payload = WireMsg::from(fs[1].payload.contiguous().to_vec());

        let mut r = Reassembly::new();
        assert!(r.push(fs[0].clone()).is_none());
        assert!(r.push(retx).is_none());
        let done = r.push(fs[2].clone()).expect("complete");
        assert_eq!(done.payload.contiguous().as_ref(), body.as_ref());
        // No cross-backing coalescing: head / retransmitted middle / tail
        // stay three segments, and the outer two still view the original
        // buffer.
        assert_eq!(done.payload.seg_count(), 3);
        let segs: Vec<&Bytes> = done.payload.segments().collect();
        assert_eq!(segs[0].as_ptr(), body.as_ptr());
        assert_eq!(segs[2].as_ptr(), body.slice(200..256).as_ptr());
        assert_eq!(r.partials_discarded, 0);
        assert_eq!(r.fragments_dropped, 0);
    }

    #[test]
    fn single_fragment_message_completes_immediately() {
        let payload = WireMsg::from(vec![9u8; 10]);
        let fs = fragment(
            &FragSpec {
                fast_ack: true,
                ..spec(3)
            },
            &payload,
            100,
        );
        assert_eq!(fs.len(), 1);
        let mut r = Reassembly::new();
        let done = r.push(fs[0].clone()).unwrap();
        assert_eq!(done.payload.len(), 10);
        assert!(done.fast_ack);
    }

    #[test]
    fn next_message_discards_partial() {
        let first = frames(1, 3, 10);
        let second = frames(2, 2, 10);
        let mut r = Reassembly::new();
        r.push(first[0].clone());
        r.push(first[1].clone());
        // Fragment of message 2 arrives: message 1 is abandoned.
        assert!(r.push(second[0].clone()).is_none());
        let done = r.push(second[1].clone()).unwrap();
        assert_eq!(done.seq, 2);
        assert_eq!(r.partials_discarded, 1);
    }

    #[test]
    fn gap_within_message_discards() {
        let fs = frames(1, 3, 10);
        let mut r = Reassembly::new();
        r.push(fs[0].clone());
        // Fragment 2 arrives without fragment 1.
        assert!(r.push(fs[2].clone()).is_none());
        assert_eq!(r.partials_discarded, 1);
        assert_eq!(r.fragments_dropped, 1);
        assert!(!r.has_partial());
    }

    #[test]
    fn lost_head_drops_tail_fragments() {
        let fs = frames(1, 3, 10);
        let mut r = Reassembly::new();
        // Head lost; tail fragments arrive.
        assert!(r.push(fs[1].clone()).is_none());
        assert!(r.push(fs[2].clone()).is_none());
        assert_eq!(r.fragments_dropped, 2);
    }

    #[test]
    fn fast_ack_only_on_last_fragment() {
        let payload = WireMsg::from(vec![0u8; 300]);
        let fs = fragment(
            &FragSpec {
                fast_ack: true,
                ..spec(0)
            },
            &payload,
            100,
        );
        assert_eq!(fs.len(), 3);
        assert!(!fs[0].fast_ack && !fs[1].fast_ack && fs[2].fast_ack);
    }

    #[test]
    fn labels_survive_reassembly() {
        let payload = WireMsg::from(vec![0u8; 200]);
        let fs = fragment(
            &FragSpec {
                sent_at: SimTime::from_nanos(42),
                source: Some(Label(5)),
                target: Some(Label(6)),
                ..spec(0)
            },
            &payload,
            100,
        );
        let mut r = Reassembly::new();
        r.push(fs[0].clone());
        let done = r.push(fs[1].clone()).unwrap();
        assert_eq!(done.source, Some(Label(5)));
        assert_eq!(done.target, Some(Label(6)));
        assert_eq!(done.sent_at, SimTime::from_nanos(42));
    }

    #[test]
    fn empty_payload_fragments_to_one() {
        let fs = fragment(&spec(0), &WireMsg::new(), 100);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].frag.unwrap().count, 1);
    }
}
