//! # dash-subtransport — the DASH ST layer
//!
//! The subtransport layer of the DASH communication architecture (paper
//! §3.2, §4.2–§4.3): the host-to-host stage every upper-level communication
//! passes through.
//!
//! - [`st`]: state, configuration, the [`st::StWorld`] trait and
//!   [`st::StEvent`] notifications.
//! - [`engine`]: the protocol — control-channel establishment with
//!   Hello/HelloAck authentication, ST-RMS creation over the control
//!   channel, §4.2 multiplexing of ST RMSs onto cached data network RMSs,
//!   §4.3.1 piggybacking, §4.3 fragmentation/reassembly, and the fast
//!   acknowledgement service.
//! - [`wire`]: the byte-level frame format.
//! - [`piggyback`], [`frag`]: the self-contained policy structures.
//!
//! ## Stacking
//!
//! A world embeds [`dash_net::state::NetState`] and [`st::StState`], and
//! its `NetWorld` implementation forwards deliveries/events to
//! [`engine::on_net_deliver`] / [`engine::on_net_event`]. See
//! `dash-transport`'s `Stack` for the canonical assembly, or the
//! integration tests in `tests/` here.

pub mod engine;
pub mod frag;
pub mod ids;
pub mod piggyback;
pub mod st;
pub mod wire;

pub use engine::{can_multiplex, close, create, on_net_deliver, on_net_event, send, st_negotiate};
pub use ids::{StRmsId, StToken};
pub use st::{StConfig, StEvent, StRole, StState, StWorld};
