//! Automatic shrinking: reduce a failing [`Scenario`] to a minimal
//! deterministic repro.
//!
//! Delta debugging (ddmin) over the workload program, plus two
//! scenario-level simplifications tried first: dropping the fault plan
//! and zeroing schedule jitter — a repro that fails on a healthy,
//! jitter-free network is worth far more than one entangled with an
//! outage schedule. Because every run is a pure function of the
//! scenario, "still fails" is a single deterministic re-execution; no
//! flakiness budget, no retries. The whole pass iterates to a fixed
//! point, so the result is 1-minimal: removing any single remaining op
//! makes the failure disappear.

use crate::explore::{run_scenario, Scenario};

fn fails(s: &Scenario) -> bool {
    run_scenario(s).failed()
}

/// One ddmin pass over `ops`: try removing chunks at granularity `n`,
/// doubling granularity when nothing can be removed.
fn ddmin_ops(scenario: &mut Scenario) -> bool {
    let mut reduced = false;
    let mut n = 2usize;
    while scenario.ops.len() >= 2 {
        let len = scenario.ops.len();
        let chunk = len.div_ceil(n);
        let mut removed_any = false;
        let mut start = 0;
        while start < scenario.ops.len() {
            let end = (start + chunk).min(scenario.ops.len());
            let mut candidate = scenario.clone();
            candidate.ops.drain(start..end);
            if fails(&candidate) {
                *scenario = candidate;
                reduced = true;
                removed_any = true;
                // Same start index now holds the next chunk.
            } else {
                start = end;
            }
        }
        if removed_any {
            n = 2.max(n / 2);
        } else if chunk <= 1 {
            break;
        } else {
            n = (n * 2).min(scenario.ops.len());
        }
    }
    // Final singleton sweep (covers the ops.len() == 1 entry case too).
    let mut i = 0;
    while i < scenario.ops.len() {
        let mut candidate = scenario.clone();
        candidate.ops.remove(i);
        if fails(&candidate) {
            *scenario = candidate;
            reduced = true;
        } else {
            i += 1;
        }
    }
    reduced
}

/// Shrink a failing scenario. The input must fail (debug-asserted); the
/// returned scenario still fails and is 1-minimal in its ops, with the
/// fault plan and jitter removed whenever the failure survives without
/// them.
pub fn shrink(found: &Scenario) -> Scenario {
    debug_assert!(fails(found), "shrink() needs a failing scenario");
    let mut best = found.clone();
    loop {
        let mut progress = false;

        if best.fault_seed.is_some() {
            let mut candidate = best.clone();
            candidate.fault_seed = None;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        if best.jitter_max_us != 0 {
            let mut candidate = best.clone();
            candidate.jitter_max_us = 0;
            candidate.jitter_seed = 0;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        if ddmin_ops(&mut best) {
            progress = true;
        }

        if !progress {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Op, OpKind};

    /// A scenario whose failure hinges on exactly one op: the forced
    /// oversubscribing deterministic open. Everything else is chaff the
    /// shrinker must strip.
    fn padded_failure() -> Scenario {
        let mut sc = Scenario::baseline(13);
        sc.force_admission = true;
        sc.fault_seed = Some(3);
        sc.jitter_seed = 5;
        sc.jitter_max_us = 50;
        sc.ops.push(Op {
            at_ms: 120,
            kind: OpKind::Open {
                capacity: 200_000,
                det: true,
            },
        });
        sc.ops.push(Op {
            at_ms: 300,
            kind: OpKind::Send {
                stream: 2,
                bytes: 1024,
            },
        });
        sc
    }

    #[test]
    fn shrinks_padded_failure_to_the_single_guilty_op() {
        let found = padded_failure();
        assert!(fails(&found), "padded scenario must fail to begin with");
        let min = shrink(&found);
        assert!(fails(&min), "shrunk scenario must still fail");
        assert_eq!(min.fault_seed, None, "fault plan is not needed");
        assert_eq!(min.jitter_max_us, 0, "jitter is not needed");
        assert_eq!(
            min.ops,
            vec![Op {
                at_ms: 120,
                kind: OpKind::Open {
                    capacity: 200_000,
                    det: true,
                },
            }],
            "exactly the oversubscribing open must survive"
        );
        // 1-minimality: removing the last op makes the failure vanish.
        let mut empty = min.clone();
        empty.ops.clear();
        assert!(!fails(&empty));
    }
}
