//! Coverage-guided scenario exploration.
//!
//! A [`Scenario`] is the complete input of one simulated run: topology
//! seed, a small workload program ([`Op`]s), an optional fault-plan seed,
//! schedule-jitter parameters, and debug switches. [`run_scenario`]
//! executes it against the real stack on a dual-homed two-host topology
//! with the [`crate::oracle()`] attached, and returns the violations plus
//! the run's (event-kind → event-kind) transition bigrams.
//!
//! [`explore`] searches scenario space: seed corpus first, then mutate a
//! corpus member per iteration. Bigrams are the novelty signal — a
//! mutant that exercises an unseen transition joins the corpus, one that
//! doesn't is discarded — so the budget concentrates where behaviour is
//! new rather than re-rolling the same happy path. The search stops at
//! the first oracle violation (the find is then handed to
//! [`crate::shrink()`]) or when the run budget is spent.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use dash_net::fault::schedule_fault_plan;
use dash_net::topology::TopologyBuilder;
use dash_net::{HostId, NetState, NetworkSpec};
use dash_sim::{ChaosConfig, FaultPlan, Rng, Sim, SimDuration, SimTime};
use dash_transport::stack::StackBuilder;
use dash_transport::stream::{self, StreamProfile};
use rms_core::{DelayBound, Message};

use crate::oracle::{oracle, OracleConfig};

/// One step of a scenario's workload program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Virtual time of the step, milliseconds from run start.
    pub at_ms: u64,
    /// What the step does.
    pub kind: OpKind,
}

/// The workload vocabulary. Deliberately small: opens and sends compose
/// into every interesting interleaving with faults and jitter, while
/// each op keeps a well-defined expected outcome the oracle can check.
/// (No close op: closing with unacked messages in flight can drop them
/// without a typed failure, which is allowed — and would teach the
/// explorer to "win" by closing streams.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Open a reliable stream from host A to host B.
    Open {
        /// Requested RMS capacity, bytes.
        capacity: u64,
        /// Deterministic delay class (`A + B·size` contract) instead of
        /// the default best-effort bound.
        det: bool,
    },
    /// Send `bytes` zeroes on the `stream`-th opened stream (modulo the
    /// number open at execution time; skipped when none are).
    Send {
        /// Index into the opened-streams list.
        stream: usize,
        /// Payload size.
        bytes: u32,
    },
}

/// A complete, self-contained run input. Equal scenarios produce
/// byte-identical runs — this is what the replay file stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Topology seed (link jitter streams etc.).
    pub seed: u64,
    /// Workload program.
    pub ops: Vec<Op>,
    /// Fault-plan seed; `None` runs on a healthy network.
    pub fault_seed: Option<u64>,
    /// Schedule-jitter seed (see [`Sim::set_schedule_jitter`]).
    pub jitter_seed: u64,
    /// Maximum additive schedule jitter, microseconds. Zero disables.
    pub jitter_max_us: u64,
    /// Debug switch: bypass admission control
    /// ([`dash_net::NetConfig::debug_force_admission`]). Used to verify
    /// the oracle catches what admission control exists to prevent.
    pub force_admission: bool,
}

impl Scenario {
    /// A small benign baseline: two modest streams and a handful of
    /// staggered sends on a healthy, jitter-free network.
    pub fn baseline(seed: u64) -> Scenario {
        let mut ops = vec![
            Op {
                at_ms: 0,
                kind: OpKind::Open {
                    capacity: 32 * 1024,
                    det: false,
                },
            },
            Op {
                at_ms: 5,
                kind: OpKind::Open {
                    capacity: 16 * 1024,
                    det: false,
                },
            },
        ];
        for i in 0..6u64 {
            ops.push(Op {
                at_ms: 20 + i * 40,
                kind: OpKind::Send {
                    stream: (i % 2) as usize,
                    bytes: 256,
                },
            });
        }
        Scenario {
            seed,
            ops,
            fault_seed: None,
            jitter_seed: 0,
            jitter_max_us: 0,
            force_admission: false,
        }
    }
}

/// What one [`run_scenario`] produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Oracle violations, in detection order. Empty means the run passed.
    pub violations: Vec<crate::oracle::Violation>,
    /// Transition bigrams observed (the coverage signal).
    pub bigrams: BTreeSet<(u16, u16)>,
    /// Events processed before quiescence.
    pub processed: u64,
    /// True if the run hit the event bound with work still queued.
    pub wedged: bool,
}

impl RunReport {
    /// Did the oracle object?
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Event bound: generous for workloads this size; hitting it is itself a
/// `no-wedge` violation.
const EVENT_BOUND: u64 = 2_000_000;

/// Two hosts on two independent ethernets — the smallest topology where
/// failover, alternate routing, and dual-ledger admission all exist.
fn dual_homed(seed: u64) -> (NetState, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let n0 = b.network(NetworkSpec::ethernet("primary"));
    let n1 = b.network(NetworkSpec::ethernet("backup"));
    let a = b.host();
    let c = b.host();
    b.attach(a, n0).attach(a, n1).attach(c, n0).attach(c, n1);
    b.seed(seed);
    (b.build(), a, c)
}

/// Execute one scenario against the full stack with the oracle attached.
pub fn run_scenario(scenario: &Scenario) -> RunReport {
    let (mut net, a, b) = dual_homed(scenario.seed);
    net.config.debug_force_admission = scenario.force_admission;
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());
    sim.set_schedule_jitter(
        scenario.jitter_seed,
        SimDuration::from_micros(scenario.jitter_max_us),
    );

    // Jitter may legitimately push a healthy deterministic delivery past
    // its bound, so the det-delay check only runs on jitter-free runs.
    // Every explorer stream is reliable, so gaps are fifo violations.
    let (sink, handle) = oracle(OracleConfig {
        check_completion: true,
        check_det_delay: scenario.jitter_max_us == 0,
        check_fifo_gaps: true,
    });
    sim.state.net.obs.add_boxed_sink(Box::new(sink));

    // Sessions in open order; sends index into this list.
    let sessions: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    for op in &scenario.ops {
        let at = SimTime::ZERO.saturating_add(SimDuration::from_millis(op.at_ms));
        let sessions = Rc::clone(&sessions);
        match op.kind {
            OpKind::Open { capacity, det } => {
                sim.schedule_at(at, move |sim| {
                    let mut profile = StreamProfile {
                        capacity,
                        reliable: true,
                        rto: SimDuration::from_millis(100),
                        max_retries: 8,
                        ..StreamProfile::default()
                    };
                    if det {
                        // 2µs/byte clears ethernet's per-byte floor; the
                        // 100ms fixed part dominates the implied C/D
                        // bandwidth, so large capacities demand real
                        // deterministic reservations.
                        profile.delay = DelayBound::deterministic(
                            SimDuration::from_millis(100),
                            SimDuration::from_micros(2),
                        );
                    }
                    if let Ok(session) = stream::open(sim, a, b, profile) {
                        sessions.borrow_mut().push(session);
                    }
                });
            }
            OpKind::Send { stream, bytes } => {
                sim.schedule_at(at, move |sim| {
                    let session = {
                        let s = sessions.borrow();
                        if s.is_empty() {
                            return;
                        }
                        s[stream % s.len()]
                    };
                    // A full send port is a typed backpressure signal,
                    // not a violation; drop and move on.
                    let _ = stream::send(sim, a, session, Message::zeroes(bytes as usize));
                });
            }
        }
    }

    if let Some(fault_seed) = scenario.fault_seed {
        let cfg = ChaosConfig {
            horizon: SimDuration::from_secs(2),
            networks: vec![0, 1],
            host_pairs: vec![(a.0, b.0)],
            stall_targets: vec![(a.0, 0), (b.0, 1)],
            crash_hosts: vec![b.0],
            min_faults: 2,
            max_faults: 6,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::random(&mut Rng::new(fault_seed), &cfg);
        schedule_fault_plan(&mut sim, &plan);
    }

    let processed = sim.run_bounded(EVENT_BOUND);
    let wedged = sim.events_pending() > 0;
    if wedged {
        handle.report(
            "no-wedge",
            sim.now(),
            format!("event queue still busy after {processed} events"),
        );
    }
    handle.finish(sim.now());

    RunReport {
        violations: handle.violations(),
        bigrams: handle.bigrams(),
        processed,
        wedged,
    }
}

/// Exploration budget and determinism knobs.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Total scenario executions (seeds included).
    pub budget_runs: usize,
    /// Seed of the mutation stream; same seeds + same config ⇒ the same
    /// search, run for run.
    pub mutation_seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget_runs: 60,
            mutation_seed: 1,
        }
    }
}

/// Workload program length cap — mutants stay small enough that a find
/// shrinks quickly.
const MAX_OPS: usize = 24;

/// Capacities the mutator draws from. The large deterministic request is
/// the interesting one: it is the kind admission control exists to
/// reject, so scenarios carrying it probe the admission/ledger seam.
const CAPACITIES: [u64; 4] = [8 * 1024, 32 * 1024, 64 * 1024, 200_000];
const SIZES: [u32; 3] = [64, 256, 1024];
const JITTERS_US: [u64; 4] = [0, 50, 200, 1000];

fn mutate(rng: &mut Rng, parent: &Scenario) -> Scenario {
    let mut s = parent.clone();
    match rng.below(6) {
        // Toggle or re-roll the fault plan.
        0 => {
            s.fault_seed = match s.fault_seed {
                None => Some(rng.next_u64()),
                Some(_) if rng.chance(0.3) => None,
                Some(_) => Some(rng.next_u64()),
            };
        }
        // Re-roll schedule jitter.
        1 => {
            s.jitter_seed = rng.next_u64();
            s.jitter_max_us = JITTERS_US[rng.below(JITTERS_US.len() as u64) as usize];
        }
        // Insert an op.
        2 if s.ops.len() < MAX_OPS => {
            let at_ms = rng.below(1_500);
            let kind = if rng.chance(0.4) {
                OpKind::Open {
                    capacity: CAPACITIES[rng.below(CAPACITIES.len() as u64) as usize],
                    det: rng.chance(0.5),
                }
            } else {
                OpKind::Send {
                    stream: rng.below(4) as usize,
                    bytes: SIZES[rng.below(SIZES.len() as u64) as usize],
                }
            };
            s.ops.push(Op { at_ms, kind });
        }
        // Delete an op.
        3 if !s.ops.is_empty() => {
            let i = rng.below(s.ops.len() as u64) as usize;
            s.ops.remove(i);
        }
        // Perturb an op in place.
        4 if !s.ops.is_empty() => {
            let i = rng.below(s.ops.len() as u64) as usize;
            let op = &mut s.ops[i];
            if rng.chance(0.5) {
                op.at_ms = rng.below(1_500);
            } else {
                match &mut op.kind {
                    OpKind::Open { capacity, det } => {
                        *capacity = CAPACITIES[rng.below(CAPACITIES.len() as u64) as usize];
                        *det = rng.chance(0.5);
                    }
                    OpKind::Send { stream, bytes } => {
                        *stream = rng.below(4) as usize;
                        *bytes = SIZES[rng.below(SIZES.len() as u64) as usize];
                    }
                }
            }
        }
        // Re-roll the topology seed (or fall through from a guarded arm).
        _ => s.seed = rng.next_u64(),
    }
    s
}

/// Run the coverage-guided search. Returns the first failing scenario
/// and its report, or `None` if the budget passes clean.
///
/// `force_admission` is inherited from whichever corpus member is
/// mutated, never flipped: it is a debug switch for seeding known bugs,
/// not a search dimension.
pub fn explore(seeds: &[Scenario], cfg: &ExploreConfig) -> Option<(Scenario, RunReport)> {
    assert!(
        !seeds.is_empty(),
        "explore needs at least one seed scenario"
    );
    let mut rng = Rng::new(cfg.mutation_seed);
    let mut corpus: Vec<Scenario> = Vec::new();
    let mut coverage: BTreeSet<(u16, u16)> = BTreeSet::new();
    let mut runs = 0usize;

    let execute = |scenario: Scenario,
                   corpus: &mut Vec<Scenario>,
                   coverage: &mut BTreeSet<(u16, u16)>|
     -> Option<(Scenario, RunReport)> {
        let report = run_scenario(&scenario);
        if report.failed() {
            return Some((scenario, report));
        }
        let novel = report.bigrams.iter().any(|b| !coverage.contains(b));
        if novel {
            coverage.extend(report.bigrams.iter().copied());
            corpus.push(scenario);
        }
        None
    };

    for seed in seeds {
        if runs >= cfg.budget_runs {
            return None;
        }
        runs += 1;
        if let Some(hit) = execute(seed.clone(), &mut corpus, &mut coverage) {
            return Some(hit);
        }
    }
    // Seeds that added no coverage still belong in the corpus — there is
    // nothing else to mutate from.
    if corpus.is_empty() {
        corpus.extend(seeds.iter().cloned());
    }

    while runs < cfg.budget_runs {
        runs += 1;
        let parent = corpus[rng.below(corpus.len() as u64) as usize].clone();
        let child = mutate(&mut rng, &parent);
        if let Some(hit) = execute(child, &mut corpus, &mut coverage) {
            return Some(hit);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_scenario_runs_clean_and_replays_identically() {
        let sc = Scenario::baseline(3);
        let a = run_scenario(&sc);
        assert!(
            a.violations.is_empty(),
            "baseline must pass: {:?}",
            a.violations
        );
        assert!(!a.wedged);
        assert!(a.processed > 100, "stack barely ran: {}", a.processed);
        assert!(!a.bigrams.is_empty());
        let b = run_scenario(&sc);
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.bigrams, b.bigrams);
    }

    #[test]
    fn faulted_scenario_still_satisfies_the_oracle() {
        let sc = Scenario {
            fault_seed: Some(11),
            ..Scenario::baseline(11)
        };
        let report = run_scenario(&sc);
        assert!(
            report.violations.is_empty(),
            "chaos within spec must pass: {:?}",
            report.violations
        );
    }

    #[test]
    fn jittered_scenario_is_deterministic_per_jitter_seed() {
        let base = Scenario {
            jitter_seed: 9,
            jitter_max_us: 200,
            ..Scenario::baseline(5)
        };
        let a = run_scenario(&base);
        let b = run_scenario(&base);
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.bigrams, b.bigrams);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        let other = Scenario {
            jitter_seed: 10,
            ..base
        };
        let c = run_scenario(&other);
        // Different jitter seed perturbs the schedule (almost surely a
        // different event count; at minimum not a violation).
        assert!(c.violations.is_empty());
    }

    #[test]
    fn mutation_is_deterministic() {
        let parent = Scenario::baseline(1);
        let a = mutate(&mut Rng::new(42), &parent);
        let b = mutate(&mut Rng::new(42), &parent);
        assert_eq!(a, b);
    }

    #[test]
    fn explore_passes_clean_on_a_small_healthy_budget() {
        let seeds = [Scenario::baseline(1), Scenario::baseline(2)];
        let cfg = ExploreConfig {
            budget_runs: 6,
            mutation_seed: 7,
        };
        assert!(explore(&seeds, &cfg).is_none());
    }
}
