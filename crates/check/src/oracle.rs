//! The semantic oracle: a reference model of the stack's guarantees fed
//! from the observability stream.
//!
//! The oracle is an [`ObsSink`], so it watches any instrumented run —
//! explorer scenarios, the e10/e11 macro-workloads under `--oracle`, or
//! an ad-hoc test — without touching the code under test. It checks four
//! invariants online and one at end of run:
//!
//! | invariant          | events consumed                               | claim |
//! |--------------------|-----------------------------------------------|-------|
//! | `fifo`             | `StreamDeliver`                               | per-session delivery never duplicates or reorders; with `check_fifo_gaps` (all-reliable runs) it is the contiguous prefix `0..n` |
//! | `admission-ledger` | `AdmissionDecision`                           | deterministic reservations never exceed the ledger budget (§2.3) |
//! | `det-delay`        | `StDeliver { det, late }`                     | deterministic-class deliveries meet `A + B·size` (§2.2) while the world is healthy |
//! | `route-loop`       | `RoutingPathPinned`                           | pinned source routes visit no host twice |
//! | `completion`       | `TransportSend`/`StreamEnd`/`StreamOpenFailed` | at quiescence, every accepted send was delivered or the session saw a *typed* failure |
//!
//! `det-delay` excuses lateness once any fault has been observed: under
//! an injected outage the delay contract is explicitly void (reliability
//! and delay are negotiated for the healthy network, §2.1), and queued
//! backlog may drain late even after recovery. `completion` only makes
//! sense for runs driven to quiescence, so it is a config switch —
//! horizon-cut bench runs leave traffic legitimately in flight.
//!
//! Every violation carries a bounded trailing window of the raw event
//! trace, so a failure is diagnosable without re-running.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use dash_sim::obs::{ObsEvent, ObsSink};
use dash_sim::time::SimTime;

/// Trailing raw events kept for the violation trace.
const TRACE_WINDOW: usize = 64;

/// Relative slack for the ledger comparison: reservations are sums of
/// `f64` implied bandwidths, so exact equality at the budget must not
/// count as oversubscription.
const LEDGER_SLACK: f64 = 1e-9;

/// Which checks the oracle runs.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// End-of-run completeness-or-typed-failure check. Enable for runs
    /// driven to quiescence; disable for horizon-cut workloads.
    pub check_completion: bool,
    /// Deterministic-delay check (`det-delay` above). Disable when the
    /// schedule is jittered: jitter may legitimately push a healthy
    /// deterministic delivery past its bound.
    pub check_det_delay: bool,
    /// Treat a delivery-sequence gap as a `fifo` violation. Only sound
    /// when every stream in the run is reliable: an *unreliable* stream
    /// legitimately skips lost messages, so mixed workloads (the bench
    /// macro-runs) disable this and keep the duplicate/reorder check,
    /// which holds for any stream.
    pub check_fifo_gaps: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            check_completion: true,
            check_det_delay: true,
            check_fifo_gaps: true,
        }
    }
}

/// One invariant violation, with the trailing event window at the moment
/// it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Short invariant name (`fifo`, `admission-ledger`, `det-delay`,
    /// `route-loop`, `completion`, `no-wedge`).
    pub invariant: &'static str,
    /// Virtual time of detection.
    pub at: SimTime,
    /// What went wrong.
    pub detail: String,
    /// The last `TRACE_WINDOW` (64) raw events up to and including the
    /// violating one, oldest first.
    pub trace: Vec<String>,
}

#[derive(Debug, Default)]
struct Sessions {
    /// Sends the transport accepted, per session.
    accepted: BTreeMap<u64, u64>,
    /// Next expected sequence number at the receiver, per session.
    next_seq: BTreeMap<u64, u64>,
    /// Count of deliveries observed at the receiver, per session.
    delivered: BTreeMap<u64, u64>,
    /// Sessions that ended; `true` means a typed failure.
    ended: BTreeMap<u64, bool>,
    /// Sessions whose open failed (a typed outcome too).
    open_failed: BTreeSet<u64>,
}

#[derive(Debug)]
struct OracleState {
    cfg: OracleConfig,
    sessions: Sessions,
    /// Set once any fault fires; suspends `det-delay` (see module docs).
    fault_seen: bool,
    ring: VecDeque<String>,
    violations: Vec<Violation>,
    /// Previous event's fast index, for transition-bigram coverage.
    last_kind: Option<u16>,
    /// Observed (event-kind → event-kind) transitions. Not an invariant:
    /// this is the coverage signal [`crate::explore`] feeds on, collected
    /// here so one sink pass serves both the oracle and the explorer.
    bigrams: BTreeSet<(u16, u16)>,
}

impl OracleState {
    fn violate(&mut self, invariant: &'static str, at: SimTime, detail: String) {
        let trace = self.ring.iter().cloned().collect();
        self.violations.push(Violation {
            invariant,
            at,
            detail,
            trace,
        });
    }

    fn see(&mut self, time: SimTime, event: &ObsEvent) {
        if self.ring.len() == TRACE_WINDOW {
            self.ring.pop_front();
        }
        self.ring
            .push_back(format!("{} {} {:?}", time.as_nanos(), event.name(), event));

        let kind = event.fast_index() as u16;
        if let Some(prev) = self.last_kind {
            self.bigrams.insert((prev, kind));
        }
        self.last_kind = Some(kind);

        match event {
            ObsEvent::FaultInjected { .. }
            | ObsEvent::NetworkFailed { .. }
            | ObsEvent::HostCrashed { .. } => self.fault_seen = true,
            ObsEvent::AdmissionDecision {
                host,
                reserved_bps,
                budget_bps,
                ..
            } if *reserved_bps > budget_bps * (1.0 + LEDGER_SLACK) => {
                self.violate(
                    "admission-ledger",
                    time,
                    format!(
                        "host {host}: ledger oversubscribed, reserved \
                         {reserved_bps:.0} B/s > deterministic budget {budget_bps:.0} B/s"
                    ),
                );
            }
            ObsEvent::TransportSend { session, .. } => {
                *self.sessions.accepted.entry(*session).or_default() += 1;
            }
            ObsEvent::StreamDeliver { session, seq, .. } => {
                let expected = *self.sessions.next_seq.get(session).unwrap_or(&0);
                if *seq < expected {
                    self.violate(
                        "fifo",
                        time,
                        format!(
                            "session {session}: duplicate/reorder — delivered #{seq} \
                             after #{}",
                            expected - 1
                        ),
                    );
                } else if *seq > expected && self.cfg.check_fifo_gaps {
                    self.violate(
                        "fifo",
                        time,
                        format!("session {session}: gap — delivered #{seq}, expected #{expected}"),
                    );
                }
                self.sessions
                    .next_seq
                    .insert(*session, (*seq + 1).max(expected));
                *self.sessions.delivered.entry(*session).or_default() += 1;
            }
            ObsEvent::StDeliver {
                st_rms,
                seq,
                late: true,
                det: true,
                ..
            } if self.cfg.check_det_delay && !self.fault_seen => {
                self.violate(
                    "det-delay",
                    time,
                    format!(
                        "st {st_rms} #{seq}: deterministic delivery missed its \
                         A + B*size bound on a healthy network"
                    ),
                );
            }
            ObsEvent::StreamEnd {
                session, failed, ..
            } => {
                let e = self.sessions.ended.entry(*session).or_default();
                *e = *e || *failed;
            }
            ObsEvent::StreamRetriesExhausted { session, .. } => {
                self.sessions.ended.insert(*session, true);
            }
            ObsEvent::StreamOpenFailed { session, .. } => {
                self.sessions.open_failed.insert(*session);
            }
            ObsEvent::RoutingPathPinned { host, hops } => {
                let mut seen = BTreeSet::new();
                if !hops.iter().all(|h| seen.insert(*h)) {
                    self.violate(
                        "route-loop",
                        time,
                        format!("host {host}: pinned source route revisits a host: {hops:?}"),
                    );
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self, at: SimTime) {
        if !self.cfg.check_completion {
            return;
        }
        let shortfalls: Vec<(u64, u64, u64)> = self
            .sessions
            .accepted
            .iter()
            .filter_map(|(&session, &sent)| {
                let got = self.sessions.delivered.get(&session).copied().unwrap_or(0);
                (got < sent).then_some((session, sent, got))
            })
            .collect();
        for (session, sent, got) in shortfalls {
            let typed = self.sessions.ended.get(&session).copied().unwrap_or(false)
                || self.sessions.open_failed.contains(&session);
            if !typed {
                self.violate(
                    "completion",
                    at,
                    format!(
                        "session {session}: {got} of {sent} accepted sends delivered \
                         at quiescence, yet no typed failure was surfaced"
                    ),
                );
            }
        }
    }
}

/// The sink half of the oracle; install it with
/// `obs.add_boxed_sink(Box::new(sink))`.
pub struct OracleSink {
    state: Rc<RefCell<OracleState>>,
}

impl ObsSink for OracleSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        self.state.borrow_mut().see(time, event);
    }
}

/// The reader half: query violations and coverage after (or during) the
/// run. Cheap to clone.
#[derive(Clone)]
pub struct OracleHandle {
    state: Rc<RefCell<OracleState>>,
}

impl OracleHandle {
    /// Run the end-of-run checks (completeness-or-typed-failure). Call at
    /// quiescence, passing the final virtual time.
    pub fn finish(&self, at: SimTime) {
        self.state.borrow_mut().finish(at);
    }

    /// Record an externally detected violation (e.g. the runner's wedge
    /// detector), with whatever trailing trace the oracle has.
    pub fn report(&self, invariant: &'static str, at: SimTime, detail: String) {
        self.state.borrow_mut().violate(invariant, at, detail);
    }

    /// Violations found so far, in detection order.
    pub fn violations(&self) -> Vec<Violation> {
        self.state.borrow().violations.clone()
    }

    /// True once any violation was recorded — the fail-fast poll.
    pub fn violated(&self) -> bool {
        !self.state.borrow().violations.is_empty()
    }

    /// Observed event-kind transition bigrams (the coverage signal).
    pub fn bigrams(&self) -> BTreeSet<(u16, u16)> {
        self.state.borrow().bigrams.clone()
    }
}

/// Build an oracle: the sink to install and the handle to read.
pub fn oracle(cfg: OracleConfig) -> (OracleSink, OracleHandle) {
    let state = Rc::new(RefCell::new(OracleState {
        cfg,
        sessions: Sessions::default(),
        fault_seen: false,
        ring: VecDeque::with_capacity(TRACE_WINDOW),
        violations: Vec::new(),
        last_kind: None,
        bigrams: BTreeSet::new(),
    }));
    (
        OracleSink {
            state: Rc::clone(&state),
        },
        OracleHandle { state },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn feed(sink: &mut OracleSink, ns: u64, ev: ObsEvent) {
        sink.on_event(t(ns), &ev);
    }

    #[test]
    fn fifo_catches_gap_duplicate_and_passes_in_order() {
        let (mut sink, handle) = oracle(OracleConfig::default());
        for seq in 0..3 {
            feed(
                &mut sink,
                seq,
                ObsEvent::StreamDeliver {
                    host: 1,
                    session: 7,
                    seq,
                },
            );
        }
        assert!(!handle.violated());
        // A duplicate of #1 and then a gap to #5.
        feed(
            &mut sink,
            10,
            ObsEvent::StreamDeliver {
                host: 1,
                session: 7,
                seq: 1,
            },
        );
        feed(
            &mut sink,
            11,
            ObsEvent::StreamDeliver {
                host: 1,
                session: 7,
                seq: 5,
            },
        );
        let v = handle.violations();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].invariant, "fifo");
        assert!(v[0].detail.contains("duplicate"), "{}", v[0].detail);
        assert!(v[1].detail.contains("gap"), "{}", v[1].detail);
        assert!(!v[0].trace.is_empty(), "violation must carry its trace");
    }

    #[test]
    fn ledger_oversubscription_is_flagged_but_boundary_is_not() {
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(
            &mut sink,
            1,
            ObsEvent::AdmissionDecision {
                host: 0,
                admitted: true,
                reserved_bps: 900_000.0,
                budget_bps: 900_000.0,
            },
        );
        assert!(!handle.violated(), "exactly-at-budget is legal");
        feed(
            &mut sink,
            2,
            ObsEvent::AdmissionDecision {
                host: 0,
                admitted: true,
                reserved_bps: 2_000_000.0,
                budget_bps: 1_125_000.0,
            },
        );
        let v = handle.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "admission-ledger");
    }

    #[test]
    fn det_delay_flags_healthy_lateness_and_excuses_faulted_runs() {
        let late = |st_rms| ObsEvent::StDeliver {
            host: 1,
            st_rms,
            seq: 0,
            bytes: 64,
            late: true,
            det: true,
            span: None,
        };
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, late(1));
        assert_eq!(handle.violations()[0].invariant, "det-delay");

        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, ObsEvent::FaultInjected { kind: "partition" });
        feed(&mut sink, 2, late(1));
        assert!(!handle.violated(), "fault excuses deterministic lateness");

        // Late *statistical* deliveries are never violations.
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(
            &mut sink,
            1,
            ObsEvent::StDeliver {
                host: 1,
                st_rms: 1,
                seq: 0,
                bytes: 64,
                late: true,
                det: false,
                span: None,
            },
        );
        assert!(!handle.violated());
    }

    #[test]
    fn route_loop_detection() {
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(
            &mut sink,
            1,
            ObsEvent::RoutingPathPinned {
                host: 0,
                hops: vec![0, 3, 5, 2],
            },
        );
        assert!(!handle.violated());
        feed(
            &mut sink,
            2,
            ObsEvent::RoutingPathPinned {
                host: 0,
                hops: vec![0, 3, 5, 3, 2],
            },
        );
        assert_eq!(handle.violations()[0].invariant, "route-loop");
    }

    #[test]
    fn completion_requires_delivery_or_typed_failure() {
        let send = |session, seq| ObsEvent::TransportSend {
            host: 0,
            session,
            seq,
            bytes: 64,
            span: None,
        };
        let dlv = |session, seq| ObsEvent::StreamDeliver {
            host: 1,
            session,
            seq,
        };
        // Delivered in full: clean.
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, send(5, 0));
        feed(&mut sink, 2, dlv(5, 0));
        handle.finish(t(3));
        assert!(!handle.violated());

        // Shortfall with a typed end: clean.
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, send(5, 0));
        feed(
            &mut sink,
            2,
            ObsEvent::StreamEnd {
                host: 0,
                session: 5,
                failed: true,
            },
        );
        handle.finish(t(3));
        assert!(!handle.violated());

        // Silent shortfall: violation.
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, send(5, 0));
        handle.finish(t(3));
        assert_eq!(handle.violations()[0].invariant, "completion");

        // An orderly close does not excuse a shortfall.
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, send(5, 0));
        feed(
            &mut sink,
            2,
            ObsEvent::StreamEnd {
                host: 0,
                session: 5,
                failed: false,
            },
        );
        handle.finish(t(3));
        assert_eq!(handle.violations()[0].invariant, "completion");
    }

    #[test]
    fn bigram_coverage_accumulates_transitions() {
        let (mut sink, handle) = oracle(OracleConfig::default());
        feed(&mut sink, 1, ObsEvent::CacheHit { host: 0 });
        feed(&mut sink, 2, ObsEvent::CacheMiss { host: 0 });
        feed(&mut sink, 3, ObsEvent::CacheHit { host: 0 });
        feed(&mut sink, 4, ObsEvent::CacheMiss { host: 0 });
        let hit = ObsEvent::CacheHit { host: 0 }.fast_index() as u16;
        let miss = ObsEvent::CacheMiss { host: 0 }.fast_index() as u16;
        let bg = handle.bigrams();
        assert_eq!(bg.len(), 2);
        assert!(bg.contains(&(hit, miss)) && bg.contains(&(miss, hit)));
    }
}
