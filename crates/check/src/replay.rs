//! Replay files: a tiny line-oriented text format storing a [`Scenario`]
//! so a shrunk repro can live in the tree and `cargo test` can re-run it
//! byte-identically forever.
//!
//! ```text
//! dash-check replay v1
//! seed 13
//! force_admission true
//! jitter 0 0
//! fault_seed none
//! op 120 open 200000 det
//! op 300 send 2 1024
//! ```
//!
//! The format is deliberately dumb: one `key value` pair per line, ops
//! in schedule order. [`parse`] ∘ [`to_text`] is the identity (tested),
//! and parsing is strict — an unknown line is an error, not a warning,
//! because a replay that silently drops part of its scenario would
//! "pass" without testing anything.

use crate::explore::{Op, OpKind, Scenario};

/// Format version header; bump on any incompatible change.
const HEADER: &str = "dash-check replay v1";

/// Serialize a scenario to replay text.
pub fn to_text(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("seed {}\n", s.seed));
    out.push_str(&format!("force_admission {}\n", s.force_admission));
    out.push_str(&format!("jitter {} {}\n", s.jitter_seed, s.jitter_max_us));
    match s.fault_seed {
        Some(fs) => out.push_str(&format!("fault_seed {fs}\n")),
        None => out.push_str("fault_seed none\n"),
    }
    for op in &s.ops {
        match op.kind {
            OpKind::Open { capacity, det } => {
                let class = if det { "det" } else { "stat" };
                out.push_str(&format!("op {} open {} {}\n", op.at_ms, capacity, class));
            }
            OpKind::Send { stream, bytes } => {
                out.push_str(&format!("op {} send {} {}\n", op.at_ms, stream, bytes));
            }
        }
    }
    out
}

fn err(line_no: usize, msg: impl Into<String>) -> String {
    format!("replay line {}: {}", line_no + 1, msg.into())
}

/// Parse replay text back into a scenario.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(format!(
                "missing header {HEADER:?}, got {:?}",
                other.map(|(_, l)| l).unwrap_or("")
            ))
        }
    }

    let mut scenario = Scenario {
        seed: 0,
        ops: Vec::new(),
        fault_seed: None,
        jitter_seed: 0,
        jitter_max_us: 0,
        force_admission: false,
    };
    for (no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["seed", v] => {
                scenario.seed = v.parse().map_err(|e| err(no, format!("seed: {e}")))?;
            }
            ["force_admission", v] => {
                scenario.force_admission = v
                    .parse()
                    .map_err(|e| err(no, format!("force_admission: {e}")))?;
            }
            ["jitter", seed, max_us] => {
                scenario.jitter_seed = seed
                    .parse()
                    .map_err(|e| err(no, format!("jitter seed: {e}")))?;
                scenario.jitter_max_us = max_us
                    .parse()
                    .map_err(|e| err(no, format!("jitter max: {e}")))?;
            }
            ["fault_seed", "none"] => scenario.fault_seed = None,
            ["fault_seed", v] => {
                scenario.fault_seed =
                    Some(v.parse().map_err(|e| err(no, format!("fault_seed: {e}")))?);
            }
            ["op", at_ms, "open", capacity, class] => {
                let det = match *class {
                    "det" => true,
                    "stat" => false,
                    other => return Err(err(no, format!("unknown delay class {other:?}"))),
                };
                scenario.ops.push(Op {
                    at_ms: at_ms.parse().map_err(|e| err(no, format!("at_ms: {e}")))?,
                    kind: OpKind::Open {
                        capacity: capacity
                            .parse()
                            .map_err(|e| err(no, format!("capacity: {e}")))?,
                        det,
                    },
                });
            }
            ["op", at_ms, "send", stream, bytes] => {
                scenario.ops.push(Op {
                    at_ms: at_ms.parse().map_err(|e| err(no, format!("at_ms: {e}")))?,
                    kind: OpKind::Send {
                        stream: stream
                            .parse()
                            .map_err(|e| err(no, format!("stream: {e}")))?,
                        bytes: bytes.parse().map_err(|e| err(no, format!("bytes: {e}")))?,
                    },
                });
            }
            _ => return Err(err(no, format!("unrecognized line {line:?}"))),
        }
    }
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            seed: 13,
            ops: vec![
                Op {
                    at_ms: 120,
                    kind: OpKind::Open {
                        capacity: 200_000,
                        det: true,
                    },
                },
                Op {
                    at_ms: 300,
                    kind: OpKind::Send {
                        stream: 2,
                        bytes: 1024,
                    },
                },
            ],
            fault_seed: Some(7),
            jitter_seed: 5,
            jitter_max_us: 50,
            force_admission: true,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let s = sample();
        let text = to_text(&s);
        assert_eq!(parse(&text).unwrap(), s);
        // And a healthy-network variant.
        let s2 = Scenario {
            fault_seed: None,
            ..s
        };
        assert_eq!(parse(&to_text(&s2)).unwrap(), s2);
    }

    #[test]
    fn text_is_stable() {
        let expected = "dash-check replay v1\n\
                        seed 13\n\
                        force_admission true\n\
                        jitter 5 50\n\
                        fault_seed 7\n\
                        op 120 open 200000 det\n\
                        op 300 send 2 1024\n";
        assert_eq!(to_text(&sample()), expected);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored_but_junk_is_not() {
        let ok = "dash-check replay v1\n\n# a comment\nseed 4\n";
        assert_eq!(parse(ok).unwrap().seed, 4);
        assert!(parse("dash-check replay v1\nbogus line\n").is_err());
        assert!(parse("not a replay\n").is_err());
        assert!(parse("dash-check replay v1\nop 1 open 10 fancy\n").is_err());
    }
}
