//! dash-check — simulation testing for the RMS stack.
//!
//! The deterministic simulator underneath the stack makes every run a
//! reproducible function of its inputs (topology seed, workload, fault
//! plan, timer jitter). This crate turns that property into a model
//! checker for the paper's semantic guarantees, in three parts:
//!
//! - [`mod@oracle`]: a small reference model of what the stack promises —
//!   per-stream FIFO exactly-once-or-typed-failure delivery (§2.1),
//!   admission never oversubscribing a ledger (§2.3), deterministic-class
//!   messages meeting their `A + B·size` bound (§2.2), and loop-free
//!   routing alternates. It consumes the [`dash_sim::obs::ObsEvent`]
//!   stream online and fails fast with the violating event trace.
//! - [`mod@explore`]: a coverage-guided explorer that mutates workloads,
//!   fault-plan seeds, and schedule-jitter parameters, using observed
//!   (event-kind → event-kind) transition bigrams as the novelty signal
//!   to keep a corpus and spend a fixed run budget where behaviour is
//!   new.
//! - [`mod@shrink`] + [`replay`]: once a violation is found, delta-debugging
//!   reduces the scenario to a minimal deterministic repro and a small
//!   text replay file that `cargo test` re-runs byte-identically.

pub mod explore;
pub mod oracle;
pub mod replay;
pub mod shrink;

pub use explore::{explore, run_scenario, ExploreConfig, Op, OpKind, RunReport, Scenario};
pub use oracle::{oracle, OracleConfig, OracleHandle, OracleSink, Violation};
pub use shrink::shrink;
