//! Request/reply workloads over RKOM (paper §3.3) and over the TCP-like
//! baseline, for the e7 comparison.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use dash_baseline::tcp;
use dash_net::ids::HostId;
use dash_sim::engine::Sim;
use dash_sim::rng::Rng;
use dash_sim::stats::Histogram;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::rkom;
use dash_transport::stack::Stack;

/// RPC workload parameters.
#[derive(Debug, Clone)]
pub struct RpcSpec {
    /// Mean call arrival rate, calls/second (Poisson).
    pub rate: f64,
    /// Request payload bytes.
    pub request_bytes: usize,
    /// Reply payload bytes (the echo service pads to this).
    pub reply_bytes: usize,
    /// Workload duration.
    pub duration: SimDuration,
}

impl Default for RpcSpec {
    fn default() -> Self {
        RpcSpec {
            rate: 100.0,
            request_bytes: 64,
            reply_bytes: 256,
            duration: SimDuration::from_secs(2),
        }
    }
}

/// RPC workload results.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Calls issued.
    pub issued: u64,
    /// Calls completed.
    pub completed: u64,
    /// Calls failed.
    pub failed: u64,
    /// Round-trip latencies, seconds.
    pub latency: Histogram,
}

/// The echo service id registered by [`start_rkom_rpc`].
pub const ECHO_SERVICE: u16 = 0x0101;

/// Start an RKOM RPC workload: `client` calls an echo service at `server`.
pub fn start_rkom_rpc(
    sim: &mut Sim<Stack>,
    client: HostId,
    server: HostId,
    spec: RpcSpec,
    seed: u64,
) -> Rc<RefCell<RpcStats>> {
    let stats = Rc::new(RefCell::new(RpcStats::default()));
    let reply_bytes = spec.reply_bytes;
    rkom::register_service(
        &mut sim.state,
        server,
        ECHO_SERVICE,
        move |_sim, _c, _req| Bytes::from(vec![0u8; reply_bytes]),
    );
    let end = sim.now().saturating_add(spec.duration);
    let rng = Rng::new(seed);
    schedule_call(sim, client, server, spec, end, rng, Rc::clone(&stats));
    stats
}

fn schedule_call(
    sim: &mut Sim<Stack>,
    client: HostId,
    server: HostId,
    spec: RpcSpec,
    end: SimTime,
    mut rng: Rng,
    stats: Rc<RefCell<RpcStats>>,
) {
    if sim.now() >= end {
        return;
    }
    let gap = SimDuration::from_secs_f64(rng.exp(1.0 / spec.rate));
    sim.schedule_in(gap, move |sim| {
        let started = sim.now();
        stats.borrow_mut().issued += 1;
        let st = Rc::clone(&stats);
        rkom::call(
            sim,
            client,
            server,
            ECHO_SERVICE,
            Bytes::from(vec![0u8; spec.request_bytes]),
            move |sim, res| {
                let mut s = st.borrow_mut();
                match res {
                    Ok(_) => {
                        s.completed += 1;
                        s.latency
                            .record(sim.now().saturating_since(started).as_secs_f64());
                    }
                    Err(_) => s.failed += 1,
                }
            },
        );
        schedule_call(sim, client, server, spec, end, rng, stats);
    });
}

/// A sequential RPC client over the TCP-like baseline: it opens one
/// connection and issues `calls` echo requests back to back (each reply
/// must arrive before the next request goes out, the pattern §1 says
/// request/reply primitives force).
///
/// The server side is prepared internally (this function also registers
/// the echo logic and the listener).
pub fn run_tcp_rpc(
    sim: &mut Sim<Stack>,
    client: HostId,
    server: HostId,
    port: u16,
    calls: u32,
    request_bytes: usize,
    reply_bytes: usize,
) -> Rc<RefCell<RpcStats>> {
    let stats = Rc::new(RefCell::new(RpcStats::default()));
    let conn = tcp::connect(sim, client, server, port);

    // Drive the call loop from TCP events.
    let st = Rc::clone(&stats);
    let state = Rc::new(RefCell::new((0u32, SimTime::ZERO, 0usize))); // (done, call_start, bytes_seen)
    let drive = Rc::clone(&state);
    sim.state.on_tcp(move |sim, host, ev| {
        match ev {
            tcp::TcpEvent::Connected { conn: c } if c == conn => {
                // First call.
                drive.borrow_mut().1 = sim.now();
                st.borrow_mut().issued += 1;
                tcp::send(sim, host, conn, &vec![0u8; request_bytes]);
            }
            tcp::TcpEvent::Data { conn: c, bytes } if c == conn && host == client => {
                let mut d = drive.borrow_mut();
                d.2 += bytes as usize;
                if d.2 >= reply_bytes {
                    d.2 = 0;
                    let started = d.1;
                    let mut s = st.borrow_mut();
                    s.completed += 1;
                    s.latency
                        .record(sim.now().saturating_since(started).as_secs_f64());
                    d.0 += 1;
                    if d.0 < calls {
                        d.1 = sim.now();
                        s.issued += 1;
                        drop(s);
                        drop(d);
                        tcp::send(sim, host, conn, &vec![0u8; request_bytes]);
                    }
                }
            }
            tcp::TcpEvent::Data { conn: c, bytes } if host == server => {
                // Echo server: every `request_bytes` received triggers a
                // reply.
                let _ = bytes;
                let pending = sim
                    .state
                    .tcp
                    .conn_mut(host, c)
                    .map(|cn| cn.read().len())
                    .unwrap_or(0);
                let replies = pending / request_bytes;
                for _ in 0..replies {
                    tcp::send(sim, host, c, &vec![0u8; reply_bytes]);
                }
            }
            _ => {}
        }
    });
    tcp::listen(sim, server, port);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;
    use dash_transport::stack::StackBuilder;

    #[test]
    fn rkom_rpc_workload_completes() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let stats = start_rkom_rpc(&mut sim, a, b, RpcSpec::default(), 3);
        sim.run();
        let s = stats.borrow();
        assert!(s.issued > 100, "issued {}", s.issued);
        assert_eq!(s.failed, 0);
        assert_eq!(s.completed, s.issued);
        assert!(s.latency.mean() > 0.0);
        assert!(s.latency.mean() < 0.05, "LAN RPC should be fast");
    }

    #[test]
    fn tcp_rpc_sequential_calls_complete() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let stats = run_tcp_rpc(&mut sim, a, b, 80, 20, 64, 256);
        sim.run();
        let s = stats.borrow();
        assert_eq!(
            s.completed, 20,
            "issued={} completed={}",
            s.issued, s.completed
        );
    }
}
