//! # dash-apps — the paper's motivating application workloads
//!
//! §1 and §2.5 motivate the RMS design with a roster of traffic types;
//! this crate implements each of them on the assembled
//! [`dash_transport::stack::Stack`]:
//!
//! - [`media`]: digitized voice (64 kb/s CBR, 40 ms budget) and bursty
//!   video — "interactive high-bandwidth traffic" (§1).
//! - [`bulk`]: high-capacity bulk data transfer (§2.5).
//! - [`window`]: network window system traffic — small input events one
//!   way, bulky graphics the other (§2.5, ref \[7\]).
//! - [`rpc`]: request/reply workloads over RKOM (§3.3).
//! - [`taps`]: session-keyed dispatch so many workloads share a host.

pub mod bulk;
pub mod media;
pub mod rpc;
pub mod taps;
pub mod window;

pub use taps::{Dispatcher, SessionEvent};
