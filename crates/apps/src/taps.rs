//! Session-keyed dispatch over the per-host stream tap.
//!
//! The stream module exposes one tap per host; applications that run many
//! sessions (several voice calls, a window system next to a bulk transfer)
//! install a [`Dispatcher`] once and register per-session handlers with it.

use rms_core::hash::DetHashMap;
use std::cell::RefCell;
use std::rc::Rc;

use dash_net::ids::HostId;
use dash_sim::engine::Sim;
use dash_sim::time::SimDuration;
use dash_transport::stack::Stack;
use dash_transport::stream::StreamEvent;
use rms_core::message::Message;

/// What a session handler receives.
#[derive(Debug)]
pub enum SessionEvent {
    /// An in-order message arrived.
    Delivered {
        /// The message.
        msg: Message,
        /// Its sequence number.
        seq: u64,
        /// End-to-end delay.
        delay: SimDuration,
    },
    /// The session is ready to send.
    Opened,
    /// The send port drained after refusing an offer.
    Drained,
    /// The session ended or failed.
    Ended,
}

type Handler = Box<dyn FnMut(&mut Sim<Stack>, SessionEvent)>;

/// A session-keyed dispatcher covering a set of hosts.
#[derive(Clone, Default)]
pub struct Dispatcher {
    handlers: Rc<RefCell<DetHashMap<u64, Handler>>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("sessions", &self.handlers.borrow().len())
            .finish()
    }
}

impl Dispatcher {
    /// Install a dispatcher as the stream tap of every host in `hosts`.
    pub fn install(sim: &mut Sim<Stack>, hosts: &[HostId]) -> Dispatcher {
        let d = Dispatcher::default();
        for &h in hosts {
            let handlers = Rc::clone(&d.handlers);
            sim.state.on_stream(h, move |sim, ev| {
                let (session, translated) = match ev {
                    StreamEvent::Delivered {
                        session,
                        msg,
                        seq,
                        delay,
                    } => (session, SessionEvent::Delivered { msg, seq, delay }),
                    StreamEvent::Opened { session } => (session, SessionEvent::Opened),
                    StreamEvent::Drained { session } => (session, SessionEvent::Drained),
                    StreamEvent::Ended { session, .. } => (session, SessionEvent::Ended),
                    StreamEvent::OpenFailed { session, .. } => (session, SessionEvent::Ended),
                    StreamEvent::Incoming { .. } => return,
                };
                // Take the handler out while it runs (it may register more).
                let handler = handlers.borrow_mut().remove(&session);
                if let Some(mut handler) = handler {
                    handler(sim, translated);
                    handlers.borrow_mut().entry(session).or_insert(handler);
                }
            });
        }
        d
    }

    /// Register (or replace) the handler for `session`.
    pub fn register(
        &self,
        session: u64,
        handler: impl FnMut(&mut Sim<Stack>, SessionEvent) + 'static,
    ) {
        self.handlers
            .borrow_mut()
            .insert(session, Box::new(handler));
    }

    /// Remove a session's handler.
    pub fn unregister(&self, session: u64) {
        self.handlers.borrow_mut().remove(&session);
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.handlers.borrow().len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;
    use dash_transport::stack::StackBuilder;
    use dash_transport::stream;
    use dash_transport::stream::StreamProfile;

    #[test]
    fn dispatcher_routes_by_session() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let d = Dispatcher::install(&mut sim, &[a, b]);
        let s1 = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
        let s2 = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
        let got1 = Rc::new(RefCell::new(0u32));
        let got2 = Rc::new(RefCell::new(0u32));
        let g1 = Rc::clone(&got1);
        let g2 = Rc::clone(&got2);
        d.register(s1, move |_s, ev| {
            if matches!(ev, SessionEvent::Delivered { .. }) {
                *g1.borrow_mut() += 1;
            }
        });
        d.register(s2, move |_s, ev| {
            if matches!(ev, SessionEvent::Delivered { .. }) {
                *g2.borrow_mut() += 1;
            }
        });
        sim.run();
        stream::send(&mut sim, a, s1, Message::zeroes(10)).unwrap();
        stream::send(&mut sim, a, s2, Message::zeroes(10)).unwrap();
        stream::send(&mut sim, a, s2, Message::zeroes(10)).unwrap();
        sim.run();
        assert_eq!(*got1.borrow(), 1);
        assert_eq!(*got2.borrow(), 2);
        assert_eq!(d.len(), 2);
        d.unregister(s1);
        assert_eq!(d.len(), 1);
    }
}
