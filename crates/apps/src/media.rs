//! Digitized voice and video sources (paper §1, §2.5).
//!
//! "Future distributed systems ... will support a range of
//! communication-intensive applications", with digitized audio and video as
//! the canonical "interactive high-bandwidth traffic" needing real-time
//! guarantees (§1). §2.5 prescribes their RMS parameters: "digitized voice
//! should use a high capacity, low delay RMS, perhaps with a statistical
//! delay bound; a high bit error rate may be acceptable."

use std::cell::RefCell;
use std::rc::Rc;

use dash_net::ids::HostId;
use dash_sim::engine::Sim;
use dash_sim::rng::Rng;
use dash_sim::stats::Histogram;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::stack::Stack;
use dash_transport::stream::{self, StreamProfile};
use rms_core::message::Message;

use crate::taps::{Dispatcher, SessionEvent};

/// A constant-bit-rate or bursty media source specification.
#[derive(Debug, Clone)]
pub struct MediaSpec {
    /// Frame payload bytes (mean, for bursty sources).
    pub frame_bytes: u64,
    /// Frame interval (e.g. 20 ms voice frames, 33 ms video frames).
    pub interval: SimDuration,
    /// Jitter in frame size: frames are `frame_bytes ± jitter` uniformly
    /// (0 = constant bit rate).
    pub size_jitter: u64,
    /// One-way delay budget; deliveries beyond it count as late.
    pub delay_budget: SimDuration,
    /// How long the source runs.
    pub duration: SimDuration,
    /// The stream profile to open.
    pub profile: StreamProfile,
}

impl MediaSpec {
    /// 64 kb/s telephone-quality voice: 160-byte frames every 20 ms with a
    /// 40 ms mouth-to-ear budget.
    pub fn voice(duration: SimDuration) -> Self {
        MediaSpec {
            frame_bytes: 160,
            interval: SimDuration::from_millis(20),
            size_jitter: 0,
            delay_budget: SimDuration::from_millis(40),
            duration,
            profile: StreamProfile::voice(),
        }
    }

    /// ~2 Mb/s video: ~8 KB frames at 30 fps, bursty sizes, 100 ms budget.
    pub fn video(duration: SimDuration) -> Self {
        let profile = StreamProfile {
            capacity: 64 * 1024,
            max_message: 16 * 1024,
            delay: rms_core::DelayBound::best_effort_with(
                SimDuration::from_millis(100),
                SimDuration::from_micros(10),
            ),
            ..StreamProfile::default()
        };
        MediaSpec {
            frame_bytes: 8 * 1024,
            interval: SimDuration::from_millis(33),
            size_jitter: 4 * 1024,
            delay_budget: SimDuration::from_millis(100),
            duration,
            profile,
        }
    }
}

/// Results of a media session.
#[derive(Debug, Default)]
pub struct MediaStats {
    /// Frames offered by the source.
    pub sent: u64,
    /// Frames refused by sender flow control.
    pub refused: u64,
    /// Frames delivered.
    pub received: u64,
    /// Deliveries beyond the delay budget.
    pub late: u64,
    /// One-way delays, seconds.
    pub delays: Histogram,
    /// Set when the stream could not be opened.
    pub failed: bool,
}

impl MediaStats {
    /// Fraction of sent frames that arrived within the budget.
    pub fn on_time_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            (self.received - self.late.min(self.received)) as f64 / self.sent as f64
        }
    }

    /// Fraction of sent frames lost outright.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.received as f64 / self.sent as f64
        }
    }
}

/// Start a media source from `src` to `dst`, registering its receive-side
/// measurements with `taps` (a [`Dispatcher`] installed on `dst`). Frames
/// flow for `spec.duration`; statistics accumulate in the returned handle.
pub fn start_media(
    sim: &mut Sim<Stack>,
    taps: &Dispatcher,
    src: HostId,
    dst: HostId,
    spec: MediaSpec,
    seed: u64,
) -> Rc<RefCell<MediaStats>> {
    let stats = Rc::new(RefCell::new(MediaStats::default()));
    let session = match stream::open(sim, src, dst, spec.profile.clone()) {
        Ok(s) => s,
        Err(_) => {
            stats.borrow_mut().failed = true;
            return stats;
        }
    };
    let st2 = Rc::clone(&stats);
    let budget = spec.delay_budget;
    taps.register(session, move |_sim, ev| {
        if let SessionEvent::Delivered { delay, .. } = ev {
            let mut s = st2.borrow_mut();
            s.received += 1;
            s.delays.record(delay.as_secs_f64());
            if delay > budget {
                s.late += 1;
            }
        }
    });

    // Sender: periodic frames until the deadline.
    let end = sim.now().saturating_add(spec.duration);
    let rng = Rng::new(seed);
    schedule_frame(sim, src, session, spec, end, rng, Rc::clone(&stats));
    stats
}

fn schedule_frame(
    sim: &mut Sim<Stack>,
    src: HostId,
    session: u64,
    spec: MediaSpec,
    end: SimTime,
    mut rng: Rng,
    stats: Rc<RefCell<MediaStats>>,
) {
    if sim.now() >= end {
        return;
    }
    let interval = spec.interval;
    sim.schedule_in(interval, move |sim| {
        let size = if spec.size_jitter == 0 {
            spec.frame_bytes
        } else {
            let lo = spec.frame_bytes.saturating_sub(spec.size_jitter).max(1);
            let hi = spec.frame_bytes + spec.size_jitter;
            rng.range(lo, hi)
        };
        {
            let mut s = stats.borrow_mut();
            s.sent += 1;
            if stream::send(sim, src, session, Message::zeroes(size as usize)).is_err() {
                s.refused += 1;
            }
        }
        schedule_frame(sim, src, session, spec, end, rng, stats);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;
    use dash_transport::stack::StackBuilder;

    #[test]
    fn voice_on_quiet_lan_is_on_time() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let stats = start_media(
            &mut sim,
            &taps,
            a,
            b,
            MediaSpec::voice(SimDuration::from_secs(2)),
            7,
        );
        sim.run();
        let s = stats.borrow();
        assert!(!s.failed);
        // 2 s of 20 ms frames ≈ 100 frames.
        assert!(s.sent >= 95, "sent {}", s.sent);
        assert!(s.received as f64 >= s.sent as f64 * 0.98);
        assert_eq!(s.late, 0, "quiet LAN must meet the 40 ms budget");
        assert!(s.on_time_fraction() > 0.97);
    }

    #[test]
    fn video_carries_meaningful_bandwidth() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let stats = start_media(
            &mut sim,
            &taps,
            a,
            b,
            MediaSpec::video(SimDuration::from_secs(1)),
            11,
        );
        sim.run();
        let s = stats.borrow();
        assert!(!s.failed);
        assert!(s.sent >= 28, "sent {}", s.sent);
        assert!(s.received >= s.sent * 9 / 10);
        assert!(s.delays.mean() > 0.0);
    }

    #[test]
    fn media_stats_fractions() {
        let mut s = MediaStats::default();
        assert_eq!(s.on_time_fraction(), 0.0);
        s.sent = 10;
        s.received = 8;
        s.late = 2;
        assert!((s.on_time_fraction() - 0.6).abs() < 1e-9);
        assert!((s.loss_fraction() - 0.2).abs() < 1e-9);
    }
}
