//! Bulk data transfer (paper §2.5: "a stream protocol for bulk data
//! transfer should use a high capacity, high delay RMS for data").

use std::cell::RefCell;
use std::rc::Rc;

use dash_net::ids::HostId;
use dash_sim::engine::Sim;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::stack::Stack;
use dash_transport::stream::{self, StreamProfile};
use rms_core::message::Message;

use crate::taps::{Dispatcher, SessionEvent};

/// A bulk transfer in progress / completed.
#[derive(Debug)]
pub struct BulkStats {
    /// The stream session carrying the transfer (0 if open failed).
    pub session: u64,
    /// Total payload bytes to move.
    pub total_bytes: u64,
    /// Bytes offered to the send port so far.
    pub offered_bytes: u64,
    /// Bytes delivered so far.
    pub delivered_bytes: u64,
    /// When the transfer started.
    pub started: SimTime,
    /// When the last byte arrived (set on completion).
    pub finished: Option<SimTime>,
    /// Set when the stream failed.
    pub failed: bool,
}

impl BulkStats {
    /// Goodput in bytes/second (None until complete).
    pub fn goodput(&self) -> Option<f64> {
        self.finished.map(|f| {
            let dt = f.saturating_since(self.started).as_secs_f64();
            if dt > 0.0 {
                self.total_bytes as f64 / dt
            } else {
                f64::INFINITY
            }
        })
    }

    /// True when every byte arrived.
    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }
}

/// Transfer `total_bytes` from `src` to `dst` in `chunk` chunks over the
/// bulk profile. The receiver consumes immediately (a disk-speed sink).
pub fn start_bulk(
    sim: &mut Sim<Stack>,
    taps: &Dispatcher,
    src: HostId,
    dst: HostId,
    total_bytes: u64,
    chunk: u64,
    profile: StreamProfile,
) -> Rc<RefCell<BulkStats>> {
    let stats = Rc::new(RefCell::new(BulkStats {
        session: 0,
        total_bytes,
        offered_bytes: 0,
        delivered_bytes: 0,
        started: sim.now(),
        finished: None,
        failed: false,
    }));
    let session = match stream::open(sim, src, dst, profile) {
        Ok(s) => s,
        Err(_) => {
            stats.borrow_mut().failed = true;
            return stats;
        }
    };
    stats.borrow_mut().session = session;
    // Receiver: count, consume, finish. The endpoints are known here, so
    // the handlers capture them instead of scanning every host per event.
    let st2 = Rc::clone(&stats);
    taps.register(session, move |sim, ev| match ev {
        SessionEvent::Delivered { msg, .. } => {
            let done = {
                let mut s = st2.borrow_mut();
                s.delivered_bytes += msg.len() as u64;
                if s.delivered_bytes >= s.total_bytes && s.finished.is_none() {
                    s.finished = Some(sim.now());
                }
                s.finished.is_some()
            };
            // Disk-speed sink: consume immediately so receiver flow
            // control never throttles this workload.
            stream::consume(sim, dst, session, msg.len() as u64);
            let _ = done;
        }
        SessionEvent::Opened | SessionEvent::Drained => {
            // Kick (or resume) the sender pump.
            pump_bulk(sim, src, session, Rc::clone(&st2), chunk);
        }
        SessionEvent::Ended => {
            st2.borrow_mut().failed = true;
        }
    });
    stats
}

/// Offer chunks until the port refuses or everything is queued; resumes on
/// [`SessionEvent::Drained`].
fn pump_bulk(
    sim: &mut Sim<Stack>,
    src: HostId,
    session: u64,
    stats: Rc<RefCell<BulkStats>>,
    chunk: u64,
) {
    loop {
        let this = {
            let s = stats.borrow();
            if s.failed || s.finished.is_some() || s.offered_bytes >= s.total_bytes {
                return;
            }
            chunk.min(s.total_bytes - s.offered_bytes)
        };
        if stream::send(sim, src, session, Message::zeroes(this as usize)).is_err() {
            return; // blocked: Drained will resume us
        }
        stats.borrow_mut().offered_bytes += this;
    }
}

/// Drive a simulation until the transfer completes or `deadline` passes,
/// consuming at the receiver. Returns true on completion.
pub fn run_until_complete(
    sim: &mut Sim<Stack>,
    stats: &Rc<RefCell<BulkStats>>,
    deadline: SimDuration,
) -> bool {
    let end = sim.now().saturating_add(deadline);
    while sim.now() < end {
        if stats.borrow().is_complete() || stats.borrow().failed {
            break;
        }
        let step = SimDuration::from_millis(50);
        let target = (sim.now() + step).min(end);
        sim.run_until(target);
        if sim.events_pending() == 0 && !stats.borrow().is_complete() {
            // Quiescent but incomplete: nothing more will happen.
            break;
        }
    }
    stats.borrow().is_complete()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;
    use dash_transport::stack::StackBuilder;

    #[test]
    fn bulk_completes_on_lan() {
        let (net, a, b) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let stats = start_bulk(
            &mut sim,
            &taps,
            a,
            b,
            256 * 1024,
            4 * 1024,
            StreamProfile::bulk(),
        );
        let done = run_until_complete(&mut sim, &stats, SimDuration::from_secs(30));
        assert!(done, "transfer incomplete: {:?}", stats.borrow());
        let s = stats.borrow();
        let goodput = s.goodput().unwrap();
        // 10 Mb/s Ethernet: goodput should be a meaningful fraction.
        assert!(
            goodput > 200_000.0,
            "goodput {goodput} B/s too low for a 10 Mb/s LAN"
        );
    }
}
