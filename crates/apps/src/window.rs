//! Network window system traffic (paper §2.5, ref \[7\]).
//!
//! "The RMS from user to application carries mouse and keyboard events, and
//! can have low capacity. The RMS in the opposite direction carries graphic
//! information, and generally requires higher capacity." Interactive
//! traffic "can tolerate a moderate amount of delay because of human
//! perceptual limitations."

use std::cell::RefCell;
use std::rc::Rc;

use dash_net::ids::HostId;
use dash_sim::engine::Sim;
use dash_sim::rng::Rng;
use dash_sim::stats::Histogram;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::stack::Stack;
use dash_transport::stream::{self, StreamProfile};
use rms_core::delay::DelayBound;
use rms_core::message::Message;

use crate::taps::{Dispatcher, SessionEvent};

/// Window-system workload parameters.
#[derive(Debug, Clone)]
pub struct WindowSpec {
    /// Mean input-event rate (mouse/keyboard), events/second (Poisson).
    pub event_rate: f64,
    /// Input event size, bytes.
    pub event_bytes: u64,
    /// Mean graphics response size, bytes (Pareto-tailed).
    pub graphics_bytes: u64,
    /// Human-perceptible budget for event → screen-update latency.
    pub interaction_budget: SimDuration,
    /// Workload duration.
    pub duration: SimDuration,
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec {
            event_rate: 50.0,
            event_bytes: 32,
            graphics_bytes: 2 * 1024,
            interaction_budget: SimDuration::from_millis(100),
            duration: SimDuration::from_secs(2),
        }
    }
}

/// Window-system results.
#[derive(Debug, Default)]
pub struct WindowStats {
    /// Input events sent by the user host.
    pub events_sent: u64,
    /// Events that reached the application host.
    pub events_received: u64,
    /// Graphics updates painted back at the user host.
    pub updates_received: u64,
    /// Event → screen-update round-trip latencies, seconds.
    pub interaction_latency: Histogram,
    /// Interactions beyond the perceptual budget.
    pub late_interactions: u64,
    /// Set on failure.
    pub failed: bool,
}

/// Start a window-system pair: events flow `user → app` on a low-capacity
/// stream; each event triggers a graphics update `app → user` on a
/// higher-capacity stream.
pub fn start_window_system(
    sim: &mut Sim<Stack>,
    taps: &Dispatcher,
    user: HostId,
    app: HostId,
    spec: WindowSpec,
    seed: u64,
) -> Rc<RefCell<WindowStats>> {
    let stats = Rc::new(RefCell::new(WindowStats::default()));

    // §2.5 parameter choices: events = low capacity, moderate delay.
    let event_profile = StreamProfile {
        capacity: 4 * 1024,
        max_message: 256,
        delay: DelayBound::best_effort_with(
            SimDuration::from_millis(30),
            SimDuration::from_micros(10),
        ),
        ..StreamProfile::default()
    };
    // Graphics = higher capacity.
    let gfx_profile = StreamProfile {
        capacity: 64 * 1024,
        max_message: 16 * 1024,
        delay: DelayBound::best_effort_with(
            SimDuration::from_millis(60),
            SimDuration::from_micros(10),
        ),
        ..StreamProfile::default()
    };

    let Ok(event_stream) = stream::open(sim, user, app, event_profile) else {
        stats.borrow_mut().failed = true;
        return stats;
    };
    let Ok(gfx_stream) = stream::open(sim, app, user, gfx_profile) else {
        stats.borrow_mut().failed = true;
        return stats;
    };

    // App side: every event triggers a graphics update echoing the event's
    // send timestamp so the user side can measure the full interaction.
    let st_app = Rc::clone(&stats);
    let mut rng_app = Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(0xA44));
    let mean_gfx = spec.graphics_bytes as f64;
    taps.register(event_stream, move |sim, ev| {
        if let SessionEvent::Delivered { msg, .. } = ev {
            st_app.borrow_mut().events_received += 1;
            // Echo the 8-byte send timestamp so the user side can measure
            // the full event→paint interaction; pad to a Pareto-tailed
            // graphics-update size.
            let mut payload = msg.payload().to_vec();
            let gfx_len = (mean_gfx * rng_app.pareto(0.45, 1.8)).clamp(256.0, 15_000.0) as usize;
            payload.resize(gfx_len.max(payload.len()), 0);
            let _ = stream::send(sim, app, gfx_stream, Message::new(payload));
        }
    });

    // User side: receive graphics, measure interaction latency.
    let st_user = Rc::clone(&stats);
    let budget = spec.interaction_budget;
    taps.register(gfx_stream, move |sim, ev| {
        if let SessionEvent::Delivered { msg, .. } = ev {
            let mut s = st_user.borrow_mut();
            s.updates_received += 1;
            if msg.len() >= 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&msg.payload()[..8]);
                let sent = SimTime::from_nanos(u64::from_be_bytes(b));
                let rtt = sim.now().saturating_since(sent);
                s.interaction_latency.record(rtt.as_secs_f64());
                if rtt > budget {
                    s.late_interactions += 1;
                }
            }
        }
    });

    // User input source: Poisson events.
    let end = sim.now().saturating_add(spec.duration);
    let rng = Rng::new(seed);
    schedule_event(sim, user, event_stream, spec, end, rng, Rc::clone(&stats));
    stats
}

fn schedule_event(
    sim: &mut Sim<Stack>,
    user: HostId,
    event_stream: u64,
    spec: WindowSpec,
    end: SimTime,
    mut rng: Rng,
    stats: Rc<RefCell<WindowStats>>,
) {
    if sim.now() >= end {
        return;
    }
    let gap = SimDuration::from_secs_f64(rng.exp(1.0 / spec.event_rate));
    sim.schedule_in(gap, move |sim| {
        let mut payload = vec![0u8; spec.event_bytes.max(8) as usize];
        payload[..8].copy_from_slice(&sim.now().as_nanos().to_be_bytes());
        stats.borrow_mut().events_sent += 1;
        let _ = stream::send(sim, user, event_stream, Message::new(payload));
        schedule_event(sim, user, event_stream, spec, end, rng, stats);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;
    use dash_transport::stack::StackBuilder;

    #[test]
    fn interactive_loop_on_lan_is_snappy() {
        let (net, user, app) = two_hosts_ethernet();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[user, app]);
        let stats = start_window_system(&mut sim, &taps, user, app, WindowSpec::default(), 21);
        sim.run();
        let s = stats.borrow();
        assert!(!s.failed);
        assert!(s.events_sent > 50, "events {}", s.events_sent);
        assert!(s.events_received as f64 > s.events_sent as f64 * 0.9);
        assert!(s.updates_received as f64 > s.events_sent as f64 * 0.8);
        assert_eq!(s.late_interactions, 0, "LAN interactions inside 100 ms");
        assert!(s.interaction_latency.mean() < 0.05);
    }
}
