//! Scatter-gather wire messages.
//!
//! The paper's messages are untyped byte arrays (§2); nothing in the
//! model requires a message body to be materialized contiguously with
//! the protocol headers wrapped around it. [`WireMsg`] exploits that: an
//! encoded frame is an ordered list of segments — small owned header
//! chunks plus zero-copy [`Bytes`] views of the application payload —
//! so encode never copies payload bytes and decode hands back views of
//! the sender's buffer.
//!
//! Up to three segments are stored inline (header + payload + trailer
//! covers every frame the stack emits), so the common case allocates
//! nothing beyond the header chunk itself. [`WireMsg::push`] coalesces
//! adjacent views of the same backing buffer, which is what makes
//! fragment reassembly re-form the original payload view instead of
//! accumulating a long segment list.
//!
//! [`WireCursor`] is the decode side: big-endian reads and zero-copy
//! `take` operations that slice the shared segments. [`WireMsg::contiguous`]
//! is the escape hatch for consumers that genuinely need one flat buffer
//! (security transforms, tests, the wiretap); it is free when the
//! message already is contiguous and an explicit, visible copy when not.

use std::fmt;

use bytes::Bytes;

/// Number of segments stored without heap-allocating the segment list.
const INLINE_SEGS: usize = 3;

/// Error returned by [`WireCursor`] reads that run past the message end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncated;

impl fmt::Display for Truncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire message truncated")
    }
}

impl std::error::Error for Truncated {}

/// An encoded wire message: an ordered list of byte segments that
/// together form the octets "on the wire", without requiring them to be
/// contiguous in memory.
#[derive(Clone, Default)]
pub struct WireMsg {
    inline: [Bytes; INLINE_SEGS],
    spill: Vec<Bytes>,
    segs: usize,
    total: usize,
}

impl WireMsg {
    /// An empty message.
    pub fn new() -> Self {
        WireMsg::default()
    }

    /// A message consisting of one segment.
    pub fn from_bytes(segment: impl Into<Bytes>) -> Self {
        let mut m = WireMsg::new();
        m.push(segment.into());
        m
    }

    /// Total length in bytes — the single source of truth for encoded
    /// frame sizes (there is no parallel size computation to drift from
    /// the encoder).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the message has no bytes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of segments (empty segments are never stored).
    pub fn seg_count(&self) -> usize {
        self.segs
    }

    /// The first byte, if any — O(1), for protocol-magic dispatch.
    pub fn first_byte(&self) -> Option<u8> {
        if self.segs == 0 {
            None
        } else {
            self.seg(0).first().copied()
        }
    }

    fn seg(&self, i: usize) -> &Bytes {
        if i < INLINE_SEGS {
            &self.inline[i]
        } else {
            &self.spill[i - INLINE_SEGS]
        }
    }

    fn seg_mut(&mut self, i: usize) -> &mut Bytes {
        if i < INLINE_SEGS {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - INLINE_SEGS]
        }
    }

    /// Append a segment (a refcount bump, never a byte copy). Empty
    /// segments are dropped; a segment that is an adjacent view of the
    /// same backing buffer as the current tail is coalesced into it.
    pub fn push(&mut self, segment: Bytes) {
        if segment.is_empty() {
            return;
        }
        self.total += segment.len();
        if self.segs > 0 {
            let tail = self.seg_mut(self.segs - 1);
            if let Some(joined) = Bytes::merge_contiguous(tail, &segment) {
                *tail = joined;
                return;
            }
        }
        if self.segs < INLINE_SEGS {
            self.inline[self.segs] = segment;
        } else {
            self.spill.push(segment);
        }
        self.segs += 1;
    }

    /// Append every segment of `other` (refcount bumps only).
    pub fn append(&mut self, other: &WireMsg) {
        for s in other.segments() {
            self.push(s.clone());
        }
    }

    /// Iterate over the segments in order.
    pub fn segments(&self) -> impl Iterator<Item = &Bytes> {
        (0..self.segs).map(move |i| self.seg(i))
    }

    /// One flat buffer holding the whole message. Zero-copy when the
    /// message is empty or already a single segment (the common case);
    /// otherwise this is the one place the wire path copies bytes —
    /// kept for consumers that need contiguity (security transforms,
    /// the wiretap, tests and compatibility shims).
    pub fn contiguous(&self) -> Bytes {
        match self.segs {
            0 => Bytes::new(),
            1 => self.seg(0).clone(),
            _ => {
                let mut flat = Vec::with_capacity(self.total);
                for s in self.segments() {
                    flat.extend_from_slice(s);
                }
                Bytes::from(flat)
            }
        }
    }

    /// A zero-copy sub-message covering `start..end` of the logical
    /// byte range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> WireMsg {
        assert!(start <= end && end <= self.total, "slice out of bounds");
        let mut out = WireMsg::new();
        let mut pos = 0usize;
        for s in self.segments() {
            let seg_end = pos + s.len();
            if seg_end > start && pos < end {
                let from = start.saturating_sub(pos);
                let to = s.len().min(end - pos);
                out.push(s.slice(from..to));
            }
            pos = seg_end;
            if pos >= end {
                break;
            }
        }
        out
    }

    /// A cursor reading this message from the start.
    pub fn cursor(&self) -> WireCursor<'_> {
        WireCursor {
            msg: self,
            seg: 0,
            off: 0,
            left: self.total,
        }
    }
}

impl From<Bytes> for WireMsg {
    fn from(b: Bytes) -> Self {
        WireMsg::from_bytes(b)
    }
}

impl From<Vec<u8>> for WireMsg {
    fn from(v: Vec<u8>) -> Self {
        WireMsg::from_bytes(Bytes::from(v))
    }
}

/// Equality over the logical byte string, independent of segmentation.
impl PartialEq for WireMsg {
    fn eq(&self, other: &Self) -> bool {
        if self.total != other.total {
            return false;
        }
        let mut a = self.segments().flat_map(|s| s.iter());
        let mut b = other.segments().flat_map(|s| s.iter());
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl Eq for WireMsg {}

impl fmt::Debug for WireMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireMsg[{} segs, {} bytes]", self.segs, self.total)
    }
}

/// A big-endian read cursor over a [`WireMsg`]'s segments.
///
/// Scalar reads cross segment boundaries transparently; `take`
/// operations return zero-copy views of the underlying segments.
#[derive(Clone)]
pub struct WireCursor<'a> {
    msg: &'a WireMsg,
    seg: usize,
    off: usize,
    left: usize,
}

impl<'a> WireCursor<'a> {
    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.left
    }

    /// Absolute position from the start of the message.
    fn pos(&self) -> usize {
        self.msg.len() - self.left
    }

    /// Copy exactly `N` bytes into an array, advancing.
    fn read_array<const N: usize>(&mut self) -> Result<[u8; N], Truncated> {
        if self.left < N {
            return Err(Truncated);
        }
        let mut out = [0u8; N];
        let mut filled = 0;
        while filled < N {
            let seg = self.msg.seg(self.seg);
            let avail = seg.len() - self.off;
            let take = avail.min(N - filled);
            out[filled..filled + take].copy_from_slice(&seg[self.off..self.off + take]);
            filled += take;
            self.advance_within(take);
        }
        Ok(out)
    }

    /// Advance by `n` bytes already known to be available.
    fn advance_within(&mut self, n: usize) {
        self.off += n;
        self.left -= n;
        while self.seg < self.msg.seg_count() && self.off == self.msg.seg(self.seg).len() {
            self.seg += 1;
            self.off = 0;
        }
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), Truncated> {
        if self.left < n {
            return Err(Truncated);
        }
        let mut togo = n;
        while togo > 0 {
            let avail = self.msg.seg(self.seg).len() - self.off;
            let take = avail.min(togo);
            togo -= take;
            self.advance_within(take);
        }
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, Truncated> {
        Ok(self.read_array::<1>()?[0])
    }

    /// Read a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, Truncated> {
        Ok(u16::from_be_bytes(self.read_array()?))
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, Truncated> {
        Ok(u32::from_be_bytes(self.read_array()?))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, Truncated> {
        Ok(u64::from_be_bytes(self.read_array()?))
    }

    /// Read a big-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, Truncated> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Take the next `n` bytes as a zero-copy sub-message (views of the
    /// shared segments, no byte copies).
    pub fn take_wire(&mut self, n: usize) -> Result<WireMsg, Truncated> {
        if self.left < n {
            return Err(Truncated);
        }
        let start = self.pos();
        let out = self.msg.slice(start, start + n);
        self.skip(n)?;
        Ok(out)
    }

    /// Take the next `n` bytes as one [`Bytes`]. Zero-copy when they
    /// fall within a single segment (or within adjacent views of one
    /// buffer); copies only when they genuinely straddle unrelated
    /// segments.
    pub fn take_bytes(&mut self, n: usize) -> Result<Bytes, Truncated> {
        Ok(self.take_wire(n)?.contiguous())
    }

    /// Take everything left as a zero-copy sub-message.
    pub fn take_rest(&mut self) -> WireMsg {
        self.take_wire(self.left)
            .expect("remaining bytes available")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }

    #[test]
    fn push_skips_empty_and_tracks_len() {
        let mut m = WireMsg::new();
        assert!(m.is_empty());
        m.push(Bytes::new());
        assert_eq!(m.seg_count(), 0);
        m.push(seg(&[1, 2]));
        m.push(seg(&[3]));
        assert_eq!(m.len(), 3);
        assert_eq!(m.seg_count(), 2);
        assert_eq!(m.first_byte(), Some(1));
    }

    #[test]
    fn inline_then_spill() {
        let mut m = WireMsg::new();
        for i in 0..5u8 {
            m.push(seg(&[i, i]));
        }
        assert_eq!(m.seg_count(), 5);
        assert_eq!(m.len(), 10);
        let flat = m.contiguous();
        assert_eq!(flat.as_ref(), &[0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn push_coalesces_adjacent_views() {
        let backing = seg(&[1, 2, 3, 4, 5, 6]);
        let mut m = WireMsg::new();
        m.push(backing.slice(0..2));
        m.push(backing.slice(2..4));
        m.push(backing.slice(4..6));
        // All three views rejoin into one zero-copy segment.
        assert_eq!(m.seg_count(), 1);
        assert_eq!(m.contiguous().as_ptr(), backing.as_ptr());
    }

    #[test]
    fn push_never_coalesces_across_backings() {
        // Two distinct allocations whose contents would concatenate
        // seamlessly — coalescing keys on the backing buffer, not on the
        // bytes, so these must stay separate segments. (A cross-backing
        // merge would silently alias unrelated buffers and was the bug
        // class `merge_contiguous`'s identity check exists to prevent.)
        let a = seg(&[1, 2, 3]);
        let b = seg(&[4, 5, 6]);
        let mut m = WireMsg::new();
        m.push(a.slice(0..3));
        m.push(b.slice(0..3));
        assert_eq!(m.seg_count(), 2);
        assert_eq!(m.contiguous().as_ref(), &[1, 2, 3, 4, 5, 6]);
        let segs: Vec<&Bytes> = m.segments().collect();
        assert_eq!(segs[0].as_ptr(), a.as_ptr());
        assert_eq!(segs[1].as_ptr(), b.as_ptr());

        // Same backing but non-adjacent views must not join either.
        let mut g = WireMsg::new();
        g.push(a.slice(0..1));
        g.push(a.slice(2..3));
        assert_eq!(g.seg_count(), 2);
        assert_eq!(g.contiguous().as_ref(), &[1, 3]);
    }

    #[test]
    fn contiguous_is_zero_copy_for_single_segment() {
        let b = seg(&[9, 8, 7]);
        let m = WireMsg::from_bytes(b.clone());
        assert_eq!(m.contiguous().as_ptr(), b.as_ptr());
        assert!(WireMsg::new().contiguous().is_empty());
    }

    #[test]
    fn slice_crosses_segments_without_copying_views() {
        let a = seg(&[1, 2, 3]);
        let b = seg(&[4, 5, 6]);
        let mut m = WireMsg::new();
        m.push(a.clone());
        m.push(b.clone());
        let s = m.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.contiguous().as_ref(), &[3, 4, 5]);
        // The slice's segments point into the original buffers.
        let segs: Vec<&Bytes> = s.segments().collect();
        assert_eq!(segs[0].as_ptr(), a.slice(2..3).as_ptr());
        assert_eq!(segs[1].as_ptr(), b.as_ptr());
    }

    #[test]
    fn equality_ignores_segmentation() {
        let mut a = WireMsg::new();
        a.push(seg(&[1, 2]));
        a.push(seg(&[3, 4]));
        let b = WireMsg::from_bytes(seg(&[1, 2, 3, 4]));
        assert_eq!(a, b);
        let c = WireMsg::from_bytes(seg(&[1, 2, 3, 5]));
        assert_ne!(a, c);
        assert_ne!(a, WireMsg::from_bytes(seg(&[1, 2, 3])));
    }

    #[test]
    fn cursor_reads_across_boundaries() {
        let mut m = WireMsg::new();
        m.push(seg(&[0x01, 0x02, 0x03]));
        m.push(seg(&[0x04, 0xff]));
        let mut c = m.cursor();
        assert_eq!(c.remaining(), 5);
        // u32 read straddles the two segments.
        assert_eq!(c.get_u32().unwrap(), 0x0102_0304);
        assert_eq!(c.get_u8().unwrap(), 0xff);
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.get_u8(), Err(Truncated));
    }

    #[test]
    fn cursor_take_is_zero_copy_within_segment() {
        let payload = seg(&[10, 20, 30, 40]);
        let mut m = WireMsg::new();
        m.push(seg(&[0xaa]));
        m.push(payload.clone());
        let mut c = m.cursor();
        assert_eq!(c.get_u8().unwrap(), 0xaa);
        let taken = c.take_bytes(4).unwrap();
        assert_eq!(taken.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn cursor_take_rest_and_skip() {
        let mut m = WireMsg::new();
        m.push(seg(&[1, 2, 3]));
        m.push(seg(&[4, 5]));
        let mut c = m.cursor();
        c.skip(2).unwrap();
        let rest = c.take_rest();
        assert_eq!(rest.contiguous().as_ref(), &[3, 4, 5]);
        assert_eq!(c.remaining(), 0);
        assert_eq!(m.cursor().skip(6), Err(Truncated));
    }

    #[test]
    fn take_wire_preserves_sharing() {
        let payload = seg(&[7; 32]);
        let mut m = WireMsg::new();
        m.push(seg(&[1, 2]));
        m.push(payload.clone());
        let mut c = m.cursor();
        c.skip(2).unwrap();
        let sub = c.take_wire(32).unwrap();
        assert_eq!(sub.seg_count(), 1);
        assert_eq!(sub.contiguous().as_ptr(), payload.as_ptr());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        WireMsg::from_bytes(seg(&[1])).slice(0, 2);
    }
}
