//! RMS parameter types (paper §2.1–§2.2).
//!
//! An RMS carries Boolean reliability/security parameters and numeric
//! performance parameters. Booleans are represented as two-variant enums so
//! call sites read as `Reliability::Reliable` rather than bare `true`
//! (C-CUSTOM-TYPE).

use std::fmt;

use crate::delay::DelayBound;

/// Whether every sent message is delivered unless the RMS fails (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Reliability {
    /// Messages may be lost (the provider still preserves order).
    #[default]
    Unreliable,
    /// All messages sent are delivered, unless the RMS fails.
    Reliable,
}

impl Reliability {
    /// True iff this level satisfies a request for `requested` (§2.4 rule 1:
    /// "the actual reliability and security properties include those
    /// requested").
    pub fn includes(self, requested: Reliability) -> bool {
        self >= requested
    }
}

/// Whether impersonation (incorrect source label) is impossible (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Authentication {
    /// Source labels are not verified.
    #[default]
    Unauthenticated,
    /// Delivery of a message with an incorrect source label is impossible.
    Authenticated,
}

impl Authentication {
    /// True iff this level satisfies a request for `requested`.
    pub fn includes(self, requested: Authentication) -> bool {
        self >= requested
    }
}

/// Whether eavesdropping by a third party is impossible (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Privacy {
    /// Message contents may be observed in transit.
    #[default]
    Open,
    /// Only the host/process named by the target label can read the data.
    Private,
}

impl Privacy {
    /// True iff this level satisfies a request for `requested`.
    pub fn includes(self, requested: Privacy) -> bool {
        self >= requested
    }
}

/// The security half of the Boolean parameters: authentication + privacy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SecurityParams {
    /// Impersonation protection.
    pub authentication: Authentication,
    /// Eavesdropping protection.
    pub privacy: Privacy,
}

impl SecurityParams {
    /// Neither authentication nor privacy.
    pub const NONE: SecurityParams = SecurityParams {
        authentication: Authentication::Unauthenticated,
        privacy: Privacy::Open,
    };
    /// Both authentication and privacy.
    pub const FULL: SecurityParams = SecurityParams {
        authentication: Authentication::Authenticated,
        privacy: Privacy::Private,
    };

    /// True iff every property of `requested` is also provided by `self`.
    pub fn includes(self, requested: SecurityParams) -> bool {
        self.authentication.includes(requested.authentication)
            && self.privacy.includes(requested.privacy)
    }

    /// All four combinations, weakest first.
    pub fn all() -> [SecurityParams; 4] {
        [
            SecurityParams::NONE,
            SecurityParams {
                authentication: Authentication::Authenticated,
                privacy: Privacy::Open,
            },
            SecurityParams {
                authentication: Authentication::Unauthenticated,
                privacy: Privacy::Private,
            },
            SecurityParams::FULL,
        ]
    }
}

/// Average bit error rate guaranteed by the provider (§2.2): the combined
/// effect of the transmission medium, checksumming effectiveness, and
/// expected buffer-overrun loss. A probability in `[0, 1]` per bit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BitErrorRate(f64);

impl BitErrorRate {
    /// A perfect, error-free channel.
    pub const ZERO: BitErrorRate = BitErrorRate(0.0);

    /// Construct from a per-bit error probability.
    ///
    /// # Errors
    ///
    /// Returns `None` unless `rate` is finite and within `[0, 1]`.
    pub fn new(rate: f64) -> Option<BitErrorRate> {
        if rate.is_finite() && (0.0..=1.0).contains(&rate) {
            Some(BitErrorRate(rate))
        } else {
            None
        }
    }

    /// The per-bit error probability.
    pub fn rate(self) -> f64 {
        self.0
    }

    /// Probability that a message of `bytes` bytes arrives with at least one
    /// bit error: `1 - (1 - ber)^(8·bytes)`.
    pub fn message_error_probability(self, bytes: u64) -> f64 {
        let bits = (bytes as f64) * 8.0;
        1.0 - (1.0 - self.0).powf(bits)
    }
}

impl Default for BitErrorRate {
    fn default() -> Self {
        BitErrorRate::ZERO
    }
}

impl fmt::Display for BitErrorRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2e}", self.0)
    }
}

/// Validation failure for a parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `max_message_size` exceeds `capacity`, violating §2.2: "This limit
    /// cannot be greater than the RMS capacity."
    MessageSizeExceedsCapacity {
        /// The offending maximum message size.
        max_message_size: u64,
        /// The stream capacity it exceeds.
        capacity: u64,
    },
    /// Capacity of zero would forbid sending anything.
    ZeroCapacity,
    /// Maximum message size of zero would forbid sending anything.
    ZeroMessageSize,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::MessageSizeExceedsCapacity {
                max_message_size,
                capacity,
            } => write!(
                f,
                "maximum message size {max_message_size} exceeds capacity {capacity}"
            ),
            ParamError::ZeroCapacity => write!(f, "capacity must be positive"),
            ParamError::ZeroMessageSize => write!(f, "maximum message size must be positive"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The complete parameter set of an RMS (§2.1–§2.3).
///
/// This is a passive, compound value in the C-struct spirit: fields are
/// public, and providers call [`RmsParams::validate`] before honouring a
/// set. Construct via [`RmsParams::builder`] for validated construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsParams {
    /// Delivery guarantee.
    pub reliability: Reliability,
    /// Authentication + privacy guarantees.
    pub security: SecurityParams,
    /// Upper bound, in bytes, on data outstanding within the RMS (sent but
    /// not yet delivered). Enforced by the *clients*, not the provider
    /// (§2.2, §4.4).
    pub capacity: u64,
    /// Upper bound, in bytes, on individual message size; enforced by the
    /// sender. Never exceeds `capacity`.
    pub max_message_size: u64,
    /// Delay bound `A + B·size` plus its type (§2.2–§2.3).
    pub delay: DelayBound,
    /// Average bit error rate guaranteed by the provider.
    pub error_rate: BitErrorRate,
}

/// Shared, immutable handle to a negotiated parameter set.
///
/// Parameters are fixed at RMS creation time and consulted on every packet
/// thereafter; storing one shared allocation in endpoint state, hop
/// reservations, and control packets makes the per-packet `clone()` a
/// reference-count bump instead of a struct copy.
pub type SharedParams = std::sync::Arc<RmsParams>;

impl RmsParams {
    /// Wrap this parameter set in a [`SharedParams`] handle.
    pub fn shared(self) -> SharedParams {
        SharedParams::new(self)
    }

    /// Start building a parameter set with the given capacity and maximum
    /// message size.
    ///
    /// Defaults are *request-friendly*: unreliable, no security, a
    /// best-effort 1-second delay bound, and a lenient `1e-4` error-rate
    /// floor (a zero floor would be unsatisfiable on any lossy medium,
    /// since the error rate is a parameter the provider must guarantee to
    /// be *no greater* than requested).
    pub fn builder(capacity: u64, max_message_size: u64) -> RmsParamsBuilder {
        RmsParamsBuilder {
            params: RmsParams {
                reliability: Reliability::Unreliable,
                security: SecurityParams::NONE,
                capacity,
                max_message_size,
                delay: DelayBound::best_effort(),
                error_rate: BitErrorRate::new(1e-4).expect("valid default"),
            },
        }
    }

    /// Check the invariants of §2.2.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the maximum message size exceeds the
    /// capacity or either is zero.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.capacity == 0 {
            return Err(ParamError::ZeroCapacity);
        }
        if self.max_message_size == 0 {
            return Err(ParamError::ZeroMessageSize);
        }
        if self.max_message_size > self.capacity {
            return Err(ParamError::MessageSizeExceedsCapacity {
                max_message_size: self.max_message_size,
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

/// Builder for [`RmsParams`] (C-BUILDER). Terminal method is
/// [`RmsParamsBuilder::build`], which validates.
#[derive(Debug, Clone)]
pub struct RmsParamsBuilder {
    params: RmsParams,
}

impl RmsParamsBuilder {
    /// Set the delivery guarantee.
    pub fn reliability(mut self, r: Reliability) -> Self {
        self.params.reliability = r;
        self
    }

    /// Set authentication + privacy.
    pub fn security(mut self, s: SecurityParams) -> Self {
        self.params.security = s;
        self
    }

    /// Set the delay bound.
    pub fn delay(mut self, d: DelayBound) -> Self {
        self.params.delay = d;
        self
    }

    /// Set the guaranteed bit error rate.
    pub fn error_rate(mut self, e: BitErrorRate) -> Self {
        self.params.error_rate = e;
        self
    }

    /// Validate and produce the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the invariants of §2.2 are violated.
    pub fn build(self) -> Result<RmsParams, ParamError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBound;
    use dash_sim::SimDuration;

    #[test]
    fn boolean_inclusion_lattice() {
        use Authentication::*;
        use Privacy::*;
        use Reliability::*;
        assert!(Reliable.includes(Reliable));
        assert!(Reliable.includes(Unreliable));
        assert!(!Unreliable.includes(Reliable));
        assert!(Authenticated.includes(Unauthenticated));
        assert!(!Unauthenticated.includes(Authenticated));
        assert!(Private.includes(Open));
        assert!(!Open.includes(Private));
    }

    #[test]
    fn security_params_inclusion() {
        assert!(SecurityParams::FULL.includes(SecurityParams::NONE));
        assert!(SecurityParams::FULL.includes(SecurityParams::FULL));
        assert!(!SecurityParams::NONE.includes(SecurityParams::FULL));
        let auth_only = SecurityParams {
            authentication: Authentication::Authenticated,
            privacy: Privacy::Open,
        };
        let priv_only = SecurityParams {
            authentication: Authentication::Unauthenticated,
            privacy: Privacy::Private,
        };
        assert!(!auth_only.includes(priv_only));
        assert!(!priv_only.includes(auth_only));
        assert_eq!(SecurityParams::all().len(), 4);
    }

    #[test]
    fn ber_validation() {
        assert!(BitErrorRate::new(0.0).is_some());
        assert!(BitErrorRate::new(1.0).is_some());
        assert!(BitErrorRate::new(-0.1).is_none());
        assert!(BitErrorRate::new(1.1).is_none());
        assert!(BitErrorRate::new(f64::NAN).is_none());
    }

    #[test]
    fn ber_message_error_probability() {
        let ber = BitErrorRate::new(1e-6).unwrap();
        let p = ber.message_error_probability(1500);
        // 1 - (1-1e-6)^12000 ≈ 0.0119
        assert!((p - 0.0119).abs() < 0.001, "p = {p}");
        assert_eq!(BitErrorRate::ZERO.message_error_probability(1_000_000), 0.0);
    }

    #[test]
    fn params_validation() {
        let ok = RmsParams::builder(10_000, 1_500).build();
        assert!(ok.is_ok());

        let err = RmsParams::builder(1_000, 1_500).build().unwrap_err();
        assert!(matches!(err, ParamError::MessageSizeExceedsCapacity { .. }));
        assert!(err.to_string().contains("1500"));

        assert!(matches!(
            RmsParams::builder(0, 0).build().unwrap_err(),
            ParamError::ZeroCapacity
        ));
        assert!(matches!(
            RmsParams::builder(10, 0).build().unwrap_err(),
            ParamError::ZeroMessageSize
        ));
    }

    #[test]
    fn builder_sets_all_fields() {
        let p = RmsParams::builder(64 * 1024, 1024)
            .reliability(Reliability::Reliable)
            .security(SecurityParams::FULL)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(10),
                SimDuration::from_nanos(100),
            ))
            .error_rate(BitErrorRate::new(1e-9).unwrap())
            .build()
            .unwrap();
        assert_eq!(p.reliability, Reliability::Reliable);
        assert_eq!(p.security, SecurityParams::FULL);
        assert_eq!(p.capacity, 64 * 1024);
        assert_eq!(p.max_message_size, 1024);
        assert_eq!(p.error_rate.rate(), 1e-9);
    }
}
