//! Delay bounds (paper §2.2–§2.3).
//!
//! An RMS guarantees an upper bound on message delay of the form
//! `A + B·(message size)`, where the bound is *deterministic* (hard,
//! resource-reserved), *statistical* (holds with a stated probability given
//! a workload description), or *best-effort* (used only to schedule by
//! deadline; creation never rejected).

use dash_sim::time::SimDuration;

/// Statistical workload / guarantee description for a statistical bound
/// (§2.3). The paper leaves the exact parameterization open (§5); we use an
/// average offered load plus a burstiness factor, and the provider-side
/// probability that the delay bound holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatisticalSpec {
    /// Client-supplied average offered load, bytes per second.
    pub average_load: f64,
    /// Client-supplied burstiness: ratio of peak to average rate (≥ 1).
    pub burstiness: f64,
    /// Provider-guaranteed probability that the delay bound is met, in
    /// `[0, 1]`.
    pub delay_probability: f64,
}

impl StatisticalSpec {
    /// A well-formed spec.
    ///
    /// # Panics
    ///
    /// Panics if `average_load < 0`, `burstiness < 1`, or
    /// `delay_probability ∉ [0, 1]`.
    pub fn new(average_load: f64, burstiness: f64, delay_probability: f64) -> Self {
        assert!(average_load >= 0.0, "negative average load");
        assert!(burstiness >= 1.0, "burstiness must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&delay_probability),
            "delay probability must be in [0,1]"
        );
        StatisticalSpec {
            average_load,
            burstiness,
            delay_probability,
        }
    }

    /// Peak load implied by the burstiness factor, bytes per second.
    pub fn peak_load(&self) -> f64 {
        self.average_load * self.burstiness
    }
}

/// The type of a delay bound (§2.3), ordered by strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayBoundKind {
    /// Never rejected; the bound only drives deadline scheduling.
    BestEffort,
    /// Holds with `spec.delay_probability`; creation may be rejected.
    Statistical(StatisticalSpec),
    /// Hard bound backed by resource reservation; only an RMS failure can
    /// violate it.
    Deterministic,
}

impl DelayBoundKind {
    /// Strength rank: best-effort < statistical < deterministic.
    pub fn strength(&self) -> u8 {
        match self {
            DelayBoundKind::BestEffort => 0,
            DelayBoundKind::Statistical(_) => 1,
            DelayBoundKind::Deterministic => 2,
        }
    }

    /// True iff a bound of this kind satisfies a request for `requested`
    /// (§2.4 rule 3, extended to kinds: a stronger kind satisfies a weaker
    /// request; among statistical kinds the guaranteed probability must be
    /// at least the requested one).
    pub fn satisfies(&self, requested: &DelayBoundKind) -> bool {
        match (self, requested) {
            (DelayBoundKind::Statistical(actual), DelayBoundKind::Statistical(req)) => {
                actual.delay_probability >= req.delay_probability
            }
            _ => self.strength() >= requested.strength(),
        }
    }
}

/// A complete delay bound: `A + B·size` with a [`DelayBoundKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBound {
    /// The fixed component `A`.
    pub fixed: SimDuration,
    /// The per-byte component `B`.
    pub per_byte: SimDuration,
    /// Deterministic, statistical, or best-effort.
    pub kind: DelayBoundKind,
}

impl DelayBound {
    /// A deterministic bound `A + B·size`.
    pub fn deterministic(fixed: SimDuration, per_byte: SimDuration) -> Self {
        DelayBound {
            fixed,
            per_byte,
            kind: DelayBoundKind::Deterministic,
        }
    }

    /// A statistical bound with the given workload/guarantee description.
    pub fn statistical(fixed: SimDuration, per_byte: SimDuration, spec: StatisticalSpec) -> Self {
        DelayBound {
            fixed,
            per_byte,
            kind: DelayBoundKind::Statistical(spec),
        }
    }

    /// A best-effort bound; `fixed`/`per_byte` still drive deadline
    /// scheduling (§4.1).
    pub fn best_effort_with(fixed: SimDuration, per_byte: SimDuration) -> Self {
        DelayBound {
            fixed,
            per_byte,
            kind: DelayBoundKind::BestEffort,
        }
    }

    /// A best-effort bound with a generous default deadline (1 second fixed
    /// plus 10 µs/byte), for clients that do not care. The per-byte
    /// component is deliberately lenient: request bounds are *ceilings*
    /// providers must undercut, so a zero per-byte floor would demand
    /// instantaneous serialization.
    pub fn best_effort() -> Self {
        DelayBound::best_effort_with(SimDuration::from_secs(1), SimDuration::from_micros(10))
    }

    /// The bound for a message of `size` bytes: `A + B·size`, saturating.
    pub fn bound_for(&self, size: u64) -> SimDuration {
        self.fixed
            .saturating_add(self.per_byte.saturating_mul(size))
    }

    /// True iff this bound satisfies a request for `requested`: `A` and `B`
    /// no greater, and the kind at least as strong (§2.4 rule 3).
    pub fn satisfies(&self, requested: &DelayBound) -> bool {
        self.fixed <= requested.fixed
            && self.per_byte <= requested.per_byte
            && self.kind.satisfies(&requested.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn bound_for_is_affine() {
        let d = DelayBound::deterministic(ms(10), SimDuration::from_nanos(1_000));
        assert_eq!(d.bound_for(0), ms(10));
        assert_eq!(d.bound_for(1_000_000), ms(10) + SimDuration::from_secs(1));
    }

    #[test]
    fn kind_strength_order() {
        let stat = DelayBoundKind::Statistical(StatisticalSpec::new(1e6, 2.0, 0.99));
        assert!(DelayBoundKind::Deterministic.strength() > stat.strength());
        assert!(stat.strength() > DelayBoundKind::BestEffort.strength());
    }

    #[test]
    fn deterministic_satisfies_all_kinds() {
        let det = DelayBoundKind::Deterministic;
        let stat = DelayBoundKind::Statistical(StatisticalSpec::new(1e6, 2.0, 0.99));
        let be = DelayBoundKind::BestEffort;
        assert!(det.satisfies(&det));
        assert!(det.satisfies(&stat));
        assert!(det.satisfies(&be));
        assert!(!be.satisfies(&stat));
        assert!(!stat.satisfies(&det));
    }

    #[test]
    fn statistical_probability_must_cover_request() {
        let strong = DelayBoundKind::Statistical(StatisticalSpec::new(1e6, 2.0, 0.999));
        let weak = DelayBoundKind::Statistical(StatisticalSpec::new(1e6, 2.0, 0.9));
        assert!(strong.satisfies(&weak));
        assert!(!weak.satisfies(&strong));
    }

    #[test]
    fn bound_satisfaction_is_pointwise() {
        let tight = DelayBound::deterministic(ms(5), SimDuration::from_nanos(10));
        let loose = DelayBound::deterministic(ms(10), SimDuration::from_nanos(100));
        assert!(tight.satisfies(&loose));
        assert!(!loose.satisfies(&tight));
        // Mixed: smaller A but bigger B does not satisfy.
        let mixed = DelayBound::deterministic(ms(1), SimDuration::from_nanos(200));
        assert!(!mixed.satisfies(&loose));
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn statistical_spec_validates() {
        let _ = StatisticalSpec::new(1e6, 0.5, 0.99);
    }

    #[test]
    fn peak_load() {
        let s = StatisticalSpec::new(100.0, 3.0, 0.9);
        assert_eq!(s.peak_load(), 300.0);
    }
}
