//! Deterministic, fast hashing for hot-path maps.
//!
//! The per-packet maps (network RMS tables, route tables, subtransport
//! stream tables, session tables) are keyed by small integers and looked
//! up several times per simulated event. `std`'s default SipHash is
//! DoS-resistant but costs tens of nanoseconds per lookup, which is pure
//! overhead in a closed simulation: every key is generated internally, so
//! there is no adversarial input to defend against.
//!
//! [`DetHasher`] is a multiply–rotate mixer in the FxHash family: each
//! word is folded into the state with an xor, a multiply by a
//! randomly-chosen odd constant, and a rotate to move the well-mixed high
//! bits down to where `HashMap` reads them. Crucially it is *unseeded*,
//! so iteration order is identical across runs and processes — the
//! determinism suite already proves no observable behavior depends on map
//! order, and a fixed hasher keeps it that way by construction.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd 64-bit multiplier (high bits of 2^64 / phi); any odd constant with
/// a roughly even bit pattern works — this one is the classic Fibonacci
/// hashing multiplier.
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Deterministic word-at-a-time hasher for internally-generated keys.
///
/// Not DoS-resistant; never use it on keys an external party controls.
#[derive(Clone, Default)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(MIX).rotate_left(26);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiply pushes entropy into the high bits; the xor-shift folds
        // it back down into the low bits `HashMap` masks with. Without the
        // fold, consecutive ids visibly cluster in small tables.
        let x = self.state.wrapping_mul(MIX);
        x ^ (x >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` with the deterministic fast hasher. Drop-in for hot-path
/// tables keyed by simulator-generated ids.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// `HashSet` companion to [`DetHashMap`].
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<DetHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        BuildHasherDefault::<DetHasher>::default().hash_one(v)
    }

    #[test]
    fn identical_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(3u32, 7u32)), hash_of(&(3u32, 7u32)));
    }

    #[test]
    fn small_keys_spread() {
        // Consecutive small ids (the common key shape) must not cluster
        // in the low bits that a power-of-two table actually uses. A
        // perfectly random function maps 128 balls into 128 bins with
        // ~81 distinct outcomes (128·(1−e⁻¹)); demand at least 70.
        let mut low7 = std::collections::HashSet::new();
        for id in 0u64..128 {
            low7.insert(hash_of(&id) & 0x7f);
        }
        assert!(
            low7.len() > 70,
            "only {} distinct low-7-bit values",
            low7.len()
        );
    }

    #[test]
    fn byte_slices_respect_boundaries() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn map_iteration_order_is_stable() {
        let build = || {
            let mut m = DetHashMap::default();
            for id in 0u64..64 {
                m.insert(id, id * 3);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
