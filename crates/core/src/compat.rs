//! Parameter compatibility and creation-time negotiation (paper §2.4).
//!
//! "A set of actual RMS parameters is said to be *compatible* with a set of
//! request parameters if (1) the actual reliability and security properties
//! include those requested; (2) the actual capacity and maximum message size
//! parameters are no less than those requested; and (3) the actual delay
//! bound and error rate parameters are no greater than those requested."
//!
//! A creation request carries a *desired* and an *acceptable* parameter set;
//! the actual parameters must be compatible with the acceptable set, and the
//! provider matches the desired set as closely as possible.

use std::fmt;

use dash_sim::time::SimDuration;

use crate::delay::{DelayBound, DelayBoundKind};
use crate::params::{BitErrorRate, ParamError, Reliability, RmsParams, SecurityParams};

/// True iff `actual` is compatible with `requested` per §2.4.
pub fn is_compatible(actual: &RmsParams, requested: &RmsParams) -> bool {
    actual.reliability.includes(requested.reliability)
        && actual.security.includes(requested.security)
        && actual.capacity >= requested.capacity
        && actual.max_message_size >= requested.max_message_size
        && actual.delay.satisfies(&requested.delay)
        && actual.error_rate <= requested.error_rate
}

/// An RMS creation request: desired and acceptable parameter sets (§2.4).
#[derive(Debug, Clone, PartialEq)]
pub struct RmsRequest {
    /// What the client would ideally get.
    pub desired: RmsParams,
    /// The weakest parameters the client will accept. The result is
    /// guaranteed compatible with this set.
    pub acceptable: RmsParams,
}

impl RmsRequest {
    /// A request whose desired and acceptable sets are identical: "give me
    /// exactly this or reject".
    pub fn exact(params: RmsParams) -> Self {
        RmsRequest {
            desired: params.clone(),
            acceptable: params,
        }
    }

    /// Construct and sanity-check a request.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError::Invalid`] if either set fails
    /// [`RmsParams::validate`], or [`RequestError::DesiredWeakerThanAcceptable`]
    /// if the desired set is not itself compatible with the acceptable set
    /// (the desired parameters must be at least as strong as the floor the
    /// client will accept).
    pub fn new(desired: RmsParams, acceptable: RmsParams) -> Result<Self, RequestError> {
        desired.validate().map_err(RequestError::Invalid)?;
        acceptable.validate().map_err(RequestError::Invalid)?;
        if !is_compatible(&desired, &acceptable) {
            return Err(RequestError::DesiredWeakerThanAcceptable);
        }
        Ok(RmsRequest {
            desired,
            acceptable,
        })
    }
}

/// Why an [`RmsRequest`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// One of the parameter sets violates its own invariants.
    Invalid(ParamError),
    /// The desired set is weaker than the acceptable floor.
    DesiredWeakerThanAcceptable,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Invalid(e) => write!(f, "invalid parameter set: {e}"),
            RequestError::DesiredWeakerThanAcceptable => {
                write!(
                    f,
                    "desired parameters are not compatible with the acceptable floor"
                )
            }
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Invalid(e) => Some(e),
            RequestError::DesiredWeakerThanAcceptable => None,
        }
    }
}

/// Performance limits a provider can offer for one (reliability, security)
/// combination (paper §3.1: "for each combination of security and
/// reliability parameters, the limits of the network's performance
/// parameters for that combination").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfLimits {
    /// Smallest achievable fixed delay component `A`.
    pub min_fixed_delay: SimDuration,
    /// Smallest achievable per-byte delay component `B`.
    pub min_per_byte_delay: SimDuration,
    /// Largest supported capacity, bytes.
    pub max_capacity: u64,
    /// Largest supported message size, bytes.
    pub max_message_size: u64,
    /// Smallest achievable bit error rate.
    pub min_error_rate: BitErrorRate,
    /// Strongest supported delay-bound kind (by
    /// [`DelayBoundKind::strength`] rank).
    pub max_kind_strength: u8,
}

impl PerfLimits {
    /// True iff parameters within these limits could satisfy `floor` (the
    /// acceptable set of a request) for this combination.
    pub fn can_satisfy(&self, floor: &RmsParams) -> bool {
        self.min_fixed_delay <= floor.delay.fixed
            && self.min_per_byte_delay <= floor.delay.per_byte
            && self.max_capacity >= floor.capacity
            && self.max_message_size >= floor.max_message_size
            && self.min_error_rate <= floor.error_rate
            && self.max_kind_strength >= floor.delay.kind.strength()
    }
}

/// A provider's offer table: what it can do for each reliability × security
/// combination. Unsupported combinations are simply absent ("this may be
/// zero if the combination cannot be directly supported", §3.1).
#[derive(Debug, Clone, Default)]
pub struct ServiceTable {
    entries: Vec<(Reliability, SecurityParams, PerfLimits)>,
}

impl ServiceTable {
    /// An empty table (supports nothing).
    pub fn new() -> Self {
        ServiceTable::default()
    }

    /// Declare support for a combination. Later entries for the same
    /// combination replace earlier ones.
    pub fn support(
        &mut self,
        reliability: Reliability,
        security: SecurityParams,
        limits: PerfLimits,
    ) -> &mut Self {
        self.entries
            .retain(|(r, s, _)| !(*r == reliability && *s == security));
        self.entries.push((reliability, security, limits));
        self
    }

    /// Limits for an exact combination, if supported.
    pub fn limits(
        &self,
        reliability: Reliability,
        security: SecurityParams,
    ) -> Option<&PerfLimits> {
        self.entries
            .iter()
            .find(|(r, s, _)| *r == reliability && *s == security)
            .map(|(_, _, l)| l)
    }

    /// Iterate over all supported combinations.
    pub fn iter(&self) -> impl Iterator<Item = &(Reliability, SecurityParams, PerfLimits)> {
        self.entries.iter()
    }
}

/// Why negotiation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegotiationError {
    /// No supported (reliability, security) combination includes the
    /// acceptable set's required properties.
    UnsupportedCombination,
    /// A combination exists but its performance limits cannot reach the
    /// acceptable floor.
    PerformanceUnreachable,
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::UnsupportedCombination => {
                write!(
                    f,
                    "no supported reliability/security combination covers the request"
                )
            }
            NegotiationError::PerformanceUnreachable => {
                write!(
                    f,
                    "supported combinations cannot reach the acceptable performance floor"
                )
            }
        }
    }
}

impl std::error::Error for NegotiationError {}

/// Negotiate actual parameters for `request` against a provider's
/// [`ServiceTable`] (§2.4: "The actual parameters ... must be compatible
/// with the request's acceptable parameters. ... The RMS provider tries to
/// match the desired parameters as closely as possible.").
///
/// The provider picks, among supported combinations whose properties include
/// the acceptable floor and whose limits can reach it, the combination
/// closest to the desired one (exact match first, then the fewest extra
/// properties). Numeric parameters are then set to the desired values
/// clamped into the combination's limits.
///
/// # Errors
///
/// [`NegotiationError`] if no combination works.
pub fn negotiate(
    table: &ServiceTable,
    request: &RmsRequest,
) -> Result<RmsParams, NegotiationError> {
    let floor = &request.acceptable;
    let want = &request.desired;

    let mut candidates: Vec<(u32, RmsParams)> = Vec::new();
    let mut saw_combination = false;
    for (rel, sec, limits) in table.iter() {
        if !(rel.includes(floor.reliability) && sec.includes(floor.security)) {
            continue;
        }
        saw_combination = true;
        if !limits.can_satisfy(floor) {
            continue;
        }

        // Clamp desired numerics into this combination's limits, then onto
        // the acceptable floor where the desire overshoots what is allowed.
        let capacity = want.capacity.min(limits.max_capacity).max(floor.capacity);
        let max_message_size = want
            .max_message_size
            .min(limits.max_message_size)
            .min(capacity)
            .max(floor.max_message_size);
        let fixed = want.delay.fixed.max(limits.min_fixed_delay);
        let per_byte = want.delay.per_byte.max(limits.min_per_byte_delay);
        let kind = if want.delay.kind.strength() <= limits.max_kind_strength {
            want.delay.kind
        } else if floor.delay.kind.strength() <= limits.max_kind_strength {
            // Degrade to the strongest supported kind that still covers the
            // floor; statistical specs carry the desired description.
            match (limits.max_kind_strength, &want.delay.kind) {
                (1, DelayBoundKind::Deterministic) => {
                    DelayBoundKind::Statistical(crate::delay::StatisticalSpec::new(0.0, 1.0, 1.0))
                }
                (0, _) => DelayBoundKind::BestEffort,
                (_, k) => *k,
            }
        } else {
            continue;
        };
        let error_rate = if want.error_rate >= limits.min_error_rate {
            want.error_rate
        } else {
            limits.min_error_rate
        };

        let actual = RmsParams {
            reliability: *rel,
            security: *sec,
            capacity,
            max_message_size,
            delay: DelayBound {
                fixed,
                per_byte,
                kind,
            },
            error_rate,
        };
        if actual.validate().is_err() || !is_compatible(&actual, floor) {
            continue;
        }

        // Closeness score: prefer the exact desired combination, then the
        // fewest gratuitous extra properties (each costs provider work).
        let extra = u32::from(*rel != want.reliability)
            + u32::from(sec.authentication != want.security.authentication)
            + u32::from(sec.privacy != want.security.privacy);
        candidates.push((extra, actual));
    }

    candidates
        .into_iter()
        .min_by_key(|(score, _)| *score)
        .map(|(_, p)| p)
        .ok_or(if saw_combination {
            NegotiationError::PerformanceUnreachable
        } else {
            NegotiationError::UnsupportedCombination
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBound;
    use dash_sim::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn base_params() -> RmsParams {
        RmsParams::builder(10_000, 1_000)
            .delay(DelayBound::best_effort_with(ms(100), SimDuration::ZERO))
            .error_rate(BitErrorRate::new(1e-3).unwrap())
            .build()
            .unwrap()
    }

    fn generous_limits() -> PerfLimits {
        PerfLimits {
            min_fixed_delay: ms(1),
            min_per_byte_delay: SimDuration::ZERO,
            max_capacity: 1 << 20,
            max_message_size: 64 * 1024,
            min_error_rate: BitErrorRate::new(1e-9).unwrap(),
            max_kind_strength: 2,
        }
    }

    #[test]
    fn identical_params_are_compatible() {
        let p = base_params();
        assert!(is_compatible(&p, &p));
    }

    #[test]
    fn stronger_params_are_compatible_weaker_are_not() {
        let req = base_params();
        let mut strong = req.clone();
        strong.reliability = Reliability::Reliable;
        strong.security = SecurityParams::FULL;
        strong.capacity *= 2;
        strong.delay.fixed = ms(50);
        strong.error_rate = BitErrorRate::ZERO;
        assert!(is_compatible(&strong, &req));
        assert!(!is_compatible(&req, &strong));
    }

    #[test]
    fn smaller_capacity_is_incompatible() {
        let req = base_params();
        let mut actual = req.clone();
        actual.capacity = req.capacity - 1;
        assert!(!is_compatible(&actual, &req));
    }

    #[test]
    fn request_validates_desired_vs_acceptable() {
        let acceptable = base_params();
        let mut desired = acceptable.clone();
        desired.delay.fixed = ms(10); // stronger — fine
        assert!(RmsRequest::new(desired, acceptable.clone()).is_ok());

        let mut weak_desired = acceptable.clone();
        weak_desired.delay.fixed = ms(200); // weaker than floor — invalid
        assert_eq!(
            RmsRequest::new(weak_desired, acceptable).unwrap_err(),
            RequestError::DesiredWeakerThanAcceptable
        );
    }

    #[test]
    fn negotiate_exact_combination() {
        let mut table = ServiceTable::new();
        table.support(
            Reliability::Unreliable,
            SecurityParams::NONE,
            generous_limits(),
        );
        let req = RmsRequest::exact(base_params());
        let actual = negotiate(&table, &req).unwrap();
        assert!(is_compatible(&actual, &req.acceptable));
        assert_eq!(actual.capacity, 10_000);
        assert_eq!(actual.reliability, Reliability::Unreliable);
    }

    #[test]
    fn negotiate_rejects_unsupported_security() {
        let mut table = ServiceTable::new();
        table.support(
            Reliability::Unreliable,
            SecurityParams::NONE,
            generous_limits(),
        );
        let mut p = base_params();
        p.security = SecurityParams::FULL;
        let req = RmsRequest::exact(p);
        assert_eq!(
            negotiate(&table, &req).unwrap_err(),
            NegotiationError::UnsupportedCombination
        );
    }

    #[test]
    fn negotiate_rejects_unreachable_performance() {
        let mut table = ServiceTable::new();
        let mut limits = generous_limits();
        limits.min_fixed_delay = ms(500); // cannot reach the 100ms floor
        table.support(Reliability::Unreliable, SecurityParams::NONE, limits);
        let req = RmsRequest::exact(base_params());
        assert_eq!(
            negotiate(&table, &req).unwrap_err(),
            NegotiationError::PerformanceUnreachable
        );
    }

    #[test]
    fn negotiate_prefers_exact_combination_over_extra_security() {
        let mut table = ServiceTable::new();
        table.support(
            Reliability::Unreliable,
            SecurityParams::NONE,
            generous_limits(),
        );
        table.support(
            Reliability::Unreliable,
            SecurityParams::FULL,
            generous_limits(),
        );
        let req = RmsRequest::exact(base_params());
        let actual = negotiate(&table, &req).unwrap();
        assert_eq!(actual.security, SecurityParams::NONE);
    }

    #[test]
    fn negotiate_escalates_when_exact_combination_missing() {
        // Provider only offers a fully secure service; an insecure request
        // still succeeds because FULL includes NONE.
        let mut table = ServiceTable::new();
        table.support(
            Reliability::Unreliable,
            SecurityParams::FULL,
            generous_limits(),
        );
        let req = RmsRequest::exact(base_params());
        let actual = negotiate(&table, &req).unwrap();
        assert_eq!(actual.security, SecurityParams::FULL);
        assert!(is_compatible(&actual, &req.acceptable));
    }

    #[test]
    fn negotiate_clamps_desired_delay_to_provider_floor() {
        let mut table = ServiceTable::new();
        let mut limits = generous_limits();
        limits.min_fixed_delay = ms(20);
        table.support(Reliability::Unreliable, SecurityParams::NONE, limits);

        let acceptable = base_params(); // 100ms floor
        let mut desired = acceptable.clone();
        desired.delay.fixed = ms(5); // more than provider can do
        let req = RmsRequest::new(desired, acceptable).unwrap();
        let actual = negotiate(&table, &req).unwrap();
        assert_eq!(actual.delay.fixed, ms(20));
    }

    #[test]
    fn service_table_replaces_duplicates() {
        let mut table = ServiceTable::new();
        let mut l = generous_limits();
        table.support(Reliability::Reliable, SecurityParams::NONE, l);
        l.max_capacity = 5;
        table.support(Reliability::Reliable, SecurityParams::NONE, l);
        assert_eq!(
            table
                .limits(Reliability::Reliable, SecurityParams::NONE)
                .unwrap()
                .max_capacity,
            5
        );
        assert_eq!(table.iter().count(), 1);
    }
}
