//! The capacity/delay bandwidth identity (paper §2.2).
//!
//! "If `M` is the maximum message size, `D` is the maximum delay of a
//! message of size `M`, and `C` is the RMS capacity, then a client can send
//! a message of size `M` every `D·M/C` seconds without violating the
//! capacity rule ... This will provide a bandwidth of about `C/D` bytes per
//! second."
//!
//! These helpers compute the implied sustainable rate and the matching send
//! interval; experiment `e5_capacity` checks the identity end to end.

use dash_sim::time::SimDuration;

use crate::params::RmsParams;

/// The guaranteed-sustainable bandwidth implied by an RMS's parameters:
/// `C / D` bytes per second, where `D = delay bound of a maximum-size
/// message`. Returns 0.0 if the delay bound is zero (instantaneous delivery
/// means capacity never accumulates — effectively unbounded, but we report 0
/// to flag the degenerate configuration).
pub fn implied_bandwidth(params: &RmsParams) -> f64 {
    let d = params
        .delay
        .bound_for(params.max_message_size)
        .as_secs_f64();
    if d <= 0.0 {
        0.0
    } else {
        params.capacity as f64 / d
    }
}

/// The interval `D·M/C` at which maximum-size messages can be sent without
/// ever exceeding the capacity `C` of outstanding data.
pub fn steady_send_interval(params: &RmsParams) -> SimDuration {
    send_interval_for(params, params.max_message_size)
}

/// The interval `D(M)·M/C` for messages of a particular size `M ≤ max`.
/// At this spacing, at most `C/M` messages (total size `C`) can be
/// outstanding, because everything older than `D(M)` has been delivered.
pub fn send_interval_for(params: &RmsParams, message_size: u64) -> SimDuration {
    let d = params.delay.bound_for(message_size);
    if params.capacity == 0 {
        return SimDuration::MAX;
    }
    // D * M / C with integer nanosecond arithmetic via u128.
    let ns = d.as_nanos() as u128 * message_size as u128 / params.capacity as u128;
    SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
}

/// The maximum number of messages of size `M` that can be outstanding at
/// once under the capacity rule (`⌊C/M⌋`), i.e. the window size a transport
/// protocol gets "for free" from the RMS parameters (§5: "fixed window size
/// determined by RMS capacity").
pub fn window_messages(params: &RmsParams, message_size: u64) -> u64 {
    if message_size == 0 {
        return u64::MAX;
    }
    params.capacity / message_size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBound;
    use crate::params::RmsParams;

    fn params(capacity: u64, mms: u64, fixed_ms: u64, per_byte_ns: u64) -> RmsParams {
        RmsParams::builder(capacity, mms)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(fixed_ms),
                SimDuration::from_nanos(per_byte_ns),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn implied_bandwidth_is_c_over_d() {
        // C = 100_000 bytes, D(1000) = 10ms -> 10 MB/s.
        let p = params(100_000, 1_000, 10, 0);
        assert!((implied_bandwidth(&p) - 1e7).abs() < 1.0);
    }

    #[test]
    fn send_interval_identity() {
        // D = 10ms, M = 1000, C = 100_000 -> interval = 0.1ms.
        let p = params(100_000, 1_000, 10, 0);
        assert_eq!(steady_send_interval(&p), SimDuration::from_micros(100));
        // Bandwidth = M / interval = C / D.
        let bw = 1_000.0 / steady_send_interval(&p).as_secs_f64();
        assert!((bw - implied_bandwidth(&p)).abs() < 1.0);
    }

    #[test]
    fn interval_respects_capacity_rule() {
        let p = params(10_000, 1_000, 5, 0);
        let interval = steady_send_interval(&p);
        let d = p.delay.bound_for(p.max_message_size);
        // Messages sent in the last D seconds: D / interval; bytes = that * M
        // must not exceed C.
        let outstanding = (d.as_nanos() / interval.as_nanos()) * p.max_message_size;
        assert!(outstanding <= p.capacity);
        // And the spacing is tight: one more message would overflow.
        let with_one_more = outstanding + p.max_message_size;
        assert!(with_one_more > p.capacity);
    }

    #[test]
    fn per_byte_component_participates() {
        // B = 1us/byte, A = 0: D(1000) = 1ms. C = 2000 -> window of 2 msgs.
        let p = params(2_000, 1_000, 0, 1_000);
        assert_eq!(window_messages(&p, 1_000), 2);
        assert_eq!(send_interval_for(&p, 1_000), SimDuration::from_micros(500));
    }

    #[test]
    fn degenerate_cases() {
        let p = params(1_000, 100, 0, 0); // zero delay bound
        assert_eq!(implied_bandwidth(&p), 0.0);
        assert_eq!(steady_send_interval(&p), SimDuration::ZERO);
        assert_eq!(window_messages(&p, 0), u64::MAX);
    }

    #[test]
    fn smaller_messages_send_proportionally_more_often() {
        let p = params(100_000, 1_000, 10, 0);
        let full = send_interval_for(&p, 1_000);
        let half = send_interval_for(&p, 500);
        assert_eq!(full.as_nanos(), 2 * half.as_nanos());
    }
}
