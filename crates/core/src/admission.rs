//! Admission-control mathematics (paper §2.3).
//!
//! Pure decision functions used by the network layer when a new RMS is
//! requested:
//!
//! - **Deterministic** bounds reserve worst-case bandwidth (`C/D`, see
//!   [`crate::bandwidth`]) and buffer space (`C` bytes); a request is
//!   rejected "if its worst-case demands cannot be met with free resources".
//! - **Statistical** bounds are tested against an M/M/1 approximation of the
//!   queueing delay at the bottleneck: the request is rejected if the
//!   probability of exceeding the delay bound is higher than the requested
//!   `delay_probability` allows, or if expected loss exceeds the error-rate
//!   budget.
//! - **Best-effort** requests are never rejected.
//!
//! The statistical model is our parameterization of an open question the
//! paper lists in §5 (see DESIGN.md interpretation note 3).

use crate::bandwidth::implied_bandwidth;
use crate::delay::{DelayBoundKind, StatisticalSpec};
use crate::params::RmsParams;

/// A resource ledger for one scheduled resource (an outbound link/interface).
///
/// Tracks deterministic reservations and statistical loads separately;
/// best-effort traffic is not accounted.
#[derive(Debug, Clone)]
pub struct ResourceLedger {
    /// Usable bandwidth of the resource, bytes per second.
    capacity_bps: f64,
    /// Buffer space available for reservation, bytes.
    buffer_bytes: u64,
    /// Fraction of bandwidth that deterministic reservations may consume
    /// (the rest is head-room for statistical and best-effort traffic).
    deterministic_share: f64,
    reserved_bps: f64,
    reserved_buffer: u64,
    statistical_load_bps: f64,
}

/// Outcome of an admission test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The request fits; resources were reserved (deterministic) or the
    /// load was recorded (statistical).
    Admitted,
    /// The request does not fit.
    Denied {
        /// Human-readable explanation.
        detail: String,
    },
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted)
    }
}

impl ResourceLedger {
    /// A ledger for a resource with the given bandwidth and buffer pool.
    /// `deterministic_share` defaults to 0.9 via [`ResourceLedger::new`].
    pub fn with_share(capacity_bps: f64, buffer_bytes: u64, deterministic_share: f64) -> Self {
        assert!(capacity_bps > 0.0, "resource bandwidth must be positive");
        assert!(
            (0.0..=1.0).contains(&deterministic_share),
            "share must be in [0,1]"
        );
        ResourceLedger {
            capacity_bps,
            buffer_bytes,
            deterministic_share,
            reserved_bps: 0.0,
            reserved_buffer: 0,
            statistical_load_bps: 0.0,
        }
    }

    /// A ledger reserving at most 90% of bandwidth deterministically.
    pub fn new(capacity_bps: f64, buffer_bytes: u64) -> Self {
        ResourceLedger::with_share(capacity_bps, buffer_bytes, 0.9)
    }

    /// Bandwidth currently reserved by deterministic RMSs, bytes/s.
    pub fn reserved_bps(&self) -> f64 {
        self.reserved_bps
    }

    /// Buffer bytes currently reserved.
    pub fn reserved_buffer(&self) -> u64 {
        self.reserved_buffer
    }

    /// Statistical average load currently admitted, bytes/s.
    pub fn statistical_load_bps(&self) -> f64 {
        self.statistical_load_bps
    }

    /// Residual deterministic admission headroom, bytes/s: how much more
    /// implied bandwidth this resource could still reserve before the
    /// deterministic share is exhausted. This is what link-state
    /// advertisements sample so remote hosts can rank alternate paths by
    /// their chance of admitting a new RMS.
    pub fn headroom_bps(&self) -> f64 {
        (self.capacity_bps * self.deterministic_share - self.reserved_bps).max(0.0)
    }

    /// Residual buffer headroom, bytes: capacity left before buffer
    /// reservations are exhausted.
    pub fn headroom_buffer(&self) -> u64 {
        self.buffer_bytes.saturating_sub(self.reserved_buffer)
    }

    /// Total average utilization (deterministic + statistical) in `[0, ∞)`.
    pub fn utilization(&self) -> f64 {
        (self.reserved_bps + self.statistical_load_bps) / self.capacity_bps
    }

    /// The deterministic reservation budget (capacity × share), bytes/s.
    /// Exposed so emission sites can annotate admission events with the
    /// invariant an external oracle checks: `reserved_bps() <=`
    /// `deterministic_budget_bps()` at all times.
    pub fn deterministic_budget_bps(&self) -> f64 {
        self.capacity_bps * self.deterministic_share
    }

    /// Record a reservation *without* any capacity check. This exists only
    /// as a fault-seeding hook for the dash-check oracle (gated behind
    /// `NetConfig::debug_force_admission`): it deliberately lets the ledger
    /// oversubscribe so the checker can prove it notices.
    pub fn force_admit(&mut self, params: &RmsParams) -> Admission {
        match &params.delay.kind {
            DelayBoundKind::Deterministic => {
                self.reserved_bps += implied_bandwidth(params);
                self.reserved_buffer += params.capacity;
            }
            DelayBoundKind::Statistical(spec) => {
                self.statistical_load_bps += spec.average_load;
            }
            DelayBoundKind::BestEffort => {}
        }
        Admission::Admitted
    }

    /// Test (and on success record) a new RMS against this resource.
    pub fn admit(&mut self, params: &RmsParams) -> Admission {
        match &params.delay.kind {
            DelayBoundKind::Deterministic => self.admit_deterministic(params),
            DelayBoundKind::Statistical(spec) => self.admit_statistical(params, *spec),
            DelayBoundKind::BestEffort => Admission::Admitted,
        }
    }

    /// Release the resources of a previously admitted RMS. Callers must
    /// pass the same parameters that were admitted.
    pub fn release(&mut self, params: &RmsParams) {
        match &params.delay.kind {
            DelayBoundKind::Deterministic => {
                self.reserved_bps = (self.reserved_bps - implied_bandwidth(params)).max(0.0);
                self.reserved_buffer = self.reserved_buffer.saturating_sub(params.capacity);
            }
            DelayBoundKind::Statistical(spec) => {
                self.statistical_load_bps =
                    (self.statistical_load_bps - spec.average_load).max(0.0);
            }
            DelayBoundKind::BestEffort => {}
        }
    }

    fn admit_deterministic(&mut self, params: &RmsParams) -> Admission {
        let demand = implied_bandwidth(params);
        let budget = self.capacity_bps * self.deterministic_share;
        if self.reserved_bps + demand > budget {
            return Admission::Denied {
                detail: format!(
                    "deterministic bandwidth exhausted: reserved {:.0} + demand {:.0} > budget {:.0} B/s",
                    self.reserved_bps, demand, budget
                ),
            };
        }
        if self.reserved_buffer + params.capacity > self.buffer_bytes {
            return Admission::Denied {
                detail: format!(
                    "buffer space exhausted: reserved {} + demand {} > {} bytes",
                    self.reserved_buffer, params.capacity, self.buffer_bytes
                ),
            };
        }
        self.reserved_bps += demand;
        self.reserved_buffer += params.capacity;
        Admission::Admitted
    }

    fn admit_statistical(&mut self, params: &RmsParams, spec: StatisticalSpec) -> Admission {
        // Free average bandwidth after deterministic reservations.
        let mu = self.capacity_bps - self.reserved_bps;
        let lambda = self.statistical_load_bps + spec.average_load;
        if lambda >= mu {
            return Admission::Denied {
                detail: format!(
                    "statistical load {lambda:.0} B/s would saturate free bandwidth {mu:.0} B/s"
                ),
            };
        }
        // M/M/1 tail approximation with "customers" of mean size one
        // maximum-length message: P(delay > t) ≈ ρ·exp(-(μ-λ)·t / m).
        let m = params.max_message_size.max(1) as f64;
        let rho = lambda / mu;
        let t = params
            .delay
            .bound_for(params.max_message_size)
            .as_secs_f64();
        let p_exceed = rho * (-(mu - lambda) * t / m).exp();
        let p_allowed = 1.0 - spec.delay_probability;
        if p_exceed > p_allowed {
            return Admission::Denied {
                detail: format!(
                    "expected P(delay > bound) = {p_exceed:.3e} exceeds allowance {p_allowed:.3e}"
                ),
            };
        }
        // Expected overflow loss: probability the queue exceeds the buffer,
        // ρ^(buffer/m) under the same approximation; must fit the
        // error-rate budget expressed per message.
        let buffer_msgs = (self.buffer_bytes.saturating_sub(self.reserved_buffer)) as f64 / m;
        let p_loss = rho.powf(buffer_msgs.max(1.0));
        let loss_budget = params
            .error_rate
            .message_error_probability(params.max_message_size)
            .max(1e-12);
        if p_loss > loss_budget {
            return Admission::Denied {
                detail: format!(
                    "expected overflow loss {p_loss:.3e} exceeds error-rate budget {loss_budget:.3e}"
                ),
            };
        }
        self.statistical_load_bps += spec.average_load;
        Admission::Admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBound;
    use crate::params::{BitErrorRate, RmsParams};
    use dash_sim::SimDuration;

    fn det_params(capacity: u64, mms: u64, delay_ms: u64) -> RmsParams {
        RmsParams::builder(capacity, mms)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(delay_ms),
                SimDuration::ZERO,
            ))
            .build()
            .unwrap()
    }

    fn stat_params(load: f64, delay_ms: u64, prob: f64) -> RmsParams {
        RmsParams::builder(100_000, 1_000)
            .delay(DelayBound::statistical(
                SimDuration::from_millis(delay_ms),
                SimDuration::ZERO,
                StatisticalSpec::new(load, 2.0, prob),
            ))
            .error_rate(BitErrorRate::new(1e-5).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn headroom_tracks_reservations() {
        // 1 MB/s link, 90% reservable, 10 KB of buffer.
        let mut ledger = ResourceLedger::new(1e6, 10_000);
        assert_eq!(ledger.headroom_bps(), 0.9e6);
        assert_eq!(ledger.headroom_buffer(), 10_000);
        // C = 100_000, D = 1s -> 1e5 B/s implied bandwidth... but buffer
        // limits first: use a small C.
        let p = det_params(1_000, 1_000, 1_000);
        assert!(ledger.admit(&p).is_admitted());
        assert_eq!(ledger.headroom_bps(), 0.9e6 - 1_000.0);
        assert_eq!(ledger.headroom_buffer(), 9_000);
        ledger.release(&p);
        assert_eq!(ledger.headroom_bps(), 0.9e6);
        assert_eq!(ledger.headroom_buffer(), 10_000);
    }

    #[test]
    fn best_effort_always_admitted() {
        let mut ledger = ResourceLedger::new(1e6, 10_000);
        let p = RmsParams::builder(1 << 30, 1 << 20).build().unwrap();
        for _ in 0..100 {
            assert!(ledger.admit(&p).is_admitted());
        }
        assert_eq!(ledger.reserved_bps(), 0.0);
    }

    #[test]
    fn deterministic_reserves_and_exhausts_bandwidth() {
        // 1 MB/s link, 90% reservable. Each RMS: C = 100_000, D = 1s -> 1e5 B/s.
        let mut ledger = ResourceLedger::new(1e6, u64::MAX);
        let p = det_params(100_000, 1_000, 1_000);
        let mut admitted = 0;
        loop {
            if !ledger.admit(&p).is_admitted() {
                break;
            }
            admitted += 1;
            assert!(admitted < 100, "never denied");
        }
        assert_eq!(admitted, 9); // 9 * 1e5 = 9e5 = 90% of 1e6
        match ledger.admit(&p) {
            Admission::Denied { detail } => assert!(detail.contains("bandwidth")),
            Admission::Admitted => panic!("should deny"),
        }
    }

    #[test]
    fn deterministic_buffer_exhaustion() {
        let mut ledger = ResourceLedger::new(1e9, 150_000);
        let p = det_params(100_000, 1_000, 1_000);
        assert!(ledger.admit(&p).is_admitted());
        match ledger.admit(&p) {
            Admission::Denied { detail } => assert!(detail.contains("buffer")),
            Admission::Admitted => panic!("should deny on buffers"),
        }
    }

    #[test]
    fn release_frees_deterministic_resources() {
        let mut ledger = ResourceLedger::new(1e6, 200_000);
        let p = det_params(100_000, 1_000, 1_000);
        assert!(ledger.admit(&p).is_admitted());
        let before = ledger.reserved_bps();
        ledger.release(&p);
        assert_eq!(ledger.reserved_bps(), before - implied_bandwidth(&p));
        assert_eq!(ledger.reserved_buffer(), 0);
    }

    #[test]
    fn force_admit_oversubscribes_visibly() {
        // The fault-seeding hook must skip the checks but still record the
        // reservation, so the oversubscription is observable in the ledger.
        let mut ledger = ResourceLedger::new(1e6, u64::MAX);
        let p = det_params(2_000_000, 1_000, 1_000); // 2e6 B/s > 9e5 budget
        assert!(!ledger.admit(&p).is_admitted());
        assert!(ledger.force_admit(&p).is_admitted());
        assert!(ledger.reserved_bps() > ledger.deterministic_budget_bps());
        assert_eq!(ledger.deterministic_budget_bps(), 0.9e6);
    }

    #[test]
    fn statistical_rejects_saturation() {
        let mut ledger = ResourceLedger::new(1e6, 1_000_000);
        // 600 KB/s average load twice would exceed 1 MB/s.
        let p = stat_params(6e5, 100, 0.9);
        assert!(ledger.admit(&p).is_admitted());
        assert!(!ledger.admit(&p).is_admitted());
        ledger.release(&p);
        assert!(ledger.admit(&p).is_admitted());
    }

    #[test]
    fn statistical_rejects_tight_probability_at_high_load() {
        let mut ledger = ResourceLedger::new(1e6, 1_000_000);
        // Fill to 80% load.
        assert!(ledger.admit(&stat_params(8e5, 100, 0.5)).is_admitted());
        // Now ask for a nearly-sure 1ms bound at high utilization: the tail
        // ρ·exp(-(μ-λ)t/m) is ~0.8·exp(-0.2) ≈ 0.65 > 0.001 allowed.
        let tight = stat_params(1e5, 1, 0.999);
        assert!(!ledger.admit(&tight).is_admitted());
    }

    #[test]
    fn statistical_admits_loose_probability() {
        let mut ledger = ResourceLedger::new(1e6, 1_000_000);
        // Low load, generous bound, weak probability -> admit.
        let loose = stat_params(1e4, 500, 0.5);
        assert!(ledger.admit(&loose).is_admitted());
        assert!(ledger.utilization() > 0.0);
    }

    #[test]
    fn deterministic_and_statistical_interact() {
        let mut ledger = ResourceLedger::new(1e6, 10_000_000);
        // Deterministic traffic takes 5e5 B/s...
        assert!(ledger
            .admit(&det_params(500_000, 1_000, 1_000))
            .is_admitted());
        // ...leaving 5e5 of μ; 6e5 statistical load must now be refused.
        assert!(!ledger.admit(&stat_params(6e5, 100, 0.9)).is_admitted());
        assert!(ledger.admit(&stat_params(3e5, 100, 0.5)).is_admitted());
    }
}
