//! Messages and labels (paper §2).
//!
//! "Messages are untyped byte arrays. They may in addition have source and
//! target labels identifying the sender and receiver."

use std::fmt;

use bytes::Bytes;

use crate::wire::WireMsg;

/// An opaque identity label for a sender or receiver (§2). In DASH these
/// name processes/ports; the numeric value is assigned by the naming layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(pub u64);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label:{}", self.0)
    }
}

/// An RMS message: an untyped byte array with optional source/target labels.
///
/// The body is a scatter-gather [`WireMsg`] — an ordered list of
/// reference-counted [`Bytes`] segments — so protocol layers can wrap
/// headers around a payload, retransmit, piggyback, fragment and
/// reassemble without ever copying message bytes.
#[derive(Debug, Clone)]
pub struct Message {
    /// Optional label identifying the sender (verified when the RMS is
    /// authenticated).
    pub source: Option<Label>,
    /// Optional label identifying the intended receiver (enforced when the
    /// RMS is private).
    pub target: Option<Label>,
    /// Optional observability span id threading this message through the
    /// stack's lifecycle stages (see `dash_sim::obs`). `None` unless an
    /// observability sink is active. Excluded from equality: a delivered
    /// copy compares equal to the original even though it acquired a span.
    pub span: Option<u64>,
    payload: WireMsg,
}

impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source && self.target == other.target && self.payload == other.payload
    }
}

impl Eq for Message {}

impl Message {
    /// A message with the given payload and no labels.
    pub fn new(payload: impl Into<Bytes>) -> Self {
        Message::from_wire(WireMsg::from_bytes(payload))
    }

    /// A message wrapping an already scatter-gathered body, with no
    /// labels. This is the zero-copy constructor protocol layers use.
    pub fn from_wire(payload: WireMsg) -> Self {
        Message {
            source: None,
            target: None,
            span: None,
            payload,
        }
    }

    /// A message with source and target labels.
    pub fn labelled(source: Label, target: Label, payload: impl Into<Bytes>) -> Self {
        Message {
            source: Some(source),
            target: Some(target),
            span: None,
            payload: WireMsg::from_bytes(payload),
        }
    }

    /// Attach a lifecycle span id (builder style).
    pub fn with_span(mut self, span: u64) -> Self {
        self.span = Some(span);
        self
    }

    /// A zero-filled message of `len` bytes — the standard synthetic
    /// workload body. Bodies up to 64 KB view a static zero page through
    /// the same `Bytes::from_static` zero-allocation path real payloads
    /// take; larger ones fall back to a `Vec`.
    pub fn zeroes(len: usize) -> Self {
        static ZERO_PAGE: [u8; 64 * 1024] = [0u8; 64 * 1024];
        if len <= ZERO_PAGE.len() {
            Message::new(Bytes::from_static(&ZERO_PAGE[..len]))
        } else {
            Message::new(vec![0u8; len])
        }
    }

    /// The payload as one cheap [`Bytes`] handle. Free when the body is
    /// a single segment (every app-level message); flattens multi-segment
    /// bodies. Protocol layers on the hot path should use [`Message::wire`]
    /// instead and decode the segments in place.
    pub fn payload(&self) -> Bytes {
        self.payload.contiguous()
    }

    /// The scatter-gather body, for zero-copy cursor decode.
    pub fn wire(&self) -> &WireMsg {
        &self.payload
    }

    /// Consume the message, returning the scatter-gather body.
    pub fn into_wire(self) -> WireMsg {
        self.payload
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Split the payload into chunks of at most `chunk` bytes, preserving
    /// order. Used by the subtransport layer's fragmentation (§4.3). The
    /// labels are carried on every fragment; the chunks are zero-copy
    /// views of this message's segments. An empty message yields one
    /// empty fragment.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn split_into(&self, chunk: usize) -> Vec<Message> {
        assert!(chunk > 0, "chunk size must be positive");
        if self.payload.is_empty() {
            return vec![self.clone()];
        }
        let len = self.payload.len();
        let mut out = Vec::with_capacity(len.div_ceil(chunk));
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            out.push(Message {
                source: self.source,
                target: self.target,
                span: self.span,
                payload: self.payload.slice(start, end),
            });
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Message::new(vec![1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.payload().as_ref(), &[1, 2, 3]);
        assert_eq!(m.source, None);

        let l = Message::labelled(Label(1), Label(2), vec![9]);
        assert_eq!(l.source, Some(Label(1)));
        assert_eq!(l.target, Some(Label(2)));
    }

    #[test]
    fn zeroes_body() {
        let m = Message::zeroes(100);
        assert_eq!(m.len(), 100);
        assert!(m.payload().iter().all(|&b| b == 0));
        assert!(Message::zeroes(0).is_empty());
    }

    #[test]
    fn payload_handle_is_zero_copy_for_single_segment() {
        let body = Bytes::from(vec![5u8; 64]);
        let m = Message::new(body.clone());
        // The handle is a view of the same buffer, not a copy.
        assert_eq!(m.payload().as_ptr(), body.as_ptr());
        // And so is the wire body.
        assert_eq!(m.wire().seg_count(), 1);
        assert_eq!(m.into_wire().contiguous().as_ptr(), body.as_ptr());
    }

    #[test]
    fn split_into_preserves_bytes_and_labels() {
        let m = Message::labelled(Label(7), Label(8), (0u8..10).collect::<Vec<_>>());
        let parts = m.split_into(4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 4);
        assert_eq!(parts[2].len(), 2);
        let rejoined: Vec<u8> = parts.iter().flat_map(|p| p.payload().to_vec()).collect();
        assert_eq!(rejoined, (0u8..10).collect::<Vec<_>>());
        assert!(parts.iter().all(|p| p.source == Some(Label(7))));
    }

    #[test]
    fn split_exact_multiple() {
        let m = Message::zeroes(8);
        assert_eq!(m.split_into(4).len(), 2);
        assert_eq!(m.split_into(8).len(), 1);
        assert_eq!(m.split_into(9).len(), 1);
    }

    #[test]
    fn split_empty_yields_one_fragment() {
        let m = Message::new(Vec::new());
        let parts = m.split_into(4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk")]
    fn split_zero_chunk_panics() {
        Message::zeroes(4).split_into(0);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let m = Message::zeroes(1024);
        let c = m.clone();
        assert_eq!(m, c);
    }
}
