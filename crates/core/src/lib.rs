//! # rms-core — the Real-Time Message Stream abstraction
//!
//! A Real-Time Message Stream (RMS) is a simplex communication channel with
//! negotiated reliability, security, and performance parameters (Anderson,
//! "A Software Architecture for Network Communication", UC Berkeley, 1987).
//! This crate holds everything about the abstraction itself, independent of
//! any particular provider:
//!
//! - [`params`]: the parameter set — reliability, authentication, privacy,
//!   capacity, maximum message size, bit error rate (§2.1–§2.2).
//! - [`delay`]: delay bounds `A + B·size` and their deterministic /
//!   statistical / best-effort kinds (§2.2–§2.3).
//! - [`compat`]: the compatibility relation and desired/acceptable
//!   negotiation, plus provider [`compat::ServiceTable`]s (§2.4, §3.1).
//! - [`message`]: untyped, labelled messages (§2).
//! - [`wire`]: scatter-gather encoded messages ([`wire::WireMsg`]) and
//!   the zero-copy decode cursor ([`wire::WireCursor`]).
//! - [`port`]: passive receiver ports; delivery = enqueue (§2).
//! - [`bandwidth`]: the `C/D` bandwidth identity (§2.2).
//! - [`admission`]: deterministic and statistical admission tests (§2.3).
//! - [`error`]: shared error types, including RMS failure notification
//!   reasons.
//!
//! ## Example: negotiating a stream
//!
//! ```
//! use rms_core::compat::{negotiate, PerfLimits, RmsRequest, ServiceTable};
//! use rms_core::delay::DelayBound;
//! use rms_core::params::{BitErrorRate, Reliability, RmsParams, SecurityParams};
//! use dash_sim::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A provider that offers insecure unreliable service up to 1 MB capacity.
//! let mut table = ServiceTable::new();
//! table.support(
//!     Reliability::Unreliable,
//!     SecurityParams::NONE,
//!     PerfLimits {
//!         min_fixed_delay: SimDuration::from_micros(50),
//!         min_per_byte_delay: SimDuration::ZERO,
//!         max_capacity: 1 << 20,
//!         max_message_size: 1500,
//!         min_error_rate: BitErrorRate::new(1e-9).expect("valid rate"),
//!         max_kind_strength: 2,
//!     },
//! );
//!
//! // A client that wants 10 ms delivery of 1 KB messages, 64 KB in flight.
//! let params = RmsParams::builder(64 * 1024, 1024)
//!     .delay(DelayBound::deterministic(
//!         SimDuration::from_millis(10),
//!         SimDuration::ZERO,
//!     ))
//!     .error_rate(BitErrorRate::new(1e-6).expect("valid rate"))
//!     .build()?;
//! let actual = negotiate(&table, &RmsRequest::exact(params))?;
//! assert_eq!(actual.capacity, 64 * 1024);
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod bandwidth;
pub mod compat;
pub mod delay;
pub mod error;
pub mod hash;
pub mod message;
pub mod params;
pub mod port;
pub mod wire;

pub use compat::{is_compatible, negotiate, RmsRequest, ServiceTable};
pub use delay::{DelayBound, DelayBoundKind, StatisticalSpec};
pub use error::{FailReason, RejectReason, RmsError};
pub use hash::{DetHashMap, DetHashSet, DetHasher};
pub use message::{Label, Message};
pub use params::{
    Authentication, BitErrorRate, Privacy, Reliability, RmsParams, SecurityParams, SharedParams,
};
pub use port::{DeliveryInfo, Port};
pub use wire::{WireCursor, WireMsg};
