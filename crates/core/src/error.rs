//! Error types shared across RMS providers.

use std::fmt;

use crate::compat::NegotiationError;
use crate::params::ParamError;

/// Why an RMS failed after creation (§2: "clients are notified of an RMS
/// failure").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The underlying network or link went down.
    NetworkDown,
    /// The peer host stopped responding.
    PeerUnreachable,
    /// The provider had to revoke resources (e.g. buffer sizes changed;
    /// §4.4: "the RMS provider must delete the RMS, and the clients must
    /// establish a new RMS").
    ResourcesRevoked,
    /// The peer closed the stream.
    ClosedByPeer,
    /// The provider could no longer honour a guaranteed property (e.g. a
    /// reliable stream lost data despite link-level recovery).
    GuaranteeViolated,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailReason::NetworkDown => "network down",
            FailReason::PeerUnreachable => "peer unreachable",
            FailReason::ResourcesRevoked => "provider revoked resources",
            FailReason::ClosedByPeer => "closed by peer",
            FailReason::GuaranteeViolated => "guarantee violated",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by RMS operations at any level.
#[derive(Debug, Clone, PartialEq)]
pub enum RmsError {
    /// Creation was rejected during negotiation or admission control.
    CreationRejected(RejectReason),
    /// A message exceeded the stream's maximum message size (§2.2; enforced
    /// by the sender side of the provider).
    MessageTooLarge {
        /// Size of the offending message.
        size: u64,
        /// The stream's maximum message size.
        limit: u64,
    },
    /// The parameters given to an operation were invalid.
    InvalidParams(ParamError),
    /// The stream has failed (client was or will be notified with the same
    /// reason).
    Failed(FailReason),
    /// The stream identifier is unknown or already closed.
    UnknownStream,
    /// The operation is not valid in the stream's current direction (an RMS
    /// is simplex, §2).
    WrongDirection,
}

/// Why creation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Parameter negotiation failed (§2.4).
    Negotiation(NegotiationError),
    /// Admission control refused the worst-case or statistical demands
    /// (§2.3).
    AdmissionDenied {
        /// Human-readable explanation from the admission controller.
        detail: String,
    },
    /// No route to the requested peer.
    NoRoute,
    /// The peer's subtransport or network layer rejected the request.
    PeerRejected,
    /// The creation handshake timed out after all retries.
    Timeout,
    /// Authentication of the peer failed during control-channel setup.
    AuthenticationFailed,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Negotiation(e) => write!(f, "negotiation failed: {e}"),
            RejectReason::AdmissionDenied { detail } => {
                write!(f, "admission control denied: {detail}")
            }
            RejectReason::NoRoute => write!(f, "no route to peer"),
            RejectReason::PeerRejected => write!(f, "peer rejected the request"),
            RejectReason::Timeout => write!(f, "creation handshake timed out"),
            RejectReason::AuthenticationFailed => write!(f, "peer authentication failed"),
        }
    }
}

impl fmt::Display for RmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmsError::CreationRejected(r) => write!(f, "RMS creation rejected: {r}"),
            RmsError::MessageTooLarge { size, limit } => {
                write!(
                    f,
                    "message of {size} bytes exceeds maximum message size {limit}"
                )
            }
            RmsError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            RmsError::Failed(r) => write!(f, "RMS failed: {r}"),
            RmsError::UnknownStream => write!(f, "unknown or closed RMS"),
            RmsError::WrongDirection => write!(f, "operation invalid for this RMS direction"),
        }
    }
}

impl std::error::Error for RmsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmsError::InvalidParams(e) => Some(e),
            RmsError::CreationRejected(RejectReason::Negotiation(e)) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for RmsError {
    fn from(e: ParamError) -> Self {
        RmsError::InvalidParams(e)
    }
}

impl From<NegotiationError> for RmsError {
    fn from(e: NegotiationError) -> Self {
        RmsError::CreationRejected(RejectReason::Negotiation(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RmsError::MessageTooLarge {
            size: 2000,
            limit: 1500,
        };
        let s = e.to_string();
        assert!(s.contains("2000") && s.contains("1500"));

        let r = RmsError::CreationRejected(RejectReason::AdmissionDenied {
            detail: "bandwidth exhausted".into(),
        });
        assert!(r.to_string().contains("bandwidth exhausted"));
    }

    #[test]
    fn sources_chain() {
        let e: RmsError = NegotiationError::UnsupportedCombination.into();
        assert!(e.source().is_some());
        let e2: RmsError = ParamError::ZeroCapacity.into();
        assert!(e2.source().is_some());
        assert!(RmsError::UnknownStream.source().is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RmsError>();
        assert_send_sync::<FailReason>();
    }

    #[test]
    fn fail_reasons_display() {
        assert_eq!(FailReason::NetworkDown.to_string(), "network down");
        assert_eq!(FailReason::ClosedByPeer.to_string(), "closed by peer");
    }
}
