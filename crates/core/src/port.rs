//! Receiver ports (paper §2).
//!
//! "The receiver is typically a passive object such as a port; a message is
//! considered delivered when it is enqueued on the port or given to a
//! process waiting at the port."
//!
//! A [`Port`] is a bounded queue of `(Message, DeliveryInfo)` pairs. The
//! bound models receive-buffer space; overflow is counted and reported so
//! the receiver-flow-control experiments (§4.4) can observe drops.

use std::collections::VecDeque;
use std::fmt;

use dash_sim::time::{SimDuration, SimTime};

use crate::message::Message;

/// Per-delivery metadata recorded when a message lands on a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryInfo {
    /// When the original send operation started (start of the delay clock,
    /// §2.2).
    pub sent_at: SimTime,
    /// When the message was enqueued here (the moment of delivery).
    pub delivered_at: SimTime,
    /// Identifier of the stream the message arrived on (layer-specific).
    pub stream: u64,
    /// Sequence number assigned by the sender on that stream.
    pub seq: u64,
}

impl DeliveryInfo {
    /// The end-to-end delay of this delivery.
    pub fn delay(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.sent_at)
    }
}

/// Why a delivery was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortFull {
    /// The configured queue limit that was hit.
    pub limit: usize,
}

impl fmt::Display for PortFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port queue full (limit {})", self.limit)
    }
}

impl std::error::Error for PortFull {}

/// A bounded receive queue.
#[derive(Debug, Default)]
pub struct Port {
    queue: VecDeque<(Message, DeliveryInfo)>,
    limit: Option<usize>,
    delivered: u64,
    dropped: u64,
    bytes_delivered: u64,
}

impl Port {
    /// An unbounded port.
    pub fn new() -> Self {
        Port::default()
    }

    /// A port that refuses deliveries beyond `limit` queued messages.
    pub fn bounded(limit: usize) -> Self {
        Port {
            limit: Some(limit),
            ..Port::default()
        }
    }

    /// Deliver a message.
    ///
    /// # Errors
    ///
    /// Returns [`PortFull`] (and counts a drop) if the queue is at its
    /// limit.
    pub fn deliver(&mut self, msg: Message, info: DeliveryInfo) -> Result<(), PortFull> {
        if let Some(limit) = self.limit {
            if self.queue.len() >= limit {
                self.dropped += 1;
                return Err(PortFull { limit });
            }
        }
        self.delivered += 1;
        self.bytes_delivered += msg.len() as u64;
        self.queue.push_back((msg, info));
        Ok(())
    }

    /// Take the oldest queued message, if any.
    pub fn recv(&mut self) -> Option<(Message, DeliveryInfo)> {
        self.queue.pop_front()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total messages ever delivered (enqueued) here.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total payload bytes ever delivered here.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Total deliveries refused because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The queue limit, if bounded.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Drain every queued message, oldest first.
    pub fn drain(&mut self) -> Vec<(Message, DeliveryInfo)> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(sent_ns: u64, delivered_ns: u64) -> DeliveryInfo {
        DeliveryInfo {
            sent_at: SimTime::from_nanos(sent_ns),
            delivered_at: SimTime::from_nanos(delivered_ns),
            stream: 1,
            seq: 0,
        }
    }

    #[test]
    fn fifo_delivery_order() {
        let mut p = Port::new();
        p.deliver(Message::new(vec![1]), info(0, 1)).unwrap();
        p.deliver(Message::new(vec![2]), info(0, 2)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.recv().unwrap().0.payload().as_ref(), &[1]);
        assert_eq!(p.recv().unwrap().0.payload().as_ref(), &[2]);
        assert!(p.recv().is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn bounded_port_drops_and_counts() {
        let mut p = Port::bounded(2);
        assert_eq!(p.limit(), Some(2));
        p.deliver(Message::zeroes(1), info(0, 1)).unwrap();
        p.deliver(Message::zeroes(1), info(0, 2)).unwrap();
        let err = p.deliver(Message::zeroes(1), info(0, 3)).unwrap_err();
        assert_eq!(err.limit, 2);
        assert_eq!(p.dropped(), 1);
        assert_eq!(p.delivered(), 2);
        // Draining frees space again.
        p.recv();
        assert!(p.deliver(Message::zeroes(1), info(0, 4)).is_ok());
    }

    #[test]
    fn byte_accounting() {
        let mut p = Port::new();
        p.deliver(Message::zeroes(100), info(0, 1)).unwrap();
        p.deliver(Message::zeroes(50), info(0, 2)).unwrap();
        assert_eq!(p.bytes_delivered(), 150);
    }

    #[test]
    fn delivery_info_delay() {
        let i = info(1_000, 5_000);
        assert_eq!(i.delay(), SimDuration::from_nanos(4_000));
        // Clock skew clamps to zero rather than panicking.
        let weird = info(5_000, 1_000);
        assert_eq!(weird.delay(), SimDuration::ZERO);
    }

    #[test]
    fn drain_empties_queue() {
        let mut p = Port::new();
        for i in 0..5 {
            p.deliver(Message::zeroes(i), info(0, i as u64)).unwrap();
        }
        let all = p.drain();
        assert_eq!(all.len(), 5);
        assert!(p.is_empty());
        assert_eq!(p.delivered(), 5);
    }
}
