//! RKOM failure paths: what happens when the request/reply protocol does
//! NOT go right. Complements the happy-path coverage in `transport_e2e`:
//! a reply landing after the caller exhausted its retries, duplicate
//! replies from the server's at-most-once cache, and a channel dying
//! under an outstanding call.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use dash_net::topology::dumbbell;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_transport::rkom::{self, RkomError};
use dash_transport::stack::StackBuilder;
use rms_core::error::FailReason;
use rms_core::RmsError;

/// A reply arriving after the client gave up must not resurrect the call:
/// the callback fires exactly once (with `Timeout`), and the late reply is
/// absorbed silently — acknowledged so the server can release its cache,
/// never delivered to application code.
#[test]
fn late_reply_after_retries_exhausted_is_absorbed() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    // Give up long before the ~70 ms WAN round trip: the request reaches
    // the server and is served, but the reply lands on a dead call.
    sim.state.rkom.config.retry_timeout = SimDuration::from_millis(20);
    sim.state.rkom.config.max_retries = 0;
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    let o2 = Rc::clone(&outcomes);
    rkom::register_service(&mut sim.state, b, 1, |_s, _c, _req| {
        Bytes::from_static(b"too late")
    });
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"op"),
        move |_s, res| {
            o2.borrow_mut().push(res);
        },
    );
    sim.run();
    // The server did execute the request — this is precisely the window
    // where a buggy client would complete a call it already failed.
    assert_eq!(sim.state.rkom.host(b).stats.served.get(), 1);
    let got = outcomes.borrow();
    assert_eq!(got.len(), 1, "callback must fire exactly once: {got:?}");
    assert_eq!(got[0], Err(RkomError::Timeout));
    let stats = &sim.state.rkom.host(a).stats;
    assert_eq!(stats.failed.get(), 1);
    assert_eq!(stats.completed.get(), 0, "late reply must not count");
}

/// Duplicate replies (the server re-serving from its at-most-once cache
/// after a retransmitted request) complete the call exactly once at the
/// client; the extra reply is acked and dropped.
#[test]
fn duplicate_reply_is_suppressed_at_client() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    // Retransmit before the first reply can cross the WAN (channel
    // establishment plus the round trip take well over 80 ms), so the
    // server sees duplicate requests and re-sends the cached reply.
    sim.state.rkom.config.retry_timeout = SimDuration::from_millis(80);
    sim.state.rkom.config.max_retries = 10;
    let executions = Rc::new(RefCell::new(0u32));
    let ex2 = Rc::clone(&executions);
    rkom::register_service(&mut sim.state, b, 1, move |_s, _c, _req| {
        *ex2.borrow_mut() += 1;
        Bytes::from_static(b"reply")
    });
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    let o2 = Rc::clone(&outcomes);
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"op"),
        move |_s, res| {
            o2.borrow_mut().push(res);
        },
    );
    sim.run();
    // The server was asked at least twice but executed once, and the
    // cached second reply really was sent.
    assert_eq!(*executions.borrow(), 1, "at-most-once violated");
    assert!(
        sim.state.rkom.host(b).stats.duplicates_served.get() >= 1,
        "scenario must actually produce a duplicate reply"
    );
    let got = outcomes.borrow();
    assert_eq!(got.len(), 1, "callback must fire exactly once: {got:?}");
    assert_eq!(got[0], Ok(Bytes::from_static(b"reply")));
    let stats = &sim.state.rkom.host(a).stats;
    assert_eq!(stats.completed.get(), 1);
    assert_eq!(stats.failed.get(), 0);
}

/// A network failure while a call is outstanding surfaces as a typed
/// `ChannelFailed` (not a generic timeout), and fails the call exactly
/// once even though both lanes of the channel die.
#[test]
fn channel_failure_mid_call_fails_typed() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    rkom::register_service(&mut sim.state, b, 1, |_s, _c, _req| {
        Bytes::from_static(b"pong")
    });
    // Warm up: establish the channel with a successful call.
    let warm = Rc::new(RefCell::new(false));
    let w2 = Rc::clone(&warm);
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"warm"),
        move |_s, res| {
            assert!(res.is_ok());
            *w2.borrow_mut() = true;
        },
    );
    sim.run();
    assert!(*warm.borrow());
    // Second call: let the request get onto the WAN, then kill the WAN.
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    let o2 = Rc::clone(&outcomes);
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"doomed"),
        move |_s, res| {
            o2.borrow_mut().push(res);
        },
    );
    sim.run_until(sim.now() + SimDuration::from_millis(10));
    assert!(outcomes.borrow().is_empty(), "call must still be in flight");
    // The dumbbell's WAN is the only path between the sides: no failover.
    dash_net::pipeline::fail_network(&mut sim, dash_net::NetworkId(1));
    sim.run();
    let got = outcomes.borrow();
    assert_eq!(got.len(), 1, "callback must fire exactly once: {got:?}");
    assert_eq!(
        got[0],
        Err(RkomError::ChannelFailed(RmsError::Failed(
            FailReason::NetworkDown
        )))
    );
    assert_eq!(sim.state.rkom.host(a).stats.failed.get(), 1);
}
