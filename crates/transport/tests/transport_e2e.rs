//! End-to-end transport tests on the assembled stack: RKOM request/reply
//! semantics, stream sessions with every flow-control combination, and CPU
//! scheduling integration.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use dash_net::topology::{dumbbell, two_hosts_ethernet, TopologyBuilder};
use dash_net::NetworkSpec;
use dash_sim::cpu::SchedPolicy;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_transport::flow::CapacityEnforcement;
use dash_transport::rkom::{self, RkomError};
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::{self, StreamEvent, StreamProfile};
use rms_core::message::Message;

fn stack2() -> (Sim<Stack>, dash_net::HostId, dash_net::HostId) {
    let (net, a, b) = two_hosts_ethernet();
    (Sim::new(StackBuilder::new(net).build()), a, b)
}

// ---------------------------------------------------------------------------
// RKOM
// ---------------------------------------------------------------------------

#[test]
fn rkom_echo_round_trip() {
    let (mut sim, a, b) = stack2();
    rkom::register_service(&mut sim.state, b, 1, |_sim, _client, req| {
        let mut out = b"echo:".to_vec();
        out.extend_from_slice(&req);
        Bytes::from(out)
    });
    let result = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"hello"),
        move |_sim, res| {
            *r2.borrow_mut() = Some(res);
        },
    );
    sim.run();
    let got = result.borrow_mut().take().expect("call completed");
    assert_eq!(got.unwrap().as_ref(), b"echo:hello");
    assert_eq!(sim.state.rkom.host(a).stats.completed.get(), 1);
    assert_eq!(sim.state.rkom.host(b).stats.served.get(), 1);
}

#[test]
fn rkom_many_calls_share_channel() {
    let (mut sim, a, b) = stack2();
    rkom::register_service(&mut sim.state, b, 7, |_s, _c, req| req);
    let count = Rc::new(RefCell::new(0u32));
    for i in 0..20u32 {
        let c = Rc::clone(&count);
        rkom::call(
            &mut sim,
            a,
            b,
            7,
            Bytes::from(i.to_be_bytes().to_vec()),
            move |_s, res| {
                assert!(res.is_ok());
                *c.borrow_mut() += 1;
            },
        );
    }
    sim.run();
    assert_eq!(*count.borrow(), 20);
    // One channel: exactly four ST creates from a (low+high out) and four
    // from b; the ST layer reports creates_requested per side.
    assert_eq!(sim.state.st.host(a).stats.creates_requested.get(), 2);
    assert_eq!(sim.state.st.host(b).stats.creates_requested.get(), 2);
}

#[test]
fn rkom_unknown_service_fails() {
    let (mut sim, a, b) = stack2();
    let result = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    rkom::call(&mut sim, a, b, 42, Bytes::new(), move |_s, res| {
        *r2.borrow_mut() = Some(res);
    });
    sim.run();
    let outcome = result.borrow_mut().take().expect("completed");
    match outcome {
        Err(RkomError::NoSuchService) => {}
        other => panic!("expected NoSuchService, got {other:?}"),
    }
}

#[test]
fn rkom_retransmits_over_lossy_network() {
    // A very lossy LAN: initial requests/replies may vanish; RKOM must
    // recover via high-delay retransmissions.
    let mut b = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.30;
    let n = b.network(spec);
    let h_a = b.host_on(n);
    let h_b = b.host_on(n);
    let mut sim = Sim::new(StackBuilder::new(b.build()).build());
    rkom::register_service(&mut sim.state, h_b, 1, |_s, _c, _req| {
        Bytes::from_static(b"pong")
    });
    let done = Rc::new(RefCell::new(0u32));
    for _ in 0..20 {
        let d = Rc::clone(&done);
        rkom::call(
            &mut sim,
            h_a,
            h_b,
            1,
            Bytes::from_static(b"ping"),
            move |_s, res| {
                if res.is_ok() {
                    *d.borrow_mut() += 1;
                }
            },
        );
    }
    sim.run();
    let completed = *done.borrow();
    assert!(
        completed >= 18,
        "most calls should complete, got {completed}"
    );
    let stats = &sim.state.rkom.host(h_a).stats;
    assert!(
        stats.retransmissions.get() > 0,
        "loss must force retransmission"
    );
}

#[test]
fn rkom_at_most_once_under_duplicates() {
    // Force retransmissions with a short timeout on a slow path: the
    // server must execute each call once even when requests duplicate.
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    // Shorter than the WAN round trip (~70 ms) so the initial request gets
    // retransmitted, but generous retries so the call still completes.
    sim.state.rkom.config.retry_timeout = SimDuration::from_millis(80);
    sim.state.rkom.config.max_retries = 10;
    let executions = Rc::new(RefCell::new(0u32));
    let ex2 = Rc::clone(&executions);
    rkom::register_service(&mut sim.state, b, 1, move |_s, _c, _req| {
        *ex2.borrow_mut() += 1;
        Bytes::from_static(b"done")
    });
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    rkom::call(
        &mut sim,
        a,
        b,
        1,
        Bytes::from_static(b"op"),
        move |_s, res| {
            assert!(res.is_ok());
            *ok2.borrow_mut() = true;
        },
    );
    sim.run();
    assert!(*ok.borrow());
    assert_eq!(*executions.borrow(), 1, "at-most-once violated");
    assert!(sim.state.rkom.host(a).stats.retransmissions.get() > 0);
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

/// Harness collecting stream events at both hosts.
struct Collected {
    delivered: Vec<(u64, u64, usize)>, // (session, seq, len)
    opened: Vec<u64>,
    drained: u32,
}

fn collect_taps(sim: &mut Sim<Stack>, hosts: &[dash_net::HostId]) -> Rc<RefCell<Collected>> {
    let state = Rc::new(RefCell::new(Collected {
        delivered: Vec::new(),
        opened: Vec::new(),
        drained: 0,
    }));
    for &h in hosts {
        let st = Rc::clone(&state);
        sim.state.on_stream(h, move |_sim, ev| match ev {
            StreamEvent::Delivered {
                session, msg, seq, ..
            } => {
                st.borrow_mut().delivered.push((session, seq, msg.len()));
            }
            StreamEvent::Opened { session } => st.borrow_mut().opened.push(session),
            StreamEvent::Drained { .. } => st.borrow_mut().drained += 1,
            _ => {}
        });
    }
    state
}

#[test]
fn plain_stream_delivers_in_order() {
    let (mut sim, a, b) = stack2();
    let events = collect_taps(&mut sim, &[a, b]);
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    sim.run();
    assert_eq!(events.borrow().opened, vec![session]);
    for i in 0..10u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 100])).unwrap();
    }
    sim.run();
    let ev = events.borrow();
    assert_eq!(ev.delivered.len(), 10);
    for (i, (s, seq, len)) in ev.delivered.iter().enumerate() {
        assert_eq!(*s, session);
        assert_eq!(*seq, i as u64);
        assert_eq!(*len, 100);
    }
}

#[test]
fn reliable_stream_survives_loss() {
    let mut builder = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.10;
    let n = builder.network(spec);
    let a = builder.host_on(n);
    let b = builder.host_on(n);
    let mut sim = Sim::new(StackBuilder::new(builder.build()).build());
    let events = collect_taps(&mut sim, &[a, b]);
    let profile = StreamProfile {
        reliable: true,
        rto: SimDuration::from_millis(50),
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    for i in 0..50u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 200])).unwrap();
        // Space the sends so the run terminates quickly.
        sim.run_until(sim.now() + SimDuration::from_millis(2));
    }
    sim.run();
    let ev = events.borrow();
    assert_eq!(ev.delivered.len(), 50, "reliable stream must deliver all");
    let seqs: Vec<u64> = ev.delivered.iter().map(|d| d.1).collect();
    assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
    let s = sim.state.stream.session(a, session).unwrap();
    assert!(
        s.stats.retransmitted.get() > 0,
        "loss must force retransmission"
    );
}

#[test]
fn unreliable_stream_skips_losses_in_order() {
    let mut builder = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.15;
    let n = builder.network(spec);
    let a = builder.host_on(n);
    let b = builder.host_on(n);
    let mut sim = Sim::new(StackBuilder::new(builder.build()).build());
    let events = collect_taps(&mut sim, &[a, b]);
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    sim.run();
    for i in 0..100u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 200])).unwrap();
    }
    sim.run();
    let ev = events.borrow();
    assert!(ev.delivered.len() < 100);
    assert!(ev.delivered.len() > 50);
    let seqs: Vec<u64> = ev.delivered.iter().map(|d| d.1).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    let s = sim.state.stream.session(b, session).unwrap();
    assert!(s.stats.gaps.get() > 0);
}

#[test]
fn ack_based_capacity_enforcement_bounds_outstanding() {
    let (mut sim, a, b) = stack2();
    let events = collect_taps(&mut sim, &[a, b]);
    let profile = StreamProfile {
        enforcement: CapacityEnforcement::AckBased,
        capacity: 2_000, // only ~2 messages of 1000B outstanding
        max_message: 1_000,
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    for i in 0..10u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 1000])).unwrap();
    }
    // Everything eventually arrives, clocked by fast acks.
    sim.run();
    assert_eq!(events.borrow().delivered.len(), 10);
    // Fast acks were actually used.
    assert!(sim.state.st.host(b).stats.fast_acks_sent.get() > 0);
}

#[test]
fn rate_based_capacity_enforcement_paces_sends() {
    let (mut sim, a, b) = stack2();
    let events = collect_taps(&mut sim, &[a, b]);
    let profile = StreamProfile {
        enforcement: CapacityEnforcement::RateBased,
        capacity: 1_000,
        max_message: 500,
        delay: rms_core::DelayBound::best_effort_with(
            SimDuration::from_millis(50),
            SimDuration::from_micros(10),
        ),
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    let start = sim.now();
    for i in 0..6u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 500])).unwrap();
    }
    sim.run();
    // 6 * 500B at 1000B per ~55ms window -> at least two windows must pass.
    let elapsed = sim.now().saturating_since(start);
    assert!(
        elapsed >= SimDuration::from_millis(100),
        "rate limiting should stretch delivery, took {elapsed}"
    );
    assert_eq!(events.borrow().delivered.len(), 6);
}

#[test]
fn receiver_flow_control_stalls_sender_until_consume() {
    let (mut sim, a, b) = stack2();
    let events = collect_taps(&mut sim, &[a, b]);
    let profile = StreamProfile {
        reliable: true,
        receiver_fc: true,
        receive_buffer: 2_000,
        max_message: 1_000,
        ack_every: 1,
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    for i in 0..6u8 {
        let _ = stream::send(&mut sim, a, session, Message::new(vec![i; 1000]));
    }
    sim.run();
    // Only two messages fit the receiver's buffer.
    assert_eq!(events.borrow().delivered.len(), 2);
    let pending = sim
        .state
        .stream
        .session(b, session)
        .unwrap()
        .receive_buffer_pending();
    assert_eq!(pending, 2_000);
    // The application consumes; the window reopens; the rest flows.
    stream::consume(&mut sim, b, session, 2_000);
    sim.run();
    assert!(events.borrow().delivered.len() >= 4);
    stream::consume(&mut sim, b, session, 2_000);
    sim.run();
    stream::consume(&mut sim, b, session, 2_000);
    sim.run();
    assert_eq!(events.borrow().delivered.len(), 6);
}

#[test]
fn sender_flow_control_blocks_and_drains() {
    let (mut sim, a, b) = stack2();
    let events = collect_taps(&mut sim, &[a, b]);
    let profile = StreamProfile {
        send_port_limit: 2_000,
        enforcement: CapacityEnforcement::RateBased,
        capacity: 1_000,
        max_message: 1_000,
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    sim.run();
    // Flood synchronously: the rate limiter stalls the pump, so the port
    // fills and offers start failing (the sender "blocks").
    let mut refused = 0;
    for i in 0..10u8 {
        if stream::send(&mut sim, a, session, Message::new(vec![i; 1000])).is_err() {
            refused += 1;
        }
    }
    assert!(refused > 0, "port should refuse when full");
    sim.run();
    // Drain notifications woke the sender at least once.
    assert!(events.borrow().drained > 0);
    let s = sim.state.stream.session(a, session).unwrap();
    assert!(s.stats.sender_blocked.get() > 0);
}

#[test]
fn bulk_profile_end_to_end_over_wan() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let events = collect_taps(&mut sim, &[a, b]);
    let session = stream::open(&mut sim, a, b, StreamProfile::bulk()).unwrap();
    sim.run();
    let total: usize = 40;
    let mut sent = 0;
    // Keep offering; honour sender flow control by retrying after runs.
    while sent < total {
        match stream::send(&mut sim, a, session, Message::new(vec![7u8; 4096])) {
            Ok(()) => sent += 1,
            Err(_) => {
                sim.run_until(sim.now() + SimDuration::from_millis(20));
            }
        }
        // Model the consuming application.
        let pending = sim
            .state
            .stream
            .session(b, session)
            .map(|s| s.receive_buffer_pending())
            .unwrap_or(0);
        if pending > 0 {
            stream::consume(&mut sim, b, session, pending);
        }
    }
    // Let everything settle, consuming as it arrives.
    for _ in 0..200 {
        sim.run_until(sim.now() + SimDuration::from_millis(20));
        let pending = sim
            .state
            .stream
            .session(b, session)
            .map(|s| s.receive_buffer_pending())
            .unwrap_or(0);
        if pending > 0 {
            stream::consume(&mut sim, b, session, pending);
        }
        if events.borrow().delivered.len() >= total {
            break;
        }
    }
    assert_eq!(events.borrow().delivered.len(), total);
}

#[test]
fn stack_with_edf_cpus_runs_end_to_end() {
    let (net, a, b) = two_hosts_ethernet();
    let stack = StackBuilder::new(net)
        .cpus(SchedPolicy::Edf, SimDuration::from_micros(5))
        .build();
    let mut sim = Sim::new(stack);
    let events = collect_taps(&mut sim, &[a, b]);
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    sim.run();
    for i in 0..10u8 {
        stream::send(&mut sim, a, session, Message::new(vec![i; 200])).unwrap();
    }
    sim.run();
    assert_eq!(events.borrow().delivered.len(), 10);
    // The CPUs actually processed jobs.
    let total_jobs: u64 = sim
        .state
        .cpus
        .as_ref()
        .unwrap()
        .iter()
        .map(|c| c.stats.completed.get())
        .sum();
    assert!(total_jobs > 20, "cpu jobs: {total_jobs}");
}

#[test]
fn stream_failure_surfaces_ended_event() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let ended = Rc::new(RefCell::new(Vec::new()));
    let e2 = Rc::clone(&ended);
    sim.state.on_stream(a, move |_s, ev| {
        if let StreamEvent::Ended { session, reason } = ev {
            e2.borrow_mut().push((session, reason));
        }
    });
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    sim.run();
    dash_net::pipeline::fail_network(&mut sim, dash_net::NetworkId(1));
    sim.run();
    // The dumbbell has no alternate path around the WAN, so failover is
    // impossible and the session ends with a typed channel failure.
    assert_eq!(
        *ended.borrow(),
        vec![(
            session,
            stream::EndReason::ChannelFailed(rms_core::error::FailReason::NetworkDown)
        )]
    );
}

#[test]
fn timestamps_monotone_on_delivery() {
    let (mut sim, a, b) = stack2();
    let times = Rc::new(RefCell::new(Vec::<SimTime>::new()));
    let t2 = Rc::clone(&times);
    sim.state.on_stream(b, move |sim, ev| {
        if matches!(ev, StreamEvent::Delivered { .. }) {
            t2.borrow_mut().push(sim.now());
        }
    });
    sim.state.on_stream(a, |_s, _e| {});
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    sim.run();
    for _ in 0..5 {
        stream::send(&mut sim, a, session, Message::zeroes(100)).unwrap();
    }
    sim.run();
    let ts = times.borrow();
    assert_eq!(ts.len(), 5);
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}
