//! Baseline TCP-like transport tests on the assembled stack.

use std::cell::RefCell;
use std::rc::Rc;

use dash_baseline::tcp::{self, TcpEvent};
use dash_net::topology::{two_hosts_ethernet, TopologyBuilder};
use dash_net::NetworkSpec;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_transport::stack::{Stack, StackBuilder};

#[derive(Default)]
struct Log {
    connected: Vec<u64>,
    accepted: Vec<(u64, dash_net::HostId)>,
    data: Vec<(dash_net::HostId, u64, u64)>,
    closed: Vec<u64>,
}

fn tap(sim: &mut Sim<Stack>) -> Rc<RefCell<Log>> {
    let log = Rc::new(RefCell::new(Log::default()));
    let l = Rc::clone(&log);
    sim.state.on_tcp(move |_sim, host, ev| match ev {
        TcpEvent::Connected { conn } => l.borrow_mut().connected.push(conn),
        TcpEvent::Accepted { conn, peer } => l.borrow_mut().accepted.push((conn, peer)),
        TcpEvent::Data { conn, bytes } => l.borrow_mut().data.push((host, conn, bytes)),
        TcpEvent::Closed { conn } => l.borrow_mut().closed.push(conn),
    });
    log
}

#[test]
fn handshake_and_transfer() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let log = tap(&mut sim);
    tcp::listen(&mut sim, b, 80);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run();
    assert_eq!(log.borrow().connected, vec![conn]);
    assert_eq!(log.borrow().accepted.len(), 1);

    let body: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    tcp::send(&mut sim, a, conn, &body);
    sim.run();
    // The server's connection received everything, in order.
    let (server_conn, _) = log.borrow().accepted[0];
    let got = sim.state.tcp.conn_mut(b, server_conn).unwrap().read();
    assert_eq!(got.as_ref(), &body[..]);
    let stats = &sim.state.tcp.conn(b, server_conn).unwrap().stats;
    assert_eq!(stats.bytes_delivered.get(), 10_000);
}

#[test]
fn transfer_survives_loss() {
    let mut builder = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.05;
    let n = builder.network(spec);
    let a = builder.host_on(n);
    let b = builder.host_on(n);
    let mut sim = Sim::new(StackBuilder::new(builder.build()).build());
    let log = tap(&mut sim);
    tcp::listen(&mut sim, b, 80);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run();
    let body: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
    tcp::send(&mut sim, a, conn, &body);
    sim.run();
    let (server_conn, _) = log.borrow().accepted[0];
    let got = sim.state.tcp.conn_mut(b, server_conn).unwrap().read();
    assert_eq!(got.len(), body.len(), "reliable transfer must complete");
    assert_eq!(got.as_ref(), &body[..]);
    let stats = &sim.state.tcp.conn(a, conn).unwrap().stats;
    assert!(stats.retransmitted.get() > 0, "loss forces retransmission");
}

#[test]
fn slow_start_grows_cwnd() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let _log = tap(&mut sim);
    tcp::listen(&mut sim, b, 80);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run();
    let initial = sim.state.tcp.conn(a, conn).unwrap().cwnd();
    tcp::send(&mut sim, a, conn, &vec![0u8; 50_000]);
    sim.run();
    let grown = sim.state.tcp.conn(a, conn).unwrap().cwnd();
    assert!(grown > initial * 4, "cwnd {initial} -> {grown}");
}

#[test]
fn quench_collapses_window() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let _log = tap(&mut sim);
    tcp::listen(&mut sim, b, 80);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run();
    tcp::send(&mut sim, a, conn, &vec![0u8; 50_000]);
    sim.run();
    let before = sim.state.tcp.conn(a, conn).unwrap().cwnd();
    assert!(before > 1024);
    // Inject a quench as the gateway would.
    tcp::on_quench(&mut sim, a, b);
    let after = sim.state.tcp.conn(a, conn).unwrap().cwnd();
    assert_eq!(after, 1024, "cwnd collapses to one MSS");
    assert_eq!(sim.state.tcp.conn(a, conn).unwrap().stats.quenches.get(), 1);
}

#[test]
fn close_notifies_peer() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    let log = tap(&mut sim);
    tcp::listen(&mut sim, b, 80);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run();
    tcp::close(&mut sim, a, conn);
    sim.run();
    assert!(!log.borrow().closed.is_empty());
}

#[test]
fn connect_to_dead_host_times_out() {
    // Partitioned networks: the SYN goes nowhere.
    let mut builder = TopologyBuilder::new();
    let n1 = builder.network(NetworkSpec::ethernet("x"));
    let n2 = builder.network(NetworkSpec::ethernet("y"));
    let a = builder.host_on(n1);
    let b = builder.host_on(n2);
    let mut sim = Sim::new(StackBuilder::new(builder.build()).build());
    let log = tap(&mut sim);
    let conn = tcp::connect(&mut sim, a, b, 80);
    sim.run_until(dash_sim::SimTime::ZERO + SimDuration::from_secs(60));
    assert!(log.borrow().connected.is_empty());
    assert_eq!(log.borrow().closed, vec![conn]);
}
