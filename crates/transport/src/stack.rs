//! The assembled DASH communication stack (paper Figure 2).
//!
//! [`Stack`] is the concrete world type that wires together the network
//! layer, the subtransport layer, and the transport protocols (RKOM and
//! streams), optionally with a real per-host CPU using deadline-based
//! short-term scheduling (§4.1). Examples, integration tests, applications
//! and benchmarks all run on this type.
//!
//! Delivery routing: every transport protocol prefixes its ST messages with
//! a magic byte (`0xD5` RKOM, `0xD6` streams). ST messages on streams not
//! owned by a transport protocol and not starting with a reserved magic
//! byte are handed to the application tap.

use dash_baseline::tcp::{self, TcpEvent, TcpState, TcpWorld, TCP_PROTO};
use dash_net::ids::{HostId, NetRmsId, NetworkId};
use dash_net::state::{fifo_charge_cpu, NetRmsEvent, NetState, NetWorld};
use dash_sim::cpu::{self, Cpu, SchedPolicy};
use dash_sim::engine::Sim;
use dash_sim::time::{SimDuration, SimTime};
use dash_subtransport::engine as st_engine;
use dash_subtransport::ids::StRmsId;
use dash_subtransport::st::{StConfig, StEvent, StState, StWorld};
use rms_core::message::Message;
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;

use dash_sim::obs::ObsSink;

use crate::rkom::{self, RkomState};
use crate::stream::{self, StreamEvent, StreamState};

/// Reserved first byte of RKOM ST messages.
pub const MAGIC_RKOM: u8 = 0xD5;
/// Reserved first byte of stream-protocol ST messages.
pub const MAGIC_STREAM: u8 = 0xD6;

/// Application-facing notifications from the stack.
#[derive(Debug)]
pub enum AppEvent {
    /// An ST message arrived on a stream owned by the application.
    StDeliver {
        /// Receiving host.
        host: HostId,
        /// The stream.
        st_rms: StRmsId,
        /// The message.
        msg: Message,
        /// Delivery metadata.
        info: DeliveryInfo,
    },
    /// An ST lifecycle event not claimed by a transport protocol.
    StEvent {
        /// The host observing the event.
        host: HostId,
        /// The event.
        event: StEvent,
    },
}

/// Application tap: a reentrancy-safe callback slot.
type Tap = Box<dyn FnMut(&mut Sim<Stack>, AppEvent)>;
/// Baseline TCP event tap.
type TcpTap = Box<dyn FnMut(&mut Sim<Stack>, HostId, TcpEvent)>;

/// The complete DASH stack world.
pub struct Stack {
    /// Network layer.
    pub net: NetState,
    /// Subtransport layer.
    pub st: StState,
    /// RKOM request/reply state.
    pub rkom: RkomState,
    /// Stream-protocol state.
    pub stream: StreamState,
    /// Baseline TCP-like transport state (runs over raw datagrams).
    pub tcp: TcpState,
    /// Optional modelled CPUs (one per host). When present, protocol
    /// processing is scheduled by the CPU's policy instead of the default
    /// FIFO model.
    pub cpus: Option<Vec<Cpu<Stack>>>,
    app_tap: Option<Tap>,
    tcp_tap: Option<TcpTap>,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field("hosts", &self.net.hosts.len())
            .field("cpus", &self.cpus.is_some())
            .finish()
    }
}

/// Builder assembling a [`Stack`] in one expression: network state, ST
/// configuration, optional modelled CPUs, and observability wiring.
///
/// ```
/// use dash_net::topology::two_hosts_ethernet;
/// use dash_subtransport::st::StConfig;
/// use dash_transport::stack::StackBuilder;
///
/// let (net, _a, _b) = two_hosts_ethernet();
/// let stack = StackBuilder::new(net)
///     .st_config(StConfig::default())
///     .build();
/// assert!(stack.cpus.is_none());
/// ```
pub struct StackBuilder {
    net: NetState,
    st_config: StConfig,
    cpus: Option<(SchedPolicy, SimDuration)>,
    sink: Option<Box<dyn ObsSink>>,
    obs_enabled: bool,
    retain_spans: bool,
}

impl StackBuilder {
    /// Start building a stack over a built network state.
    pub fn new(net: NetState) -> Self {
        StackBuilder {
            net,
            st_config: StConfig::default(),
            cpus: None,
            sink: None,
            obs_enabled: false,
            retain_spans: false,
        }
    }

    /// Subtransport configuration (defaults to [`StConfig::default`]).
    pub fn st_config(mut self, config: StConfig) -> Self {
        self.st_config = config;
        self
    }

    /// Model real per-host CPUs with the given scheduling policy and
    /// context-switch cost (§4.1).
    pub fn cpus(mut self, policy: SchedPolicy, context_switch: SimDuration) -> Self {
        self.cpus = Some((policy, context_switch));
        self
    }

    /// Install an observability sink (activates event emission; see
    /// [`dash_sim::obs`]).
    pub fn obs_sink(mut self, sink: impl ObsSink + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Activate observability without a sink: events feed the metric
    /// registry and span tracker only.
    pub fn obs(mut self, enabled: bool) -> Self {
        self.obs_enabled = enabled;
        self
    }

    /// Keep completed span records in memory for later inspection via
    /// [`dash_sim::obs::Obs::spans`].
    pub fn retain_spans(mut self, retain: bool) -> Self {
        self.retain_spans = retain;
        self
    }

    /// Assemble the stack.
    pub fn build(self) -> Stack {
        let n = self.net.hosts.len();
        let mut st = StState::new(self.st_config, n);
        st.provision_all_keys(n as u32);
        let mut stack = Stack {
            net: self.net,
            st,
            rkom: RkomState::new(n),
            stream: StreamState::new(n),
            tcp: TcpState::new(n),
            cpus: self
                .cpus
                .map(|(policy, cs)| (0..n).map(|_| Cpu::new(policy, cs)).collect()),
            app_tap: None,
            tcp_tap: None,
        };
        if self.obs_enabled {
            stack.net.obs.enable();
        }
        if self.retain_spans {
            stack.net.obs.retain_spans(true);
        }
        if let Some(sink) = self.sink {
            stack.net.obs.set_boxed_sink(sink);
        }
        stack
    }
}

impl Stack {
    /// Install the application tap receiving unclaimed deliveries/events.
    ///
    /// Part of the uniform tap family: [`Stack::on_app`],
    /// [`Stack::on_tcp`], [`Stack::on_stream`].
    pub fn on_app(&mut self, tap: impl FnMut(&mut Sim<Stack>, AppEvent) + 'static) {
        self.app_tap = Some(Box::new(tap));
    }

    /// Install the tap receiving baseline TCP events.
    ///
    /// Part of the uniform tap family: [`Stack::on_app`],
    /// [`Stack::on_tcp`], [`Stack::on_stream`].
    pub fn on_tcp(&mut self, tap: impl FnMut(&mut Sim<Stack>, HostId, TcpEvent) + 'static) {
        self.tcp_tap = Some(Box::new(tap));
    }

    /// Install `host`'s tap receiving [`StreamEvent`]s from the stream
    /// protocol.
    ///
    /// Part of the uniform tap family: [`Stack::on_app`],
    /// [`Stack::on_tcp`], [`Stack::on_stream`].
    pub fn on_stream(
        &mut self,
        host: HostId,
        tap: impl FnMut(&mut Sim<Stack>, StreamEvent) + 'static,
    ) {
        self.stream.host_mut(host).install_tap(Box::new(tap));
    }

    /// Switch this world into logical-process mode as `owner`'s replica
    /// for the conservative parallel executor (`dash::par`).
    ///
    /// Must be called on a freshly built stack, before any events run.
    /// It re-seeds the wire RNG as a pure function of `(root_seed,
    /// owner)` and rebases every global id counter (network RMS ids and
    /// tokens, ST RMS ids and tokens, stream sessions, RKOM calls, obs
    /// span ids) to the disjoint namespace `(owner + 1) << 40`, so ids
    /// minted independently by different logical processes never collide
    /// when their packets and event streams meet.
    pub fn enable_lp_mode(&mut self, owner: HostId, root_seed: u64) {
        let base = (owner.0 as u64 + 1) << 40;
        self.net.enable_lp_mode(owner, root_seed);
        self.net.obs.set_span_namespace(base);
        self.st.set_id_namespace(base);
        self.stream.set_id_namespace(base);
        self.rkom.set_id_namespace(base);
    }

    /// Deliver an [`AppEvent`] through the tap (reentrancy-safe).
    pub fn fire_app_event(sim: &mut Sim<Stack>, event: AppEvent) {
        if let Some(mut tap) = sim.state.app_tap.take() {
            tap(sim, event);
            // Only restore if the app did not install a new tap meanwhile.
            if sim.state.app_tap.is_none() {
                sim.state.app_tap = Some(tap);
            }
        }
    }
}

fn cpu_accessor(stack: &mut Stack, key: u64) -> &mut Cpu<Stack> {
    &mut stack
        .cpus
        .as_mut()
        .expect("cpu accessor used without modelled CPUs")[key as usize]
}

impl NetWorld for Stack {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }

    fn charge_cpu(
        sim: &mut Sim<Self>,
        host: HostId,
        cost: SimDuration,
        deadline: SimTime,
        stream: u64,
        cont: Box<dyn FnOnce(&mut Sim<Self>)>,
    ) {
        if sim.state.cpus.is_some() {
            cpu::submit(
                sim,
                cpu_accessor,
                u64::from(host.0),
                dash_sim::cpu::Job {
                    deadline,
                    priority: 0,
                    stream,
                    cost,
                    cont,
                },
            );
        } else {
            fifo_charge_cpu(sim, host, cost, cont);
        }
    }

    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        msg: Message,
        info: DeliveryInfo,
    ) {
        st_engine::on_net_deliver(sim, host, rms, msg, info);
    }

    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent) {
        st_engine::on_net_event(sim, host, &event);
    }

    fn network_event(sim: &mut Sim<Self>, network: NetworkId, up: bool) {
        st_engine::on_network_event(sim, network, up);
    }

    fn deliver_datagram(
        sim: &mut Sim<Self>,
        host: HostId,
        src: HostId,
        proto: u16,
        payload: WireMsg,
        sent_at: SimTime,
    ) {
        if proto == TCP_PROTO {
            tcp::on_datagram(sim, host, src, payload, sent_at);
        }
    }

    fn deliver_quench(sim: &mut Sim<Self>, host: HostId, proto: u16, dropped_dst: HostId) {
        if proto == TCP_PROTO {
            tcp::on_quench(sim, host, dropped_dst);
        }
    }
}

impl TcpWorld for Stack {
    fn tcp(&mut self) -> &mut TcpState {
        &mut self.tcp
    }
    fn tcp_ref(&self) -> &TcpState {
        &self.tcp
    }
    fn tcp_event(sim: &mut Sim<Self>, host: HostId, event: TcpEvent) {
        if let Some(mut tap) = sim.state.tcp_tap.take() {
            tap(sim, host, event);
            if sim.state.tcp_tap.is_none() {
                sim.state.tcp_tap = Some(tap);
            }
        }
    }
}

impl StWorld for Stack {
    fn st(&mut self) -> &mut StState {
        &mut self.st
    }
    fn st_ref(&self) -> &StState {
        &self.st
    }

    fn st_deliver(
        sim: &mut Sim<Self>,
        host: HostId,
        st_rms: StRmsId,
        msg: Message,
        info: DeliveryInfo,
    ) {
        // Owned streams route to their protocol; unknown streams are
        // claimed by magic byte.
        if rkom::owns(&sim.state, host, st_rms)
            || msg.wire().first_byte() == Some(MAGIC_RKOM)
                && !stream::owns(&sim.state, host, st_rms)
        {
            rkom::on_delivery(sim, host, st_rms, msg, info);
            return;
        }
        if stream::owns(&sim.state, host, st_rms) || msg.wire().first_byte() == Some(MAGIC_STREAM) {
            stream::on_delivery(sim, host, st_rms, msg, info);
            return;
        }
        Stack::fire_app_event(
            sim,
            AppEvent::StDeliver {
                host,
                st_rms,
                msg,
                info,
            },
        );
    }

    fn st_event(sim: &mut Sim<Self>, host: HostId, event: StEvent) {
        // Creation results route by token; stream-scoped events by
        // ownership.
        match &event {
            StEvent::Created { token, .. } | StEvent::CreateFailed { token, .. } => {
                if rkom::claims_token(&sim.state, host, *token) {
                    rkom::on_st_event(sim, host, event);
                    return;
                }
                if stream::claims_token(&sim.state, host, *token) {
                    stream::on_st_event(sim, host, event);
                    return;
                }
            }
            StEvent::Failed { st_rms, .. }
            | StEvent::Closed { st_rms }
            | StEvent::FastAck { st_rms, .. } => {
                if rkom::owns(&sim.state, host, *st_rms) {
                    rkom::on_st_event(sim, host, event);
                    return;
                }
                if stream::owns(&sim.state, host, *st_rms) {
                    stream::on_st_event(sim, host, event);
                    return;
                }
            }
            StEvent::InboundCreated { .. } => {
                // Ownership of inbound streams is established by the first
                // message's magic byte; applications may still observe the
                // event.
            }
        }
        Stack::fire_app_event(sim, AppEvent::StEvent { host, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_net::topology::two_hosts_ethernet;

    #[test]
    fn builder_assembles() {
        let (net, _a, _b) = two_hosts_ethernet();
        let stack = StackBuilder::new(net)
            .st_config(StConfig::default())
            .build();
        assert!(stack.cpus.is_none());
        let (net, _a, _b) = two_hosts_ethernet();
        let stack = StackBuilder::new(net)
            .cpus(SchedPolicy::Edf, SimDuration::from_micros(5))
            .obs(true)
            .retain_spans(true)
            .build();
        assert_eq!(stack.cpus.as_ref().unwrap().len(), 2);
        assert!(stack.net.obs.is_active());
    }

    #[test]
    fn app_tap_fires() {
        let (net, a, _b) = two_hosts_ethernet();
        let mut stack = StackBuilder::new(net).build();
        stack.on_app(|_sim, _ev| {});
        let mut sim = Sim::new(stack);
        // A synthetic unclaimed event reaches the tap without panicking.
        Stack::fire_app_event(
            &mut sim,
            AppEvent::StEvent {
                host: a,
                event: StEvent::Closed {
                    st_rms: StRmsId(999),
                },
            },
        );
    }
}
