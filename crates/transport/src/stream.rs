//! Stream transport protocols over ST RMSs (paper §2.5, §3.3, §4.4).
//!
//! A stream session couples:
//!
//! - a **data ST RMS** (high capacity, profile-chosen delay bound),
//! - optionally a reverse **acknowledgement ST RMS** ("reliability
//!   acknowledgements should use low capacity, high delay RMS's; flow
//!   control acknowledgements should use a low delay, low capacity RMS" —
//!   when both are needed we carry them on one low-delay stream), and
//! - the §4.4 flow-control suite, each mechanism present only when the
//!   profile asks for it: rate-based or acknowledgement-based RMS capacity
//!   enforcement, receiver flow control with a finite receive buffer, and
//!   sender flow control through a bounded [`SendPort`].
//!
//! Acknowledgement-based capacity enforcement is clocked by the ST's *fast
//! acknowledgement* service (§3.2), exercising the paper's claim that it
//! reduces response time and RMS establishment overhead (no reverse RMS
//! needed just for capacity clocking).
//!
//! Reliability is go-back-N: the receiver accepts only in-order sequence
//! numbers; the sender retransmits everything unacknowledged on timeout.

use std::collections::VecDeque;

use rms_core::hash::DetHashMap;

use bytes::{BufMut, BytesMut};
use dash_net::ids::HostId;
use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::obs::ObsEvent;
use dash_sim::stats::{Counter, Histogram};
use dash_sim::time::{SimDuration, SimTime};
use dash_subtransport::engine as st_engine;
use dash_subtransport::ids::{StRmsId, StToken};
use dash_subtransport::st::{StEvent, StWorld as _};
use rms_core::delay::DelayBound;
use rms_core::error::{FailReason, RmsError};
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;
use rms_core::RmsRequest;

use crate::flow::{AckWindow, CapacityEnforcement, RateLimiter, ReceiverWindow};
use crate::sendport::{SendPort, WouldBlock};
use crate::stack::{Stack, MAGIC_STREAM};

/// Stream session profile: which mechanisms to instantiate (§4.4's point is
/// that every field here is optional machinery).
#[derive(Debug, Clone)]
pub struct StreamProfile {
    /// RMS capacity of the data stream, bytes.
    pub capacity: u64,
    /// Maximum message size on the data stream.
    pub max_message: u64,
    /// Delay bound requested for the data stream.
    pub delay: DelayBound,
    /// Capacity-enforcement mechanism.
    pub enforcement: CapacityEnforcement,
    /// Retransmit lost messages (adds the reverse ack stream).
    pub reliable: bool,
    /// Receiver flow control (adds the reverse ack stream and a finite
    /// receive buffer).
    pub receiver_fc: bool,
    /// Receive buffer size when `receiver_fc` is on.
    pub receive_buffer: u64,
    /// Sender-side IPC port limit (§4.4 sender flow control).
    pub send_port_limit: u64,
    /// Send a cumulative ack every this many in-order deliveries.
    pub ack_every: u32,
    /// Flush pending acks after this long.
    pub ack_delay: SimDuration,
    /// Retransmission timeout (reliable streams).
    pub rto: SimDuration,
    /// Consecutive retransmission timeouts (no ack progress) before a
    /// reliable sender gives up and ends the session with
    /// [`EndReason::RetriesExhausted`] — a typed outcome instead of an
    /// unbounded stall when the peer is gone.
    pub max_retries: u32,
}

impl Default for StreamProfile {
    fn default() -> Self {
        StreamProfile {
            capacity: 32 * 1024,
            max_message: 1024,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(100),
                SimDuration::from_micros(10),
            ),
            enforcement: CapacityEnforcement::None,
            reliable: false,
            receiver_fc: false,
            receive_buffer: 64 * 1024,
            send_port_limit: 64 * 1024,
            ack_every: 4,
            ack_delay: SimDuration::from_millis(5),
            rto: SimDuration::from_millis(300),
            max_retries: 8,
        }
    }
}

impl StreamProfile {
    /// Does this profile need the reverse acknowledgement stream?
    pub fn needs_ack_stream(&self) -> bool {
        self.reliable || self.receiver_fc
    }

    /// Bulk-transfer profile (§2.5): high capacity/delay data stream,
    /// reliable, ack-based capacity enforcement.
    pub fn bulk() -> Self {
        StreamProfile {
            capacity: 128 * 1024,
            max_message: 8 * 1024,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(500),
                SimDuration::from_micros(10),
            ),
            enforcement: CapacityEnforcement::AckBased,
            reliable: true,
            receiver_fc: true,
            receive_buffer: 256 * 1024,
            ..StreamProfile::default()
        }
    }

    /// Digitized-voice profile (§2.5): high capacity, low delay, loss
    /// tolerated, no reliability machinery at all.
    pub fn voice() -> Self {
        StreamProfile {
            capacity: 16 * 1024,
            max_message: 256,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(40),
                SimDuration::from_micros(10),
            ),
            enforcement: CapacityEnforcement::RateBased,
            reliable: false,
            receiver_fc: false,
            ..StreamProfile::default()
        }
    }
}

/// Events surfaced to the application via the per-host stream tap.
#[derive(Debug)]
pub enum StreamEvent {
    /// A session we opened is ready to send.
    Opened {
        /// The session.
        session: u64,
    },
    /// A session we opened could not be established.
    OpenFailed {
        /// The session.
        session: u64,
        /// Why.
        reason: RmsError,
    },
    /// A peer opened a session toward us.
    Incoming {
        /// The session.
        session: u64,
        /// The sending peer.
        peer: HostId,
    },
    /// An in-order message arrived (receiver side).
    Delivered {
        /// The session.
        session: u64,
        /// The message.
        msg: Message,
        /// Its sequence number.
        seq: u64,
        /// End-to-end delay from the sender's `send` call.
        delay: SimDuration,
    },
    /// The send port has space again after refusing an offer.
    Drained {
        /// The session.
        session: u64,
    },
    /// The session failed or the peer closed it.
    Ended {
        /// The session.
        session: u64,
        /// Why.
        reason: EndReason,
    },
}

/// Why a session ended ([`StreamEvent::Ended`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// The peer closed the stream.
    Closed,
    /// The carrying ST stream failed (e.g. its network died with no
    /// alternate to fail over to).
    ChannelFailed(FailReason),
    /// A reliable sender hit [`StreamProfile::max_retries`] consecutive
    /// retransmission timeouts without acknowledgement progress.
    RetriesExhausted,
}

const KIND_HELLO: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_ACK: u8 = 3;

#[derive(Debug, PartialEq)]
enum StreamMsg {
    Hello {
        session: u64,
        needs_ack_stream: bool,
        receive_buffer: u64,
        ack_is_for: Option<u64>,
    },
    Data {
        session: u64,
        seq: u64,
        sent_at: SimTime,
        payload: WireMsg,
    },
    Ack {
        session: u64,
        cum_seq: Option<u64>,
        consumed: u64,
    },
}

/// Encode into a scatter-gather wire body: one small owned header chunk,
/// followed (for `Data`) by the payload's segments shared as-is — the
/// payload bytes are never copied.
fn encode_msg(m: &StreamMsg) -> WireMsg {
    let mut b = BytesMut::with_capacity(32);
    b.put_u8(MAGIC_STREAM);
    match m {
        StreamMsg::Hello {
            session,
            needs_ack_stream,
            receive_buffer,
            ack_is_for,
        } => {
            b.put_u8(KIND_HELLO);
            b.put_u64(*session);
            b.put_u8(u8::from(*needs_ack_stream));
            b.put_u64(*receive_buffer);
            b.put_u64(ack_is_for.map_or(u64::MAX, |s| s));
        }
        StreamMsg::Data {
            session,
            seq,
            sent_at,
            payload,
        } => {
            b.put_u8(KIND_DATA);
            b.put_u64(*session);
            b.put_u64(*seq);
            b.put_u64(sent_at.as_nanos());
            b.put_u32(payload.len() as u32);
            let mut out = WireMsg::from_bytes(b.freeze());
            out.append(payload);
            return out;
        }
        StreamMsg::Ack {
            session,
            cum_seq,
            consumed,
        } => {
            b.put_u8(KIND_ACK);
            b.put_u64(*session);
            b.put_u64(cum_seq.map_or(u64::MAX, |s| s));
            b.put_u64(*consumed);
        }
    }
    WireMsg::from_bytes(b.freeze())
}

/// Cursor-decode a scatter-gather body; `Data` payloads are sliced out of
/// the shared segments, not copied.
fn decode_msg(wire: &WireMsg) -> Option<StreamMsg> {
    let mut b = wire.cursor();
    if b.get_u8().ok()? != MAGIC_STREAM {
        return None;
    }
    match b.get_u8().ok()? {
        KIND_HELLO => {
            let session = b.get_u64().ok()?;
            let needs_ack_stream = b.get_u8().ok()? != 0;
            let receive_buffer = b.get_u64().ok()?;
            let raw = b.get_u64().ok()?;
            Some(StreamMsg::Hello {
                session,
                needs_ack_stream,
                receive_buffer,
                ack_is_for: (raw != u64::MAX).then_some(raw),
            })
        }
        KIND_DATA => {
            let session = b.get_u64().ok()?;
            let seq = b.get_u64().ok()?;
            let sent_at = SimTime::from_nanos(b.get_u64().ok()?);
            let len = b.get_u32().ok()? as usize;
            Some(StreamMsg::Data {
                session,
                seq,
                sent_at,
                payload: b.take_wire(len).ok()?,
            })
        }
        KIND_ACK => {
            let session = b.get_u64().ok()?;
            let raw = b.get_u64().ok()?;
            let consumed = b.get_u64().ok()?;
            Some(StreamMsg::Ack {
                session,
                cum_seq: (raw != u64::MAX).then_some(raw),
                consumed,
            })
        }
        _ => None,
    }
}

/// Which end of the session this host holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRole {
    /// We send data.
    Tx,
    /// We receive data.
    Rx,
}

/// Per-session statistics.
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Data messages sent (first transmissions).
    pub sent: Counter,
    /// Retransmissions.
    pub retransmitted: Counter,
    /// Messages delivered in order to the application.
    pub delivered: Counter,
    /// Payload bytes delivered.
    pub bytes_delivered: Counter,
    /// Cumulative acks sent.
    pub acks_sent: Counter,
    /// Offers refused by the send port (sender blocked).
    pub sender_blocked: Counter,
    /// Messages dropped at the receiver for buffer overflow.
    pub buffer_drops: Counter,
    /// Gaps detected (messages lost upstream).
    pub gaps: Counter,
    /// End-to-end delays of delivered messages, seconds.
    pub delays: Histogram,
}

/// One stream session endpoint.
pub struct Session {
    /// Globally unique session id (shared by both ends).
    pub id: u64,
    /// The other host.
    pub peer: HostId,
    /// Our role.
    pub role: StreamRole,
    /// The profile in force.
    pub profile: StreamProfile,
    /// Statistics.
    pub stats: SessionStats,
    /// Set once the session failed/ended.
    pub failed: bool,

    // Tx side.
    data_out: Option<StRmsId>,
    port: SendPort,
    next_seq: u64,
    unacked: VecDeque<(u64, Message, SimTime)>,
    rate: Option<RateLimiter>,
    ackwin: Option<AckWindow>,
    rwin: Option<ReceiverWindow>,
    rto_timer: Option<TimerHandle>,
    rto_backoff: u32,
    rate_timer_armed: bool,
    was_blocked: bool,

    // Rx side.
    data_in: Option<StRmsId>,
    ack_out: Option<StRmsId>,
    next_expected: u64,
    pending_buffer_bytes: u64,
    consumed_total: u64,
    since_last_ack: u32,
    ack_timer: Option<TimerHandle>,
    pending_acks: Vec<WireMsg>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("role", &self.role)
            .field("peer", &self.peer)
            .finish()
    }
}

impl Session {
    fn new(id: u64, peer: HostId, role: StreamRole, profile: StreamProfile) -> Self {
        let port = SendPort::new(profile.send_port_limit);
        Session {
            id,
            peer,
            role,
            port,
            profile,
            stats: SessionStats::default(),
            failed: false,
            data_out: None,
            next_seq: 0,
            unacked: VecDeque::new(),
            rate: None,
            ackwin: None,
            rwin: None,
            rto_timer: None,
            rto_backoff: 0,
            rate_timer_armed: false,
            was_blocked: false,
            data_in: None,
            ack_out: None,
            next_expected: 0,
            pending_buffer_bytes: 0,
            consumed_total: 0,
            since_last_ack: 0,
            ack_timer: None,
            pending_acks: Vec::new(),
        }
    }

    /// Bytes queued in the send port.
    pub fn send_port_queued(&self) -> u64 {
        self.port.queued_bytes()
    }

    /// Bytes occupying the receive buffer (delivered, not yet consumed).
    pub fn receive_buffer_pending(&self) -> u64 {
        self.pending_buffer_bytes
    }

    /// True once this endpoint's outbound ack channel is established.
    ///
    /// Until then acks are parked in `pending_acks`, so a receiver that
    /// loses data before this point cannot drive the sender's ARQ.
    pub fn ack_ready(&self) -> bool {
        self.ack_out.is_some()
    }
}

pub(crate) type StreamTap = Box<dyn FnMut(&mut Sim<Stack>, StreamEvent)>;

/// Per-host stream-protocol state.
#[derive(Default)]
pub struct StreamHost {
    sessions: DetHashMap<u64, Session>,
    by_st: DetHashMap<StRmsId, u64>,
    tokens: DetHashMap<StToken, (u64, StreamLane)>,
    tap: Option<StreamTap>,
}

impl std::fmt::Debug for StreamHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHost")
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamLane {
    Data,
    Ack,
}

/// The stream module's state.
#[derive(Debug)]
pub struct StreamState {
    hosts: Vec<StreamHost>,
    next_session: u64,
}

impl StreamState {
    /// State for `n` hosts.
    pub fn new(n: usize) -> Self {
        StreamState {
            hosts: (0..n).map(|_| StreamHost::default()).collect(),
            next_session: 1,
        }
    }

    /// Rebase session-id allocation to start at `base` (disjoint per
    /// logical process under the parallel executor; see
    /// [`crate::stack::Stack::enable_lp_mode`]).
    pub fn set_id_namespace(&mut self, base: u64) {
        self.next_session = base;
    }

    /// Access a host's sessions.
    pub fn host(&self, id: HostId) -> &StreamHost {
        &self.hosts[id.0 as usize]
    }

    /// Mutable access to a host's sessions.
    pub fn host_mut(&mut self, id: HostId) -> &mut StreamHost {
        &mut self.hosts[id.0 as usize]
    }

    /// A session by id at `host`.
    pub fn session(&self, host: HostId, session: u64) -> Option<&Session> {
        self.host(host).sessions.get(&session)
    }

    /// Mutable session access.
    pub fn session_mut(&mut self, host: HostId, session: u64) -> Option<&mut Session> {
        self.host_mut(host).sessions.get_mut(&session)
    }
}

impl StreamHost {
    /// Slot setter shared by the tap-installation APIs.
    pub(crate) fn install_tap(&mut self, tap: StreamTap) {
        self.tap = Some(tap);
    }
}

fn fire(sim: &mut Sim<Stack>, host: HostId, event: StreamEvent) {
    if let Some(mut tap) = sim.state.stream.host_mut(host).tap.take() {
        tap(sim, event);
        let slot = &mut sim.state.stream.host_mut(host).tap;
        if slot.is_none() {
            *slot = Some(tap);
        }
    }
}

// ---------------------------------------------------------------------------
// Opening
// ---------------------------------------------------------------------------

/// Open a stream session from `host` to `peer`. The result arrives at the
/// host's stream tap as [`StreamEvent::Opened`] / [`StreamEvent::OpenFailed`].
///
/// # Errors
///
/// Fails synchronously when the underlying ST creation does.
pub fn open(
    sim: &mut Sim<Stack>,
    host: HostId,
    peer: HostId,
    profile: StreamProfile,
) -> Result<u64, RmsError> {
    let session_id = {
        let s = &mut sim.state.stream;
        let id = s.next_session;
        s.next_session += 1;
        id
    };
    let mut session = Session::new(session_id, peer, StreamRole::Tx, profile.clone());
    // Capacity-dependent mechanisms are instantiated once the ST layer
    // reports the *negotiated* parameters (the provider may grant less
    // capacity than desired).
    if profile.receiver_fc {
        session.rwin = Some(ReceiverWindow::new(profile.receive_buffer));
    }
    sim.state
        .stream
        .host_mut(host)
        .sessions
        .insert(session_id, session);
    let fast_ack = profile.enforcement == CapacityEnforcement::AckBased;
    let token = st_engine::create(sim, host, peer, &data_request(&profile), fast_ack).inspect_err(
        |_| {
            sim.state.stream.host_mut(host).sessions.remove(&session_id);
        },
    )?;
    sim.state
        .stream
        .host_mut(host)
        .tokens
        .insert(token, (session_id, StreamLane::Data));
    Ok(session_id)
}

/// Bytes of stream-protocol header on a data message (magic + kind +
/// session + seq + sent_at + length).
pub const DATA_HEADER: u64 = 30;

fn data_params(profile: &StreamProfile) -> RmsParams {
    let mms = profile.max_message + DATA_HEADER;
    // A reliable stream asks the provider for a tight error rate so
    // corruption is caught by checksums and surfaces as clean loss the
    // retransmission machinery can repair; a lossy stream tolerates errors
    // and skips the checksum work (§2.5).
    let ber = if profile.reliable { 1e-9 } else { 1e-4 };
    RmsParams {
        reliability: rms_core::Reliability::Unreliable,
        security: rms_core::SecurityParams::NONE,
        capacity: profile.capacity.max(mms),
        max_message_size: mms,
        delay: profile.delay,
        error_rate: rms_core::BitErrorRate::new(ber).expect("valid"),
    }
}

fn data_request(profile: &StreamProfile) -> RmsRequest {
    let desired = data_params(profile);
    // Floor: the full message size is non-negotiable, but less in-flight
    // capacity is survivable — the flow-control windows adapt to whatever
    // was actually granted.
    let mut acceptable = desired.clone();
    acceptable.capacity = desired.max_message_size;
    RmsRequest::new(desired, acceptable).expect("desired covers floor")
}

fn ack_params() -> RmsParams {
    // Low capacity, low delay: serves flow-control acks; reliability acks
    // tolerate it ("low capacity, high delay" would also do, §2.5).
    RmsParams {
        reliability: rms_core::Reliability::Unreliable,
        security: rms_core::SecurityParams::NONE,
        capacity: 8 * 1024,
        max_message_size: 256,
        delay: DelayBound::best_effort_with(
            SimDuration::from_millis(50),
            SimDuration::from_micros(10),
        ),
        error_rate: rms_core::BitErrorRate::new(1e-4).expect("valid"),
    }
}

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

/// Offer a message on a Tx session. Refusal ([`WouldBlock`]) is the §4.4
/// sender-flow-control condition; the tap gets [`StreamEvent::Drained`]
/// when space is available again.
///
/// # Errors
///
/// [`WouldBlock`] when the send port is full.
pub fn send(
    sim: &mut Sim<Stack>,
    host: HostId,
    session: u64,
    msg: Message,
) -> Result<(), WouldBlock> {
    let blocked = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return Ok(()); // unknown/closed session: drop silently
        };
        if s.failed {
            return Ok(());
        }
        match s.port.offer(msg) {
            Ok(()) => None,
            Err(e) => {
                s.was_blocked = true;
                s.stats.sender_blocked.incr();
                Some(e)
            }
        }
    };
    if let Some(e) = blocked {
        let now = sim.now();
        let net = &mut sim.state.net;
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::StreamBlocked {
                    host: host.0,
                    session,
                },
            );
        }
        return Err(e);
    }
    pump(sim, host, session);
    Ok(())
}

/// Try to move messages from the send port onto the data stream, honouring
/// every active flow-control gate.
fn pump(sim: &mut Sim<Stack>, host: HostId, session: u64) {
    let now = sim.now();
    loop {
        // Gate check + dequeue under one borrow.
        let (st_rms, seq, msg) = {
            let Some(s) = sim.state.stream.session_mut(host, session) else {
                return;
            };
            if s.failed {
                return;
            }
            let Some(st_rms) = s.data_out else { return };
            let Some(next) = s.port.peek() else {
                // Port drained: wake a blocked sender.
                if s.was_blocked {
                    s.was_blocked = false;
                    fire(sim, host, StreamEvent::Drained { session });
                }
                return;
            };
            let len = next.len() as u64;
            let mut blocked_by_rate = false;
            if let Some(rate) = &mut s.rate {
                if !rate.may_send(now, len) {
                    blocked_by_rate = true;
                }
            }
            if blocked_by_rate {
                // Re-try when budget returns.
                let at = s
                    .rate
                    .as_ref()
                    .and_then(|r| r.next_release(now))
                    .unwrap_or(now + SimDuration::from_millis(1));
                if !s.rate_timer_armed {
                    s.rate_timer_armed = true;
                    let delay = at.saturating_since(now).max(SimDuration::from_nanos(1));
                    sim.schedule_in(delay, move |sim| {
                        if let Some(s) = sim.state.stream.session_mut(host, session) {
                            s.rate_timer_armed = false;
                        }
                        pump(sim, host, session);
                    });
                }
                return;
            }
            if let Some(w) = &s.ackwin {
                if !w.may_send(len) {
                    return; // unblocked by future acks
                }
            }
            if let Some(w) = &s.rwin {
                if !w.may_send(len) {
                    return; // unblocked by window updates
                }
            }
            let msg = s.port.pop().expect("peeked");
            let seq = s.next_seq;
            s.next_seq += 1;
            if let Some(rate) = &mut s.rate {
                rate.record_send(now, len);
            }
            if let Some(w) = &mut s.rwin {
                w.record_send(len);
            }
            s.stats.sent.incr();
            if s.profile.reliable {
                s.unacked.push_back((seq, msg.clone(), now));
            }
            (st_rms, seq, msg)
        };
        let bytes = encode_msg(&StreamMsg::Data {
            session,
            seq,
            sent_at: now,
            payload: msg.wire().clone(),
        });
        let len = msg.len() as u64;
        let mut wire = Message::from_wire(bytes);
        {
            // Open the lifecycle span here so it records the TransportSend
            // stage ahead of StSend (the ST engine adopts an existing span
            // instead of opening its own).
            let net = &mut sim.state.net;
            if net.obs.is_active() {
                wire.span = net.obs.start_span();
                net.obs.emit(
                    now,
                    ObsEvent::TransportSend {
                        host: host.0,
                        session,
                        seq,
                        bytes: len,
                        span: wire.span,
                    },
                );
            }
        }
        match st_engine::send(sim, host, st_rms, wire) {
            Ok(st_seq) => {
                // Ack-based capacity enforcement is clocked by ST fast
                // acknowledgements, which echo the ST sequence number.
                if let Some(s) = sim.state.stream.session_mut(host, session) {
                    if let Some(w) = &mut s.ackwin {
                        w.record_send(st_seq, len);
                    }
                }
            }
            Err(_) => {
                // Should not happen (sizes validated); count as a gap.
                if let Some(s) = sim.state.stream.session_mut(host, session) {
                    s.stats.gaps.incr();
                }
            }
        }
        ensure_rto(sim, host, session);
    }
}

fn ensure_rto(sim: &mut Sim<Stack>, host: HostId, session: u64) {
    let need = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        s.profile.reliable && !s.unacked.is_empty() && s.rto_timer.is_none()
    };
    if !need {
        return;
    }
    let rto = sim
        .state
        .stream
        .session(host, session)
        .map(|s| {
            // Exponential backoff keeps spurious retransmissions from
            // melting down a slow path.
            s.profile.rto.saturating_mul(1u64 << s.rto_backoff.min(6))
        })
        .unwrap_or(SimDuration::from_millis(300));
    let handle = sim.schedule_timer(rto, move |sim| on_rto(sim, host, session));
    if let Some(s) = sim.state.stream.session_mut(host, session) {
        s.rto_timer = Some(handle);
    } else {
        handle.cancel();
    }
}

fn on_rto(sim: &mut Sim<Stack>, host: HostId, session: u64) {
    // Timeout recovery retransmits only the *oldest* unacknowledged
    // message. Blasting the whole window on every timeout floods a slow
    // bottleneck with duplicate bursts faster than it drains (the classic
    // go-back-N congestion spiral); the rest of the window is resent
    // ack-clocked as the receiver's cumulative acks advance.
    let verdict = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        s.rto_timer = None;
        if s.failed || s.unacked.is_empty() {
            return;
        }
        if s.rto_backoff >= s.profile.max_retries {
            // Bounded retry: the peer (or the path) is gone — surface a
            // typed outcome instead of backing off forever.
            s.failed = true;
            if let Some(t) = s.ack_timer.take() {
                t.cancel();
            }
            None
        } else {
            let Some(st_rms) = s.data_out else { return };
            let head = s.unacked.front().cloned().expect("non-empty");
            s.stats.retransmitted.incr();
            s.rto_backoff = (s.rto_backoff + 1).min(8);
            Some((st_rms, head))
        }
    };
    let Some((st_rms, frame)) = verdict else {
        {
            let now = sim.now();
            let net = &mut sim.state.net;
            if net.obs.is_active() {
                net.obs.emit(
                    now,
                    ObsEvent::StreamRetriesExhausted {
                        host: host.0,
                        session,
                    },
                );
                net.obs.emit(
                    now,
                    ObsEvent::StreamEnd {
                        host: host.0,
                        session,
                        failed: true,
                    },
                );
            }
        }
        fire(
            sim,
            host,
            StreamEvent::Ended {
                session,
                reason: EndReason::RetriesExhausted,
            },
        );
        return;
    };
    let (seq, msg, sent_at) = frame;
    let bytes = encode_msg(&StreamMsg::Data {
        session,
        seq,
        sent_at,
        payload: msg.wire().clone(),
    });
    let _ = st_engine::send(sim, host, st_rms, Message::from_wire(bytes));
    ensure_rto(sim, host, session);
}

/// Ack-clocked retransmission: after cumulative progress, resend the new
/// head of the unacked queue (the receiver dropped everything past the
/// original gap, so it needs them in order anyway).
fn retransmit_head(sim: &mut Sim<Stack>, host: HostId, session: u64) {
    let item = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        if s.failed {
            return;
        }
        match (s.data_out, s.unacked.front().cloned()) {
            (Some(st_rms), Some(head)) => {
                s.stats.retransmitted.incr();
                Some((st_rms, head))
            }
            _ => None,
        }
    };
    if let Some((st_rms, (seq, msg, sent_at))) = item {
        let bytes = encode_msg(&StreamMsg::Data {
            session,
            seq,
            sent_at,
            payload: msg.wire().clone(),
        });
        let _ = st_engine::send(sim, host, st_rms, Message::from_wire(bytes));
    }
    ensure_rto(sim, host, session);
}

/// Receiver side: the application consumed `bytes` from the session's
/// buffer, opening the receiver-flow-control window.
pub fn consume(sim: &mut Sim<Stack>, host: HostId, session: u64, bytes: u64) {
    let update = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        s.pending_buffer_bytes = s.pending_buffer_bytes.saturating_sub(bytes);
        s.consumed_total += bytes;
        s.profile.receiver_fc
    };
    if update {
        send_ack(sim, host, session, true);
    }
}

// ---------------------------------------------------------------------------
// Receiving
// ---------------------------------------------------------------------------

/// Does the stream module own this ST RMS at `host`?
pub fn owns(stack: &Stack, host: HostId, st_rms: StRmsId) -> bool {
    stack.stream.host(host).by_st.contains_key(&st_rms)
}

/// Does the stream module await this ST creation token?
pub fn claims_token(stack: &Stack, host: HostId, token: StToken) -> bool {
    stack.stream.host(host).tokens.contains_key(&token)
}

/// Handle an ST lifecycle event addressed to the stream module.
pub fn on_st_event(sim: &mut Sim<Stack>, host: HostId, event: StEvent) {
    match event {
        StEvent::Created {
            token,
            st_rms,
            params,
        } => {
            let Some((session, lane)) = sim.state.stream.host_mut(host).tokens.remove(&token)
            else {
                return;
            };
            sim.state
                .stream
                .host_mut(host)
                .by_st
                .insert(st_rms, session);
            match lane {
                StreamLane::Data => {
                    let (peer_buffer, needs_ack) = {
                        let Some(s) = sim.state.stream.session_mut(host, session) else {
                            return;
                        };
                        s.data_out = Some(st_rms);
                        // Build capacity enforcement from the *actual*
                        // negotiated parameters (§4.4).
                        match s.profile.enforcement {
                            CapacityEnforcement::None => {}
                            CapacityEnforcement::RateBased => {
                                s.rate = Some(RateLimiter::new(&params));
                            }
                            CapacityEnforcement::AckBased => {
                                s.ackwin = Some(AckWindow::new(params.capacity));
                            }
                        }
                        (s.profile.receive_buffer, s.profile.needs_ack_stream())
                    };
                    let hello = encode_msg(&StreamMsg::Hello {
                        session,
                        needs_ack_stream: needs_ack,
                        receive_buffer: peer_buffer,
                        ack_is_for: None,
                    });
                    let _ = st_engine::send(sim, host, st_rms, Message::from_wire(hello));
                    fire(sim, host, StreamEvent::Opened { session });
                    pump(sim, host, session);
                }
                StreamLane::Ack => {
                    let pending = {
                        let Some(s) = sim.state.stream.session_mut(host, session) else {
                            return;
                        };
                        s.ack_out = Some(st_rms);
                        std::mem::take(&mut s.pending_acks)
                    };
                    for bytes in pending {
                        let _ = st_engine::send(sim, host, st_rms, Message::from_wire(bytes));
                    }
                }
            }
        }
        StEvent::CreateFailed { token, reason } => {
            let Some((session, lane)) = sim.state.stream.host_mut(host).tokens.remove(&token)
            else {
                return;
            };
            if lane == StreamLane::Data {
                if std::env::var_os("DASH_DEBUG").is_some() {
                    eprintln!("stream open failed host={host:?} session={session}: {reason:?}");
                }
                sim.state.stream.host_mut(host).sessions.remove(&session);
                {
                    let now = sim.now();
                    let net = &mut sim.state.net;
                    if net.obs.is_active() {
                        net.obs.emit(
                            now,
                            ObsEvent::StreamOpenFailed {
                                host: host.0,
                                session,
                            },
                        );
                    }
                }
                fire(
                    sim,
                    host,
                    StreamEvent::OpenFailed {
                        session,
                        reason: RmsError::CreationRejected(reason),
                    },
                );
            }
        }
        StEvent::Failed { st_rms, reason } => {
            end_by_st(sim, host, st_rms, EndReason::ChannelFailed(reason));
        }
        StEvent::Closed { st_rms } => {
            end_by_st(sim, host, st_rms, EndReason::Closed);
        }
        StEvent::FastAck { st_rms, seq } => {
            let Some(session) = sim.state.stream.host(host).by_st.get(&st_rms).copied() else {
                return;
            };
            if let Some(s) = sim.state.stream.session_mut(host, session) {
                if let Some(w) = &mut s.ackwin {
                    w.ack_through(seq);
                }
            }
            pump(sim, host, session);
        }
        _ => {}
    }
}

/// Tear down the session carried by `st_rms` (if any) and surface a typed
/// [`StreamEvent::Ended`] to the application.
fn end_by_st(sim: &mut Sim<Stack>, host: HostId, st_rms: StRmsId, reason: EndReason) {
    let Some(session) = sim.state.stream.host_mut(host).by_st.remove(&st_rms) else {
        return;
    };
    let existed = {
        match sim.state.stream.session_mut(host, session) {
            Some(s) if !s.failed => {
                s.failed = true;
                if let Some(t) = s.rto_timer.take() {
                    t.cancel();
                }
                if let Some(t) = s.ack_timer.take() {
                    t.cancel();
                }
                true
            }
            _ => false,
        }
    };
    if existed {
        {
            let now = sim.now();
            let net = &mut sim.state.net;
            if net.obs.is_active() {
                net.obs.emit(
                    now,
                    ObsEvent::StreamEnd {
                        host: host.0,
                        session,
                        failed: !matches!(reason, EndReason::Closed),
                    },
                );
            }
        }
        fire(sim, host, StreamEvent::Ended { session, reason });
    }
}

/// Handle an ST delivery addressed to the stream module.
pub fn on_delivery(
    sim: &mut Sim<Stack>,
    host: HostId,
    st_rms: StRmsId,
    msg: Message,
    _info: DeliveryInfo,
) {
    let Some(decoded) = decode_msg(msg.wire()) else {
        return;
    };
    match decoded {
        StreamMsg::Hello {
            session,
            needs_ack_stream,
            receive_buffer,
            ack_is_for,
        } => {
            if let Some(tx_session) = ack_is_for {
                // This is the peer's ack stream announcing itself.
                sim.state
                    .stream
                    .host_mut(host)
                    .by_st
                    .insert(st_rms, tx_session);
                return;
            }
            // A new incoming data session.
            let peer = match sim.state.st_ref().host(host).streams.get(&st_rms) {
                Some(s) => s.peer,
                None => return,
            };
            if sim.state.stream.host(host).sessions.contains_key(&session) {
                return; // duplicate hello
            }
            let profile = StreamProfile {
                receive_buffer,
                receiver_fc: needs_ack_stream,
                reliable: needs_ack_stream,
                ..StreamProfile::default()
            };
            let mut s = Session::new(session, peer, StreamRole::Rx, profile);
            s.data_in = Some(st_rms);
            sim.state.stream.host_mut(host).sessions.insert(session, s);
            sim.state
                .stream
                .host_mut(host)
                .by_st
                .insert(st_rms, session);
            if needs_ack_stream {
                // Create the reverse acknowledgement stream (§2.5).
                if let Ok(token) =
                    st_engine::create(sim, host, peer, &RmsRequest::exact(ack_params()), false)
                {
                    sim.state
                        .stream
                        .host_mut(host)
                        .tokens
                        .insert(token, (session, StreamLane::Ack));
                }
            }
            fire(sim, host, StreamEvent::Incoming { session, peer });
        }
        StreamMsg::Data {
            session,
            seq,
            sent_at,
            payload,
        } => {
            sim.state
                .stream
                .host_mut(host)
                .by_st
                .insert(st_rms, session);
            handle_data(sim, host, session, seq, sent_at, payload);
        }
        StreamMsg::Ack {
            session,
            cum_seq,
            consumed,
        } => {
            sim.state
                .stream
                .host_mut(host)
                .by_st
                .insert(st_rms, session);
            {
                let Some(s) = sim.state.stream.session_mut(host, session) else {
                    return;
                };
                if let Some(cum) = cum_seq {
                    let mut progressed = false;
                    while let Some(&(sq, _, _)) = s.unacked.front() {
                        if sq <= cum {
                            s.unacked.pop_front();
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                    if progressed {
                        s.rto_backoff = 0;
                        // Restart the clock for the remaining tail.
                        if let Some(t) = s.rto_timer.take() {
                            t.cancel();
                        }
                    }
                    if let Some(w) = &mut s.rwin {
                        w.update_consumed(consumed);
                    }
                    let recovering = progressed && !s.unacked.is_empty();
                    if recovering {
                        retransmit_head(sim, host, session);
                    }
                    pump(sim, host, session);
                    return;
                }
                if let Some(w) = &mut s.rwin {
                    w.update_consumed(consumed);
                }
            }
            pump(sim, host, session);
        }
    }
}

fn handle_data(
    sim: &mut Sim<Stack>,
    host: HostId,
    session: u64,
    seq: u64,
    sent_at: SimTime,
    payload: WireMsg,
) {
    let now = sim.now();
    let deliver = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        if s.failed {
            return;
        }
        let len = payload.len() as u64;
        if seq != s.next_expected {
            if seq > s.next_expected {
                // Gap: upstream loss (go-back-N: wait for retransmission
                // if reliable; count and skip if not).
                if s.profile.reliable {
                    s.stats.gaps.incr();
                    // Re-ack to hint the sender.
                    None
                } else {
                    s.stats.gaps.add(seq - s.next_expected);
                    s.next_expected = seq + 1;
                    Some((len, true))
                }
            } else {
                // Duplicate of something already delivered.
                None
            }
        } else if s.profile.receiver_fc && s.pending_buffer_bytes + len > s.profile.receive_buffer {
            // Receive buffer full: drop; the sender's window should have
            // prevented this (counted to make violations visible).
            s.stats.buffer_drops.incr();
            None
        } else {
            s.next_expected = seq + 1;
            Some((len, false))
        }
    };
    match deliver {
        Some((len, _lossy_skip)) => {
            {
                let s = sim
                    .state
                    .stream
                    .session_mut(host, session)
                    .expect("session checked");
                s.stats.delivered.incr();
                s.stats.bytes_delivered.add(len);
                s.stats
                    .delays
                    .record(now.saturating_since(sent_at).as_secs_f64());
                if s.profile.receiver_fc {
                    s.pending_buffer_bytes += len;
                } else {
                    s.consumed_total += len;
                }
                s.since_last_ack += 1;
            }
            if sim.state.net.obs.is_active() {
                sim.state.net.obs.emit(
                    now,
                    ObsEvent::StreamDeliver {
                        host: host.0,
                        session,
                        seq,
                    },
                );
            }
            let msg = Message::from_wire(payload);
            fire(
                sim,
                host,
                StreamEvent::Delivered {
                    session,
                    msg,
                    seq,
                    delay: now.saturating_since(sent_at),
                },
            );
            maybe_ack(sim, host, session);
        }
        None => {
            // Duplicate or gap: re-send the cumulative ack immediately so a
            // retransmitting sender converges even when its last ack was
            // lost (classic go-back-N requirement).
            let needs = sim
                .state
                .stream
                .session(host, session)
                .map(|s| s.profile.needs_ack_stream())
                .unwrap_or(false);
            if needs {
                send_ack(sim, host, session, true);
            }
        }
    }
}

fn maybe_ack(sim: &mut Sim<Stack>, host: HostId, session: u64) {
    let decision = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        if !s.profile.needs_ack_stream() {
            return;
        }
        if s.since_last_ack >= s.profile.ack_every {
            AckDecision::Now
        } else if s.since_last_ack > 0 && s.ack_timer.is_none() {
            AckDecision::Delayed(s.profile.ack_delay)
        } else {
            AckDecision::No
        }
    };
    match decision {
        AckDecision::Now => send_ack(sim, host, session, false),
        AckDecision::Delayed(d) => {
            let handle = sim.schedule_timer(d, move |sim| {
                if let Some(s) = sim.state.stream.session_mut(host, session) {
                    s.ack_timer = None;
                }
                send_ack(sim, host, session, false);
            });
            if let Some(s) = sim.state.stream.session_mut(host, session) {
                s.ack_timer = Some(handle);
            }
        }
        AckDecision::No => {}
    }
}

enum AckDecision {
    Now,
    Delayed(SimDuration),
    No,
}

fn send_ack(sim: &mut Sim<Stack>, host: HostId, session: u64, force: bool) {
    let (bytes, target, tx_session) = {
        let Some(s) = sim.state.stream.session_mut(host, session) else {
            return;
        };
        if !force && s.since_last_ack == 0 {
            return;
        }
        s.since_last_ack = 0;
        if let Some(t) = s.ack_timer.take() {
            t.cancel();
        }
        s.stats.acks_sent.incr();
        let cum = s.next_expected.checked_sub(1);
        let bytes = encode_msg(&StreamMsg::Ack {
            session,
            cum_seq: cum,
            consumed: s.consumed_total,
        });
        (bytes, s.ack_out, session)
    };
    {
        let now = sim.now();
        let net = &mut sim.state.net;
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::StreamAck {
                    host: host.0,
                    session,
                },
            );
        }
    }
    match target {
        Some(st_rms) => {
            // First message on the ack stream announces its purpose.
            let announced = sim
                .state
                .stream
                .session(host, session)
                .map(|s| s.stats.acks_sent.get() > 1)
                .unwrap_or(true);
            if !announced {
                let hello = encode_msg(&StreamMsg::Hello {
                    session: tx_session,
                    needs_ack_stream: false,
                    receive_buffer: 0,
                    ack_is_for: Some(tx_session),
                });
                let _ = st_engine::send(sim, host, st_rms, Message::from_wire(hello));
            }
            let _ = st_engine::send(sim, host, st_rms, Message::from_wire(bytes));
        }
        None => {
            // Ack stream not ready yet: hold the ack.
            if let Some(s) = sim.state.stream.session_mut(host, session) {
                s.pending_acks.push(bytes);
                if s.pending_acks.len() > 16 {
                    s.pending_acks.remove(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let msgs = [
            StreamMsg::Hello {
                session: 5,
                needs_ack_stream: true,
                receive_buffer: 4096,
                ack_is_for: None,
            },
            StreamMsg::Hello {
                session: 6,
                needs_ack_stream: false,
                receive_buffer: 0,
                ack_is_for: Some(5),
            },
            StreamMsg::Data {
                session: 5,
                seq: 9,
                sent_at: SimTime::from_nanos(77),
                payload: WireMsg::from_bytes(bytes::Bytes::from_static(b"body")),
            },
            StreamMsg::Ack {
                session: 5,
                cum_seq: Some(8),
                consumed: 1000,
            },
            StreamMsg::Ack {
                session: 5,
                cum_seq: None,
                consumed: 0,
            },
        ];
        for m in msgs {
            assert_eq!(decode_msg(&encode_msg(&m)), Some(m));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            decode_msg(&WireMsg::from_bytes(bytes::Bytes::from_static(b"xy"))),
            None
        );
        assert_eq!(
            decode_msg(&WireMsg::from_bytes(bytes::Bytes::from_static(&[
                MAGIC_STREAM,
                9
            ]))),
            None
        );
    }

    #[test]
    fn profiles_reflect_paper_table() {
        let bulk = StreamProfile::bulk();
        assert!(bulk.reliable && bulk.receiver_fc);
        assert!(bulk.needs_ack_stream());
        let voice = StreamProfile::voice();
        assert!(!voice.reliable && !voice.needs_ack_stream());
        assert_eq!(voice.enforcement, CapacityEnforcement::RateBased);
        assert!(voice.delay.fixed < bulk.delay.fixed);
    }
}
