//! Sender flow control via a bounded local IPC port (paper §4.4).
//!
//! "This is done in the DASH kernel using a flow controlled local IPC port
//! for message-passing between the sender and the send protocol. A sender
//! blocks when a port queue size limit is reached. The sending transport
//! protocol stops reading messages from the port while it is prevented from
//! sending because of RMS capacity enforcement or receiver flow control."
//!
//! [`SendPort`] is that port: the application offers messages; the
//! transport drains them as its capacity/receiver windows permit. A refused
//! offer is the "blocked sender" condition.

use std::collections::VecDeque;

use rms_core::message::Message;

/// Why an offer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldBlock {
    /// Bytes currently queued.
    pub queued_bytes: u64,
    /// The configured limit.
    pub limit_bytes: u64,
}

impl std::fmt::Display for WouldBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "send port full ({} of {} bytes queued)",
            self.queued_bytes, self.limit_bytes
        )
    }
}

impl std::error::Error for WouldBlock {}

/// A bounded queue between an application sender and its send protocol.
#[derive(Debug)]
pub struct SendPort {
    queue: VecDeque<Message>,
    limit_bytes: u64,
    queued_bytes: u64,
    /// Offers refused because the port was full (the sender "blocked").
    pub blocked_count: u64,
    /// Messages accepted.
    pub accepted: u64,
}

impl SendPort {
    /// A port holding at most `limit_bytes` of queued payload.
    pub fn new(limit_bytes: u64) -> Self {
        SendPort {
            queue: VecDeque::new(),
            limit_bytes,
            queued_bytes: 0,
            blocked_count: 0,
            accepted: 0,
        }
    }

    /// Offer a message from the application.
    ///
    /// # Errors
    ///
    /// [`WouldBlock`] when the queue limit would be exceeded (the sender
    /// must retry after the port drains).
    pub fn offer(&mut self, msg: Message) -> Result<(), WouldBlock> {
        let len = msg.len() as u64;
        if self.queued_bytes + len > self.limit_bytes && !self.queue.is_empty() {
            self.blocked_count += 1;
            return Err(WouldBlock {
                queued_bytes: self.queued_bytes,
                limit_bytes: self.limit_bytes,
            });
        }
        // An oversized message on an empty queue is admitted so a message
        // larger than the limit can still ever be sent.
        if self.queued_bytes + len > self.limit_bytes && self.queue.is_empty() {
            // admitted as the sole occupant
        }
        self.queued_bytes += len;
        self.queue.push_back(msg);
        self.accepted += 1;
        Ok(())
    }

    /// Peek at the next message without removing it.
    pub fn peek(&self) -> Option<&Message> {
        self.queue.front()
    }

    /// Take the next message (the transport drained it).
    pub fn pop(&mut self) -> Option<Message> {
        let msg = self.queue.pop_front()?;
        self.queued_bytes -= msg.len() as u64;
        Some(msg)
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes waiting.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// True if a message of `len` bytes would currently be accepted.
    pub fn has_space(&self, len: u64) -> bool {
        self.queue.is_empty() || self.queued_bytes + len <= self.limit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_limit() {
        let mut p = SendPort::new(250);
        assert!(p.offer(Message::zeroes(100)).is_ok());
        assert!(p.offer(Message::zeroes(100)).is_ok());
        let err = p.offer(Message::zeroes(100)).unwrap_err();
        assert_eq!(err.queued_bytes, 200);
        assert_eq!(p.blocked_count, 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn draining_frees_space() {
        let mut p = SendPort::new(100);
        p.offer(Message::zeroes(100)).unwrap();
        assert!(p.offer(Message::zeroes(1)).is_err());
        assert_eq!(p.pop().unwrap().len(), 100);
        assert!(p.offer(Message::zeroes(1)).is_ok());
        assert_eq!(p.queued_bytes(), 1);
    }

    #[test]
    fn oversized_message_admitted_when_empty() {
        let mut p = SendPort::new(10);
        assert!(p.offer(Message::zeroes(50)).is_ok());
        assert!(p.offer(Message::zeroes(1)).is_err());
    }

    #[test]
    fn fifo_order() {
        let mut p = SendPort::new(1000);
        p.offer(Message::new(vec![1])).unwrap();
        p.offer(Message::new(vec![2])).unwrap();
        assert_eq!(p.peek().unwrap().payload()[0], 1);
        assert_eq!(p.pop().unwrap().payload()[0], 1);
        assert_eq!(p.pop().unwrap().payload()[0], 2);
        assert!(p.pop().is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn has_space_matches_offer() {
        let mut p = SendPort::new(100);
        assert!(p.has_space(100));
        p.offer(Message::zeroes(60)).unwrap();
        assert!(p.has_space(40));
        assert!(!p.has_space(41));
    }
}
