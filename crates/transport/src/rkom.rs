//! RKOM — the Remote Kernel Operation Mechanism (paper §3.3).
//!
//! "All request/reply communication uses the DASH Remote Kernel Operation
//! Mechanism (RKOM). ... The RKOM module maintains an RKOM channel to each
//! active peer. Such a channel consists of four ST RMS's, one low-delay and
//! one high-delay RMS in each direction. The low-delay RMS's are used for
//! initial request and reply messages, and the high-delay RMS's are used
//! for retransmissions and acknowledgements."
//!
//! Semantics: at-most-once execution via a per-(client, call) duplicate
//! cache at the server, released by a reply acknowledgement on the
//! high-delay RMS.

use rms_core::hash::DetHashMap;

use bytes::{BufMut, Bytes, BytesMut};
use dash_net::ids::HostId;
use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::obs::ObsEvent;
use dash_sim::stats::{Counter, Histogram};
use dash_sim::time::{SimDuration, SimTime};
use dash_subtransport::engine as st_engine;
use dash_subtransport::ids::{StRmsId, StToken};
use dash_subtransport::st::{StEvent, StWorld as _};
use rms_core::delay::DelayBound;
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;
use rms_core::{RmsError, RmsRequest};

use crate::stack::{Stack, MAGIC_RKOM};

/// Why a call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RkomError {
    /// No reply after every retransmission.
    Timeout,
    /// The server has no handler for the service.
    NoSuchService,
    /// The RKOM channel could not be established.
    ChannelFailed(RmsError),
}

impl std::fmt::Display for RkomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RkomError::Timeout => write!(f, "call timed out"),
            RkomError::NoSuchService => write!(f, "no such service"),
            RkomError::ChannelFailed(e) => write!(f, "channel failed: {e}"),
        }
    }
}

impl std::error::Error for RkomError {}

/// RKOM configuration.
#[derive(Debug, Clone)]
pub struct RkomConfig {
    /// Retransmission timeout for outstanding calls.
    pub retry_timeout: SimDuration,
    /// Retransmissions before giving up.
    pub max_retries: u32,
    /// Delay bound requested for the low-delay (initial) RMSs.
    pub low_delay: SimDuration,
    /// Delay bound requested for the high-delay (retransmission/ack) RMSs.
    pub high_delay: SimDuration,
    /// Capacity of each channel RMS ("may be large, unless it is known
    /// that request or reply messages will be small and infrequent", §2.5).
    pub capacity: u64,
    /// Maximum request/reply payload size.
    pub max_message: u64,
}

impl Default for RkomConfig {
    fn default() -> Self {
        RkomConfig {
            retry_timeout: SimDuration::from_millis(200),
            max_retries: 4,
            low_delay: SimDuration::from_millis(20),
            high_delay: SimDuration::from_millis(200),
            capacity: 64 * 1024,
            max_message: 16 * 1024,
        }
    }
}

const KIND_REQUEST: u8 = 1;
const KIND_REPLY: u8 = 2;
const KIND_REPLY_ACK: u8 = 3;

const STATUS_OK: u8 = 0;
const STATUS_NO_SERVICE: u8 = 1;

#[derive(Debug, Clone, PartialEq)]
enum RkomMsg {
    Request {
        call: u64,
        service: u16,
        payload: Bytes,
    },
    Reply {
        call: u64,
        status: u8,
        payload: Bytes,
    },
    ReplyAck {
        call: u64,
    },
}

/// Encode into a scatter-gather wire body: one owned header chunk plus
/// the caller's payload handle shared as a segment (no copy).
fn encode_msg(m: &RkomMsg) -> WireMsg {
    let mut b = BytesMut::with_capacity(32);
    b.put_u8(MAGIC_RKOM);
    match m {
        RkomMsg::Request {
            call,
            service,
            payload,
        } => {
            b.put_u8(KIND_REQUEST);
            b.put_u64(*call);
            b.put_u16(*service);
            b.put_u32(payload.len() as u32);
            let mut out = WireMsg::from_bytes(b.freeze());
            out.push(payload.clone());
            return out;
        }
        RkomMsg::Reply {
            call,
            status,
            payload,
        } => {
            b.put_u8(KIND_REPLY);
            b.put_u64(*call);
            b.put_u8(*status);
            b.put_u32(payload.len() as u32);
            let mut out = WireMsg::from_bytes(b.freeze());
            out.push(payload.clone());
            return out;
        }
        RkomMsg::ReplyAck { call } => {
            b.put_u8(KIND_REPLY_ACK);
            b.put_u64(*call);
        }
    }
    WireMsg::from_bytes(b.freeze())
}

fn decode_msg(wire: &WireMsg) -> Option<RkomMsg> {
    let mut b = wire.cursor();
    if b.get_u8().ok()? != MAGIC_RKOM {
        return None;
    }
    match b.get_u8().ok()? {
        KIND_REQUEST => {
            let call = b.get_u64().ok()?;
            let service = b.get_u16().ok()?;
            let len = b.get_u32().ok()? as usize;
            Some(RkomMsg::Request {
                call,
                service,
                payload: b.take_bytes(len).ok()?,
            })
        }
        KIND_REPLY => {
            let call = b.get_u64().ok()?;
            let status = b.get_u8().ok()?;
            let len = b.get_u32().ok()? as usize;
            Some(RkomMsg::Reply {
                call,
                status,
                payload: b.take_bytes(len).ok()?,
            })
        }
        KIND_REPLY_ACK => Some(RkomMsg::ReplyAck {
            call: b.get_u64().ok()?,
        }),
        _ => None,
    }
}

/// Which half of a channel an ST RMS implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Low,
    High,
}

/// The outgoing half of an RKOM channel to one peer.
#[derive(Debug, Default)]
struct Channel {
    low_out: Option<StRmsId>,
    high_out: Option<StRmsId>,
    creating: bool,
    /// Encoded messages waiting for the channel (lane, bytes).
    waiting: Vec<(Lane, WireMsg)>,
}

impl Channel {
    fn ready(&self) -> bool {
        self.low_out.is_some() && self.high_out.is_some()
    }
}

/// A service handler: consumes the request payload, returns the reply.
pub type Handler = Box<dyn FnMut(&mut Sim<Stack>, HostId, Bytes) -> Bytes>;

/// Completion callback of a call.
pub type CallCallback = Box<dyn FnOnce(&mut Sim<Stack>, Result<Bytes, RkomError>)>;

struct Call {
    peer: HostId,
    service: u16,
    payload: Bytes,
    attempts: u32,
    timer: Option<TimerHandle>,
    started: SimTime,
}

/// RKOM statistics (per host).
#[derive(Debug, Default)]
pub struct RkomStats {
    /// Calls issued.
    pub calls: Counter,
    /// Calls completed successfully.
    pub completed: Counter,
    /// Calls failed.
    pub failed: Counter,
    /// Request retransmissions (on the high-delay RMS).
    pub retransmissions: Counter,
    /// Duplicate requests served from the reply cache.
    pub duplicates_served: Counter,
    /// Requests handled by services.
    pub served: Counter,
    /// Round-trip latencies of completed calls, seconds.
    pub latency: Histogram,
}

/// Per-host RKOM state.
#[derive(Default)]
pub struct RkomHost {
    channels: DetHashMap<HostId, Channel>,
    services: DetHashMap<u16, Option<Handler>>,
    calls: DetHashMap<u64, Call>,
    call_cbs: DetHashMap<u64, CallCallback>,
    reply_cache: DetHashMap<(HostId, u64), WireMsg>,
    owned: DetHashMap<StRmsId, HostId>,
    tokens: DetHashMap<StToken, (HostId, Lane)>,
    /// Statistics.
    pub stats: RkomStats,
}

impl std::fmt::Debug for RkomHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RkomHost")
            .field("channels", &self.channels.len())
            .field("calls", &self.calls.len())
            .finish()
    }
}

/// The RKOM module's state.
#[derive(Debug)]
pub struct RkomState {
    /// Configuration.
    pub config: RkomConfig,
    hosts: Vec<RkomHost>,
    next_call: u64,
}

impl RkomState {
    /// State for `n` hosts with default configuration.
    pub fn new(n: usize) -> Self {
        RkomState {
            config: RkomConfig::default(),
            hosts: (0..n).map(|_| RkomHost::default()).collect(),
            next_call: 1,
        }
    }

    /// Rebase call-id allocation to start at `base` (disjoint per
    /// logical process under the parallel executor; see
    /// [`crate::stack::Stack::enable_lp_mode`]).
    pub fn set_id_namespace(&mut self, base: u64) {
        self.next_call = base;
    }

    /// Access a host's RKOM state.
    pub fn host(&self, id: HostId) -> &RkomHost {
        &self.hosts[id.0 as usize]
    }

    /// Mutable access to a host's RKOM state.
    pub fn host_mut(&mut self, id: HostId) -> &mut RkomHost {
        &mut self.hosts[id.0 as usize]
    }
}

/// Register a service handler at `host` under `service`.
pub fn register_service(
    stack: &mut Stack,
    host: HostId,
    service: u16,
    handler: impl FnMut(&mut Sim<Stack>, HostId, Bytes) -> Bytes + 'static,
) {
    stack
        .rkom
        .host_mut(host)
        .services
        .insert(service, Some(Box::new(handler)));
}

/// Issue a request/reply call from `host` to `service` at `peer`. The
/// completion callback receives the reply payload or an [`RkomError`].
pub fn call(
    sim: &mut Sim<Stack>,
    host: HostId,
    peer: HostId,
    service: u16,
    payload: Bytes,
    cb: impl FnOnce(&mut Sim<Stack>, Result<Bytes, RkomError>) + 'static,
) -> u64 {
    let call_id = {
        let r = &mut sim.state.rkom;
        let id = r.next_call;
        r.next_call += 1;
        id
    };
    let now = sim.now();
    {
        let rh = sim.state.rkom.host_mut(host);
        rh.stats.calls.incr();
        rh.calls.insert(
            call_id,
            Call {
                peer,
                service,
                payload: payload.clone(),
                attempts: 0,
                timer: None,
                started: now,
            },
        );
        rh.call_cbs.insert(call_id, Box::new(cb));
    }
    {
        let net = &mut sim.state.net;
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::RkomSend {
                    host: host.0,
                    peer: peer.0,
                    call: call_id,
                },
            );
        }
    }
    let msg = encode_msg(&RkomMsg::Request {
        call: call_id,
        service,
        payload,
    });
    send_on_channel(sim, host, peer, Lane::Low, msg);
    arm_call_timer(sim, host, call_id);
    call_id
}

fn arm_call_timer(sim: &mut Sim<Stack>, host: HostId, call_id: u64) {
    let timeout = sim.state.rkom.config.retry_timeout;
    let handle = sim.schedule_timer(timeout, move |sim| on_call_timeout(sim, host, call_id));
    if let Some(c) = sim.state.rkom.host_mut(host).calls.get_mut(&call_id) {
        if let Some(t) = c.timer.take() {
            t.cancel();
        }
        c.timer = Some(handle);
    } else {
        handle.cancel();
    }
}

fn on_call_timeout(sim: &mut Sim<Stack>, host: HostId, call_id: u64) {
    let (peer, msg, give_up) = {
        let config_max = sim.state.rkom.config.max_retries;
        let rh = sim.state.rkom.host_mut(host);
        let Some(c) = rh.calls.get_mut(&call_id) else {
            return;
        };
        c.attempts += 1;
        if c.attempts > config_max {
            (c.peer, None, true)
        } else {
            rh.stats.retransmissions.incr();
            (
                c.peer,
                Some(encode_msg(&RkomMsg::Request {
                    call: call_id,
                    service: c.service,
                    payload: c.payload.clone(),
                })),
                false,
            )
        }
    };
    if give_up {
        fail_call(sim, host, call_id, RkomError::Timeout);
        return;
    }
    if let Some(msg) = msg {
        // Retransmissions travel on the high-delay RMS (§3.3).
        send_on_channel(sim, host, peer, Lane::High, msg);
        arm_call_timer(sim, host, call_id);
    }
}

fn fail_call(sim: &mut Sim<Stack>, host: HostId, call_id: u64, err: RkomError) {
    let cb = {
        let rh = sim.state.rkom.host_mut(host);
        if let Some(c) = rh.calls.remove(&call_id) {
            if let Some(t) = c.timer {
                t.cancel();
            }
        }
        rh.stats.failed.incr();
        rh.call_cbs.remove(&call_id)
    };
    if let Some(cb) = cb {
        cb(sim, Err(err));
    }
}

// ---------------------------------------------------------------------------
// Channel maintenance
// ---------------------------------------------------------------------------

/// Bytes of RKOM header on a request/reply (magic + kind + call + service +
/// length).
const RKOM_HEADER: u64 = 16;

fn channel_request(config: &RkomConfig, fixed: SimDuration) -> RmsRequest {
    let mms = config.max_message + RKOM_HEADER;
    let desired = RmsParams {
        reliability: rms_core::Reliability::Unreliable,
        security: rms_core::SecurityParams::NONE,
        capacity: config.capacity.max(mms),
        max_message_size: mms,
        delay: DelayBound::best_effort_with(fixed, SimDuration::from_micros(10)),
        error_rate: rms_core::BitErrorRate::new(1e-4).expect("valid"),
    };
    let mut acceptable = desired.clone();
    acceptable.capacity = mms;
    // The desired delay is aspirational ("low delay"); accept whatever the
    // path can actually do, up to the high-delay budget (§2.4: the provider
    // matches the desired parameters as closely as possible).
    acceptable.delay =
        DelayBound::best_effort_with(config.high_delay.max(fixed), SimDuration::from_micros(20));
    RmsRequest::new(desired, acceptable).expect("desired covers floor")
}

fn send_on_channel(sim: &mut Sim<Stack>, host: HostId, peer: HostId, lane: Lane, bytes: WireMsg) {
    ensure_channel(sim, host, peer);
    let target = {
        let ch = sim
            .state
            .rkom
            .host_mut(host)
            .channels
            .entry(peer)
            .or_default();
        if ch.ready() {
            match lane {
                Lane::Low => ch.low_out,
                Lane::High => ch.high_out,
            }
        } else {
            ch.waiting.push((lane, bytes));
            return;
        }
    };
    if let Some(st_rms) = target {
        let _ = st_engine::send(sim, host, st_rms, Message::from_wire(bytes));
    }
}

fn ensure_channel(sim: &mut Sim<Stack>, host: HostId, peer: HostId) {
    let need = {
        let ch = sim
            .state
            .rkom
            .host_mut(host)
            .channels
            .entry(peer)
            .or_default();
        !ch.ready() && !ch.creating
    };
    if !need {
        return;
    }
    sim.state
        .rkom
        .host_mut(host)
        .channels
        .get_mut(&peer)
        .expect("just inserted")
        .creating = true;
    let config = sim.state.rkom.config.clone();
    for (lane, fixed) in [
        (Lane::Low, config.low_delay),
        (Lane::High, config.high_delay),
    ] {
        match st_engine::create(sim, host, peer, &channel_request(&config, fixed), false) {
            Ok(token) => {
                sim.state
                    .rkom
                    .host_mut(host)
                    .tokens
                    .insert(token, (peer, lane));
            }
            Err(e) => {
                fail_channel(sim, host, peer, RkomError::ChannelFailed(e));
                return;
            }
        }
    }
}

fn fail_channel(sim: &mut Sim<Stack>, host: HostId, peer: HostId, err: RkomError) {
    let victim_calls: Vec<u64> = {
        let rh = sim.state.rkom.host_mut(host);
        rh.channels.remove(&peer);
        rh.calls
            .iter()
            .filter(|(_, c)| c.peer == peer)
            .map(|(id, _)| *id)
            .collect()
    };
    for id in victim_calls {
        fail_call(sim, host, id, err.clone());
    }
}

// ---------------------------------------------------------------------------
// Routing hooks used by `Stack`
// ---------------------------------------------------------------------------

/// Does RKOM own this (receiving or sending) ST RMS at `host`?
pub fn owns(stack: &Stack, host: HostId, st_rms: StRmsId) -> bool {
    stack.rkom.host(host).owned.contains_key(&st_rms)
}

/// Does RKOM await this ST creation token at `host`?
pub fn claims_token(stack: &Stack, host: HostId, token: StToken) -> bool {
    stack.rkom.host(host).tokens.contains_key(&token)
}

/// Handle an ST lifecycle event addressed to RKOM.
pub fn on_st_event(sim: &mut Sim<Stack>, host: HostId, event: StEvent) {
    match event {
        StEvent::Created { token, st_rms, .. } => {
            let Some((peer, lane)) = sim.state.rkom.host_mut(host).tokens.remove(&token) else {
                return;
            };
            let flush = {
                let rh = sim.state.rkom.host_mut(host);
                rh.owned.insert(st_rms, peer);
                let ch = rh.channels.entry(peer).or_default();
                match lane {
                    Lane::Low => ch.low_out = Some(st_rms),
                    Lane::High => ch.high_out = Some(st_rms),
                }
                if ch.ready() {
                    ch.creating = false;
                    std::mem::take(&mut ch.waiting)
                } else {
                    Vec::new()
                }
            };
            for (lane, bytes) in flush {
                send_on_channel(sim, host, peer, lane, bytes);
            }
        }
        StEvent::CreateFailed { token, reason } => {
            let Some((peer, _)) = sim.state.rkom.host_mut(host).tokens.remove(&token) else {
                return;
            };
            fail_channel(
                sim,
                host,
                peer,
                RkomError::ChannelFailed(RmsError::CreationRejected(reason)),
            );
        }
        StEvent::Failed { st_rms, reason } => {
            // Typed channel failure (e.g. the network died with no
            // alternate), not a generic timeout.
            let peer = sim.state.rkom.host_mut(host).owned.remove(&st_rms);
            if let Some(peer) = peer {
                fail_channel(
                    sim,
                    host,
                    peer,
                    RkomError::ChannelFailed(RmsError::Failed(reason)),
                );
            }
        }
        StEvent::Closed { st_rms } => {
            let peer = sim.state.rkom.host_mut(host).owned.remove(&st_rms);
            if let Some(peer) = peer {
                fail_channel(sim, host, peer, RkomError::Timeout);
            }
        }
        _ => {}
    }
}

/// Handle an ST delivery addressed to RKOM.
pub fn on_delivery(
    sim: &mut Sim<Stack>,
    host: HostId,
    st_rms: StRmsId,
    msg: Message,
    _info: DeliveryInfo,
) {
    let Some(decoded) = decode_msg(msg.wire()) else {
        return;
    };
    // Claim the inbound stream and learn the peer from the ST layer.
    let peer = {
        match sim.state.rkom.host(host).owned.get(&st_rms).copied() {
            Some(p) => p,
            None => {
                let Some(p) = sim
                    .state
                    .st_ref()
                    .host(host)
                    .streams
                    .get(&st_rms)
                    .map(|s| s.peer)
                else {
                    return;
                };
                sim.state.rkom.host_mut(host).owned.insert(st_rms, p);
                p
            }
        }
    };
    match decoded {
        RkomMsg::Request {
            call,
            service,
            payload,
        } => handle_request(sim, host, peer, call, service, payload),
        RkomMsg::Reply {
            call,
            status,
            payload,
        } => handle_reply(sim, host, peer, call, status, payload),
        RkomMsg::ReplyAck { call } => {
            sim.state
                .rkom
                .host_mut(host)
                .reply_cache
                .remove(&(peer, call));
        }
    }
}

fn handle_request(
    sim: &mut Sim<Stack>,
    host: HostId,
    client: HostId,
    call: u64,
    service: u16,
    payload: Bytes,
) {
    // Duplicate? Serve from the cache (at-most-once execution).
    if let Some(cached) = sim
        .state
        .rkom
        .host(host)
        .reply_cache
        .get(&(client, call))
        .cloned()
    {
        sim.state.rkom.host_mut(host).stats.duplicates_served.incr();
        // Cached replies are retransmissions: high-delay lane (§3.3).
        send_on_channel(sim, host, client, Lane::High, cached);
        return;
    }
    // Take the handler out while it runs (it may issue nested calls).
    let handler = sim
        .state
        .rkom
        .host_mut(host)
        .services
        .get_mut(&service)
        .and_then(|h| h.take());
    let (status, reply_payload) = match handler {
        Some(mut h) => {
            let out = h(sim, client, payload);
            // Put the handler back unless it was replaced meanwhile.
            if let Some(slot) = sim.state.rkom.host_mut(host).services.get_mut(&service) {
                if slot.is_none() {
                    *slot = Some(h);
                }
            }
            sim.state.rkom.host_mut(host).stats.served.incr();
            (STATUS_OK, out)
        }
        None => (STATUS_NO_SERVICE, Bytes::new()),
    };
    let reply = encode_msg(&RkomMsg::Reply {
        call,
        status,
        payload: reply_payload,
    });
    sim.state
        .rkom
        .host_mut(host)
        .reply_cache
        .insert((client, call), reply.clone());
    // Initial replies travel on the low-delay RMS (§3.3).
    send_on_channel(sim, host, client, Lane::Low, reply);
}

fn handle_reply(
    sim: &mut Sim<Stack>,
    host: HostId,
    server: HostId,
    call: u64,
    status: u8,
    payload: Bytes,
) {
    let (cb, started) = {
        let rh = sim.state.rkom.host_mut(host);
        let Some(c) = rh.calls.remove(&call) else {
            // Duplicate reply; ack it again so the server can clean up.
            let ack = encode_msg(&RkomMsg::ReplyAck { call });
            let _ = rh;
            send_on_channel(sim, host, server, Lane::High, ack);
            return;
        };
        if let Some(t) = c.timer {
            t.cancel();
        }
        (rh.call_cbs.remove(&call), c.started)
    };
    let now = sim.now();
    {
        let stats = &mut sim.state.rkom.host_mut(host).stats;
        stats.completed.incr();
        stats
            .latency
            .record(now.saturating_since(started).as_secs_f64());
    }
    {
        let net = &mut sim.state.net;
        if net.obs.is_active() {
            net.obs
                .emit(now, ObsEvent::RkomDeliver { host: host.0, call });
        }
    }
    // Acknowledge on the high-delay RMS so the server drops its cache.
    let ack = encode_msg(&RkomMsg::ReplyAck { call });
    send_on_channel(sim, host, server, Lane::High, ack);
    if let Some(cb) = cb {
        let result = if status == STATUS_OK {
            Ok(payload)
        } else {
            Err(RkomError::NoSuchService)
        };
        cb(sim, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let msgs = [
            RkomMsg::Request {
                call: 7,
                service: 3,
                payload: Bytes::from_static(b"ping"),
            },
            RkomMsg::Reply {
                call: 7,
                status: 0,
                payload: Bytes::from_static(b"pong"),
            },
            RkomMsg::ReplyAck { call: 7 },
        ];
        for m in msgs {
            assert_eq!(decode_msg(&encode_msg(&m)), Some(m));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            decode_msg(&WireMsg::from_bytes(Bytes::from_static(b""))),
            None
        );
        assert_eq!(
            decode_msg(&WireMsg::from_bytes(Bytes::from_static(b"\x00\x01"))),
            None
        );
        assert_eq!(
            decode_msg(&WireMsg::from_bytes(Bytes::from_static(&[MAGIC_RKOM, 99]))),
            None
        );
        // Truncated payload length.
        let mut b = BytesMut::new();
        b.put_u8(MAGIC_RKOM);
        b.put_u8(KIND_REQUEST);
        b.put_u64(1);
        b.put_u16(1);
        b.put_u32(100); // claims 100 bytes, none follow
        assert_eq!(decode_msg(&WireMsg::from_bytes(b.freeze())), None);
    }
}
