//! # dash-transport — DASH transport protocols on the assembled stack
//!
//! The top of the DASH communication architecture (paper §3.3, §4.4):
//!
//! - [`stack`]: [`stack::Stack`], the concrete world wiring network +
//!   subtransport + transports, with optional per-host EDF CPUs (§4.1).
//! - [`rkom`]: the Remote Kernel Operation Mechanism — request/reply over
//!   four ST RMSs per peer (low-delay initial traffic, high-delay
//!   retransmissions and acknowledgements), at-most-once execution.
//! - [`stream`]: stream sessions with the §4.4 flow-control suite, each
//!   mechanism optional: rate-based / ack-based capacity enforcement,
//!   receiver flow control, sender flow control via a bounded IPC port.
//! - [`flow`]: the mechanisms themselves, independently testable.
//! - [`sendport`]: the bounded sender-side IPC port.

pub mod flow;
pub mod rkom;
pub mod sendport;
pub mod stack;
pub mod stream;

pub use flow::{AckWindow, CapacityEnforcement, RateLimiter, ReceiverWindow};
pub use sendport::{SendPort, WouldBlock};
pub use stack::{AppEvent, Stack};
pub use stream::{StreamEvent, StreamProfile};
