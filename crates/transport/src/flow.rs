//! Flow-control building blocks (paper §4.4).
//!
//! The paper's central observation: RMS capacity enforcement, receiver flow
//! control, and sender flow control are *separate* mechanisms, each needed
//! only in specific situations — "unnecessary mechanisms can be avoided."
//! This module provides each as an independent, composable piece:
//!
//! - [`RateLimiter`] — rate-based capacity enforcement: "using timers, the
//!   sender ensures that during any time period of duration `A + C·B`, the
//!   number of bytes sent does not exceed `C`."
//! - [`AckWindow`] — acknowledgement-based capacity enforcement: at most
//!   `C` bytes outstanding, clocked by (fast) acknowledgements.
//! - [`ReceiverWindow`] — receiver flow control: stop when the advertised
//!   receive-buffer window is exhausted.

use std::collections::VecDeque;

use dash_sim::time::{SimDuration, SimTime};
use rms_core::params::RmsParams;

/// Which capacity-enforcement mechanism a transport uses (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityEnforcement {
    /// No mechanism: correct only if the sender is known slow; cheapest.
    #[default]
    None,
    /// Timer-driven (pessimistic: assumes maximum delay for all messages).
    RateBased,
    /// Acknowledgement-clocked (higher throughput, costs reverse traffic).
    AckBased,
}

/// Rate-based capacity enforcement: a sliding-window byte budget of `C`
/// bytes per `A + C·B` period.
#[derive(Debug)]
pub struct RateLimiter {
    capacity: u64,
    period: SimDuration,
    sent: VecDeque<(SimTime, u64)>,
    in_window: u64,
}

impl RateLimiter {
    /// Build from the stream's RMS parameters.
    pub fn new(params: &RmsParams) -> Self {
        RateLimiter {
            capacity: params.capacity,
            period: params.delay.bound_for(params.capacity),
            sent: VecDeque::new(),
            in_window: 0,
        }
    }

    /// The enforcement period `A + C·B`.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&(t, bytes)) = self.sent.front() {
            if now.saturating_since(t) >= self.period {
                self.in_window -= bytes;
                self.sent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Can `bytes` be sent at `now` without exceeding the budget?
    pub fn may_send(&mut self, now: SimTime, bytes: u64) -> bool {
        self.expire(now);
        self.in_window + bytes <= self.capacity
    }

    /// Record a send of `bytes` at `now`.
    pub fn record_send(&mut self, now: SimTime, bytes: u64) {
        self.expire(now);
        self.sent.push_back((now, bytes));
        self.in_window += bytes;
    }

    /// When the next budget becomes available, if currently blocked.
    pub fn next_release(&self, _now: SimTime) -> Option<SimTime> {
        self.sent.front().map(|&(t, _)| t + self.period)
    }

    /// Bytes consumed in the current window.
    pub fn in_window(&self) -> u64 {
        self.in_window
    }
}

/// Acknowledgement-based capacity enforcement: tracks outstanding
/// (unacknowledged) bytes against the RMS capacity.
#[derive(Debug)]
pub struct AckWindow {
    capacity: u64,
    outstanding: u64,
    unacked: VecDeque<(u64, u64)>, // (seq, bytes)
}

impl AckWindow {
    /// A window of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        AckWindow {
            capacity,
            outstanding: 0,
            unacked: VecDeque::new(),
        }
    }

    /// Can `bytes` more be sent?
    pub fn may_send(&self, bytes: u64) -> bool {
        self.outstanding + bytes <= self.capacity
    }

    /// Record a send.
    pub fn record_send(&mut self, seq: u64, bytes: u64) {
        self.unacked.push_back((seq, bytes));
        self.outstanding += bytes;
    }

    /// Process a cumulative acknowledgement of everything up to and
    /// including `seq`. Returns bytes released.
    pub fn ack_through(&mut self, seq: u64) -> u64 {
        let mut released = 0;
        while let Some(&(s, bytes)) = self.unacked.front() {
            if s <= seq {
                released += bytes;
                self.unacked.pop_front();
            } else {
                break;
            }
        }
        self.outstanding -= released;
        released
    }

    /// Bytes currently outstanding.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// True if nothing is outstanding.
    pub fn is_idle(&self) -> bool {
        self.outstanding == 0
    }
}

/// Receiver flow control: the sender-side view of the receiver's buffer.
///
/// The receiver advertises `buffer_total` and the cumulative sequence it
/// has *consumed*; the sender may keep at most
/// `buffer_total − (sent − consumed)` more bytes in flight toward the
/// buffer.
#[derive(Debug)]
pub struct ReceiverWindow {
    buffer_total: u64,
    sent_bytes: u64,
    consumed_bytes: u64,
}

impl ReceiverWindow {
    /// A window over a receive buffer of `buffer_total` bytes.
    pub fn new(buffer_total: u64) -> Self {
        ReceiverWindow {
            buffer_total,
            sent_bytes: 0,
            consumed_bytes: 0,
        }
    }

    /// Bytes of buffer believed free.
    pub fn available(&self) -> u64 {
        self.buffer_total
            .saturating_sub(self.sent_bytes - self.consumed_bytes)
    }

    /// Can `bytes` more be sent?
    pub fn may_send(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Record a send.
    pub fn record_send(&mut self, bytes: u64) {
        self.sent_bytes += bytes;
    }

    /// Process a window update: the receiver has consumed `total` bytes
    /// cumulatively.
    pub fn update_consumed(&mut self, total: u64) {
        self.consumed_bytes = self.consumed_bytes.max(total.min(self.sent_bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::delay::DelayBound;

    fn params(capacity: u64, fixed_ms: u64, per_byte_ns: u64) -> RmsParams {
        RmsParams::builder(capacity, capacity.min(1000))
            .delay(DelayBound::best_effort_with(
                SimDuration::from_millis(fixed_ms),
                SimDuration::from_nanos(per_byte_ns),
            ))
            .build()
            .unwrap()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn rate_limiter_period_is_a_plus_cb() {
        // A = 10ms, B = 1000ns, C = 1000 -> period = 10ms + 1ms = 11ms.
        let rl = RateLimiter::new(&params(1000, 10, 1000));
        assert_eq!(rl.period(), SimDuration::from_millis(11));
    }

    #[test]
    fn rate_limiter_blocks_at_capacity_and_releases() {
        let mut rl = RateLimiter::new(&params(1000, 10, 0));
        assert!(rl.may_send(t(0), 600));
        rl.record_send(t(0), 600);
        assert!(rl.may_send(t(1), 400));
        rl.record_send(t(1), 400);
        assert_eq!(rl.in_window(), 1000);
        assert!(!rl.may_send(t(2), 1));
        // First send expires after the 10ms period.
        assert!(rl.may_send(t(10), 600));
        assert_eq!(rl.next_release(t(2)), Some(t(11))); // second release
    }

    #[test]
    fn rate_limiter_is_pessimistic() {
        // Even if real delivery is instant, the limiter waits the full
        // period — the paper's stated downside of the rate-based approach.
        let mut rl = RateLimiter::new(&params(100, 100, 0));
        rl.record_send(t(0), 100);
        assert!(!rl.may_send(t(50), 1));
        assert!(rl.may_send(t(100), 100));
    }

    #[test]
    fn ack_window_tracks_outstanding() {
        let mut w = AckWindow::new(1000);
        assert!(w.may_send(1000));
        w.record_send(0, 400);
        w.record_send(1, 400);
        assert_eq!(w.outstanding(), 800);
        assert!(!w.may_send(300));
        assert_eq!(w.ack_through(0), 400);
        assert!(w.may_send(300));
        assert_eq!(w.ack_through(1), 400);
        assert!(w.is_idle());
    }

    #[test]
    fn ack_window_cumulative_ack() {
        let mut w = AckWindow::new(10_000);
        for s in 0..5 {
            w.record_send(s, 100);
        }
        assert_eq!(w.ack_through(3), 400);
        assert_eq!(w.outstanding(), 100);
        // Re-acking is idempotent.
        assert_eq!(w.ack_through(3), 0);
    }

    #[test]
    fn receiver_window_blocks_on_full_buffer() {
        let mut w = ReceiverWindow::new(500);
        assert!(w.may_send(500));
        w.record_send(500);
        assert_eq!(w.available(), 0);
        assert!(!w.may_send(1));
        w.update_consumed(200);
        assert_eq!(w.available(), 200);
        assert!(w.may_send(200));
        assert!(!w.may_send(201));
    }

    #[test]
    fn receiver_window_updates_are_monotone() {
        let mut w = ReceiverWindow::new(100);
        w.record_send(100);
        w.update_consumed(60);
        w.update_consumed(30); // stale update ignored
        assert_eq!(w.available(), 60);
        // Updates are clamped to what was actually sent.
        w.update_consumed(1_000_000);
        assert_eq!(w.available(), 100);
    }

    #[test]
    fn zero_window_stalls_and_resumes() {
        // Fill the advertised buffer exactly: the window goes to zero and
        // every nonzero send must stall until a consume update reopens it.
        let mut w = ReceiverWindow::new(300);
        w.record_send(300);
        assert_eq!(w.available(), 0);
        assert!(!w.may_send(1));
        // A zero-byte probe is always admissible on a zero window.
        assert!(w.may_send(0));
        // A consume update of a single byte resumes exactly one byte.
        w.update_consumed(1);
        assert_eq!(w.available(), 1);
        assert!(w.may_send(1));
        assert!(!w.may_send(2));
        w.record_send(1);
        assert_eq!(w.available(), 0);
        // Full drain reopens the whole buffer.
        w.update_consumed(301);
        assert_eq!(w.available(), 300);
    }

    #[test]
    fn zero_capacity_receiver_window_never_opens() {
        // A receiver advertising no buffer at all: permanent stall for any
        // payload, without underflow on spurious updates.
        let mut w = ReceiverWindow::new(0);
        assert!(!w.may_send(1));
        w.update_consumed(50);
        assert!(!w.may_send(1));
        assert_eq!(w.available(), 0);
    }

    #[test]
    fn rate_limiter_admits_exactly_capacity_and_releases_on_the_boundary() {
        // A = 10ms, B = 0 -> period exactly 10ms.
        let mut rl = RateLimiter::new(&params(1000, 10, 0));
        // One send of exactly C bytes is admissible...
        assert!(rl.may_send(t(0), 1000));
        rl.record_send(t(0), 1000);
        // ...and one more byte is not, right up to the period boundary.
        assert!(!rl.may_send(t(0), 1));
        assert!(!rl.may_send(t(9), 1));
        // At exactly t0 + period the window expires (>=, not >): the full
        // budget is available again in the same instant.
        assert_eq!(rl.next_release(t(9)), Some(t(10)));
        assert!(rl.may_send(t(10), 1000));
        assert_eq!(rl.in_window(), 0);
    }

    #[test]
    fn ack_window_admits_exactly_capacity() {
        let mut w = AckWindow::new(1000);
        w.record_send(0, 999);
        // The last byte of capacity is admissible, the byte after is not.
        assert!(w.may_send(1));
        w.record_send(1, 1);
        assert!(!w.may_send(1));
        assert!(w.may_send(0));
        assert_eq!(w.outstanding(), 1000);
    }

    #[test]
    fn window_update_racing_stream_end_is_harmless() {
        // A stream tears down while its last window update / ack is still
        // in flight. The sender-side structures must absorb late and
        // duplicate updates after the final send without underflow.
        let mut aw = AckWindow::new(500);
        aw.record_send(7, 200);
        aw.record_send(8, 300);
        // Peer acks everything (cumulative, possibly beyond the last seq it
        // actually saw) as it closes.
        assert_eq!(aw.ack_through(u64::MAX), 500);
        assert!(aw.is_idle());
        // The duplicate of that final ack arrives after the stream ended.
        assert_eq!(aw.ack_through(u64::MAX), 0);
        assert!(aw.is_idle());
        assert!(aw.may_send(500));

        let mut rw = ReceiverWindow::new(400);
        rw.record_send(400);
        // Final consume update races the close: clamped to bytes sent.
        rw.update_consumed(u64::MAX);
        assert_eq!(rw.available(), 400);
        // A stale pre-close update arriving afterwards cannot regress it.
        rw.update_consumed(10);
        assert_eq!(rw.available(), 400);
    }
}
