//! Property tests for the monotonic time mapping: Instant ↔ SimTime must
//! be monotone and lossless at nanosecond granularity for any virtual
//! instant within a run horizon, or wall pacing would reorder or smear
//! the event queue the protocols depend on.

use std::time::Instant;

use dash_rt::Monotonic;
use dash_sim::time::SimTime;
use proptest::prelude::*;

/// A generous run horizon: one simulated week, in nanoseconds.
const HORIZON_NS: u64 = 7 * 24 * 3600 * 1_000_000_000;

proptest! {
    /// wall_of then sim_of returns the exact virtual instant: the mapping
    /// loses nothing at nanosecond granularity.
    #[test]
    fn mapping_round_trips_losslessly(ns in 0u64..HORIZON_NS) {
        let d = Monotonic::anchored_at(Instant::now());
        let t = SimTime::from_nanos(ns);
        prop_assert_eq!(d.sim_of(d.wall_of(t)), t);
    }

    /// The mapping preserves order in both directions — strictly for
    /// distinct instants, reflexively for equal ones.
    #[test]
    fn mapping_is_monotone(a in 0u64..HORIZON_NS, b in 0u64..HORIZON_NS) {
        let d = Monotonic::anchored_at(Instant::now());
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        let (wa, wb) = (d.wall_of(ta), d.wall_of(tb));
        prop_assert_eq!(a < b, wa < wb);
        prop_assert_eq!(a == b, wa == wb);
        // And back through sim_of without loss of order.
        prop_assert_eq!(d.sim_of(wa) < d.sim_of(wb), ta < tb);
    }

    /// Distances survive the round trip: the wall separation of two
    /// mapped instants equals their virtual separation exactly.
    #[test]
    fn mapping_preserves_distances(a in 0u64..HORIZON_NS, b in 0u64..HORIZON_NS) {
        let d = Monotonic::anchored_at(Instant::now());
        let (lo, hi) = (a.min(b), a.max(b));
        let gap = d
            .wall_of(SimTime::from_nanos(hi))
            .duration_since(d.wall_of(SimTime::from_nanos(lo)));
        prop_assert_eq!(gap.as_nanos(), (hi - lo) as u128);
    }
}
