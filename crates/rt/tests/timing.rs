//! Wall-clock timing guarantees of the monotonic driver.
//!
//! Three promises, each load-bearing for real-time use:
//!
//! * **Never early** — an event scheduled at virtual `t` does not execute
//!   before the wall clock passes `anchor + t`, however the OS schedules
//!   the thread.
//! * **Honest lateness** — deadline-miss accounting comes from measured
//!   per-event wall lag, agrees with the recorded lags exactly, detects
//!   genuine overload, and is monotone in the slack threshold.
//! * **No wedging** — a jittered run on a real protocol workload still
//!   quiesces inside a wall box; lateness degrades timing, never
//!   liveness.

use std::time::{Duration, Instant};

use dash_net::ids::HostId;
use dash_net::state::{NetConfig, NetRmsEvent, NetState, NetWorld};
use dash_net::topology::two_hosts_ethernet;
use dash_rt::{run_rt, Monotonic, RtOptions, SimLinks};
use dash_sim::engine::Sim;
use dash_sim::time::{SimDuration, SimTime};
use dash_transport::stack::StackBuilder;
use dash_transport::stream::StreamProfile;

/// The smallest world the scheduler accepts: timers only, no protocols.
struct TimerWorld {
    net: NetState,
    fired: Vec<(SimTime, Instant)>,
}

impl NetWorld for TimerWorld {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        _sim: &mut Sim<Self>,
        _host: HostId,
        _rms: dash_net::ids::NetRmsId,
        _msg: rms_core::message::Message,
        _info: rms_core::port::DeliveryInfo,
    ) {
    }
    fn rms_event(_sim: &mut Sim<Self>, _host: HostId, _event: NetRmsEvent) {}
}

fn timer_world() -> Sim<TimerWorld> {
    Sim::new(TimerWorld {
        net: NetState::new(NetConfig::default(), 1),
        fired: Vec::new(),
    })
}

#[test]
fn timers_never_fire_early() {
    let mut sim = timer_world();
    // A cadence of timers over ~100 ms of virtual time; each records the
    // wall instant at which it actually ran.
    for k in 1..=10u64 {
        let at = SimTime::from_nanos(k * 10_000_000); // every 10 ms
        sim.schedule_at(at, move |sim| {
            sim.state.fired.push((at, Instant::now()));
        });
    }
    let anchor = Instant::now();
    let mut driver = Monotonic::anchored_at(anchor);
    let mut links = SimLinks;
    let report = run_rt(&mut sim, &mut driver, &mut links, &RtOptions::default());
    assert!(report.quiesced());
    assert_eq!(sim.state.fired.len(), 10);
    for &(at, wall) in &sim.state.fired {
        let due = anchor + Duration::from_nanos(at.as_nanos());
        assert!(
            wall >= due,
            "event at {at} ran {:?} early",
            due.duration_since(wall)
        );
    }
    // 100 ms of virtual cadence took at least 100 ms of wall time.
    assert!(
        report.wall >= Duration::from_millis(100),
        "{:?}",
        report.wall
    );
}

#[test]
fn overload_is_detected_and_miss_accounting_is_monotone_in_slack() {
    let mut sim = timer_world();
    // Ten co-timed events each burning ~2 ms of real work: after the
    // first, the wall clock has left the virtual instant behind, so a
    // tight slack must report misses.
    for _ in 0..10 {
        sim.schedule_at(SimTime::from_nanos(1_000_000), |sim| {
            let spin = Instant::now();
            while spin.elapsed() < Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            sim.state.fired.push((sim.now(), Instant::now()));
        });
    }
    let mut driver = Monotonic::start();
    let mut links = SimLinks;
    let opts = RtOptions {
        miss_slack: Duration::from_micros(500),
        record_lags: true,
        ..RtOptions::default()
    };
    let report = run_rt(&mut sim, &mut driver, &mut links, &opts);
    assert!(report.quiesced());
    assert_eq!(report.events, 10);
    assert_eq!(report.lags.len(), 10);
    // Genuine overload: ~18 ms of work behind a single virtual instant.
    assert!(
        report.deadline_misses > 0,
        "expected misses, max lag {:?}",
        report.max_lag
    );
    assert!(report.miss_rate() > 0.0);
    // The report's count is exactly the lag census at its slack...
    let over = |slack: Duration| report.lags.iter().filter(|&&l| l > slack).count() as u64;
    assert_eq!(report.deadline_misses, over(opts.miss_slack));
    assert_eq!(report.max_lag, *report.lags.iter().max().unwrap());
    // ...and loosening the slack never invents misses: the census is
    // non-increasing across growing thresholds, reaching zero beyond the
    // observed maximum.
    let slacks = [
        Duration::ZERO,
        Duration::from_micros(500),
        Duration::from_millis(2),
        Duration::from_millis(8),
        report.max_lag,
    ];
    for pair in slacks.windows(2) {
        assert!(over(pair[0]) >= over(pair[1]), "{pair:?}");
    }
    assert_eq!(over(report.max_lag), 0);
}

#[test]
fn jittered_realtime_run_quiesces_within_the_wall_box() {
    // A real protocol workload — reliable bulk over ethernet — with the
    // engine's schedule jitter perturbing co-timed event order, run on
    // wall time. The run must drain (no wedge) inside a generous box and
    // still deliver every byte.
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(StackBuilder::new(net).build());
    sim.set_schedule_jitter(0xBAD_5EED, SimDuration::from_micros(50));
    let taps = dash_apps::taps::Dispatcher::install(&mut sim, &[a, b]);
    // Jitter-induced reordering forces retransmissions, and every RTO wait
    // is real wall time under 1:1 pacing — keep the transfer small and the
    // RTO tight so the jittered run stays seconds, not minutes.
    let mut profile = StreamProfile::bulk();
    profile.rto = SimDuration::from_millis(25);
    let bulk = dash_apps::bulk::start_bulk(&mut sim, &taps, a, b, 64 * 1024, 4 * 1024, profile);
    let mut driver = Monotonic::start();
    let mut links = SimLinks;
    let report = run_rt(
        &mut sim,
        &mut driver,
        &mut links,
        &RtOptions {
            max_wall: Some(Duration::from_secs(60)),
            ..RtOptions::default()
        },
    );
    assert!(
        report.quiesced(),
        "run wedged: stop {:?} after {:?}, {} events",
        report.stop,
        report.wall,
        report.events
    );
    let s = bulk.borrow();
    assert!(s.is_complete(), "bulk incomplete: {s:?}");
}
