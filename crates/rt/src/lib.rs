//! `dash-rt` — the real-time execution backend.
//!
//! The protocol crates (`dash-net`, `dash-subtransport`, `dash-transport`)
//! know nothing about where time comes from: they schedule events on a
//! [`Sim`](dash_sim::engine::Sim) and hand wire deliveries to whatever
//! owns them. This crate runs that *unchanged* stack against the wall
//! clock by swapping two seams:
//!
//! * **Time** — a [`TimeDriver`] decides when a pending event's moment
//!   has come. [`VirtualDriver`] (from `dash-sim`) never waits: the run
//!   is today's discrete-event simulation, byte-for-byte. [`Monotonic`]
//!   maps virtual nanoseconds 1:1 onto a `std::time::Instant` anchor and
//!   makes the scheduler wait events out, so a 20 ms voice frame cadence
//!   is 20 ms of your life.
//! * **Carriage** — a [`Substrate`] physically holds packets between
//!   hosts. [`SimLinks`] is the null substrate (link delays stay modelled
//!   in the event queue); [`MemDatagram`] is a threaded in-memory
//!   datagram network with real queueing delay, bounded buffers, and
//!   deterministic configurable loss, fed by
//!   [`NetState::enable_wire_divert`](dash_net::state::NetState::enable_wire_divert).
//!
//! [`run_rt`] is the one loop that drains both seams through the same
//! `pipeline::on_arrival` entry point the simulator and the parallel
//! executor use — no forked protocol code paths — and the stack's
//! observability (`ObsEvent` sinks, the dash-check oracle, the metrics
//! registry) works on real executions unchanged.
//!
//! What survives the move to wall time and what does not:
//!
//! * Logical behaviour is preserved: with the same driver *or* a
//!   loss-free substrate, the event contents, protocol decisions, and
//!   metrics are identical to the virtual run (`tests/rt_conformance.rs`
//!   holds the two byte-to-byte).
//! * Wall timing is best-effort: events never run *early* (the scheduler
//!   steps only once the driver's wait budget hits zero), but they can
//!   run late under load. Lateness is measured, not hidden —
//!   [`RtReport`] carries max lag and deadline misses.
//! * Bit-determinism is not promised for `MemDatagram` runs under loss
//!   or overload: carriage order among co-timed envelopes depends on
//!   real scheduling. The oracle's schedule-robust invariants (delivery
//!   integrity, FIFO per stream, completion) still hold and are enforced.

pub mod driver;
pub mod sched;
pub mod substrate;

pub use driver::Monotonic;
pub use sched::{run_rt, RtOptions, RtReport, StopReason};
pub use substrate::{Carried, MemConfig, MemDatagram, SimLinks, Substrate};

// The other half of the time seam lives in `dash-sim`; re-export it so
// `dash::rt` is the one stop for backend selection.
pub use dash_sim::driver::{TimeDriver, VirtualDriver};
