//! Packet carriage for the real-time backend.
//!
//! In virtual-time execution the wire *is* the event queue: a finished
//! traversal is an event scheduled `delay` in the future. Off the virtual
//! clock somebody real has to hold the packet for that long — a
//! [`Substrate`]. The scheduler hands every diverted
//! [`WireEnvelope`] to the substrate with its mapped wall deadline and
//! collects deliveries back as they become due.
//!
//! Two implementations:
//!
//! * [`SimLinks`] — the null substrate for worlds that never divert:
//!   link delays stay modelled inside the event queue (the simulated
//!   links the DES has always used). Carries nothing; waiting on it just
//!   sleeps.
//! * [`MemDatagram`] — a threaded in-memory datagram network: bounded
//!   channels into and out of a carrier thread that holds each envelope
//!   until its wall deadline. Queueing delay is *real* (a backlogged
//!   channel genuinely delays delivery, and an overflowing one drops like
//!   a full NIC ring), and loss is configurable and deterministic per
//!   envelope, so a lossy run can still be reasoned about.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dash_net::shard::WireEnvelope;

/// Result of waiting on a substrate.
// Boxing the envelope would trade one move of a transient value (always
// destructured at the receive site) for a heap allocation per delivered
// packet on the hot path — the wrong trade under the repo's alloc gates.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Carried {
    /// An envelope finished carriage and is ready to inject.
    Delivered(WireEnvelope),
    /// Nothing became due within the wait.
    TimedOut,
}

/// The carriage seam: where diverted wire envelopes go and come back.
pub trait Substrate {
    /// Accept a departing envelope. `wall_due` is the mapped wall instant
    /// of the envelope's modelled arrival time (`None` when the driver
    /// does not pace on wall time: deliver as soon as possible).
    ///
    /// `lossable` is the sender's reliability contract for this packet:
    /// only best-effort traffic may be dropped by a configured loss
    /// model. A *reliable* network RMS is a promise the network layer
    /// made to the layers above — in the DES the wire simply never
    /// loses, and a real substrate would run a retransmitting link
    /// protocol under such an RMS. A substrate that dropped those
    /// packets would not be lossy, it would be breaking a different
    /// layer's invariant (the receiver's in-order reorder buffer wedges
    /// forever behind the hole). Overflow drops still apply to
    /// everything: memory pressure does not honor contracts.
    fn transmit(&mut self, env: WireEnvelope, wall_due: Option<Instant>, lossable: bool);

    /// Wait up to `timeout` for the next due envelope.
    fn recv(&mut self, timeout: Duration) -> Carried;

    /// Envelopes accepted but not yet delivered or dropped. Zero means
    /// the substrate is drained (the scheduler's quiescence condition).
    fn in_flight(&self) -> u64;

    /// Envelopes lost in carriage so far (configured loss + overflow).
    fn dropped(&self) -> u64;
}

/// The null substrate: the world keeps all link delays inside its own
/// event queue, so there is never anything to carry.
#[derive(Debug, Default)]
pub struct SimLinks;

impl Substrate for SimLinks {
    fn transmit(&mut self, _env: WireEnvelope, _wall_due: Option<Instant>, _lossable: bool) {
        unreachable!("SimLinks carries nothing: do not enable wire divert with it");
    }

    fn recv(&mut self, timeout: Duration) -> Carried {
        if !timeout.is_zero() {
            std::thread::sleep(timeout);
        }
        Carried::TimedOut
    }

    fn in_flight(&self) -> u64 {
        0
    }

    fn dropped(&self) -> u64 {
        0
    }
}

/// Configuration of the in-memory datagram substrate.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Bounded channel depth, each direction. A full outbound channel
    /// drops the datagram (counted), like a full device ring; a full
    /// inbound channel backpressures the carrier, adding real queueing
    /// delay.
    pub capacity: usize,
    /// Per-envelope loss probability in permille (0..=1000), decided by a
    /// pure hash of `(seed, src, seq)` so a lossy run's drop set is
    /// reproducible.
    pub loss_per_mille: u32,
    /// Seed for the loss hash.
    pub seed: u64,
    /// Fixed extra carriage latency added to every envelope's deadline
    /// (models driver/stack cost; zero by default).
    pub extra_delay: Duration,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            capacity: 4096,
            loss_per_mille: 0,
            seed: 0,
            extra_delay: Duration::ZERO,
        }
    }
}

/// Shared carriage counters (`Relaxed` throughout: they are statistics
/// and quiescence hints, never synchronization).
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    delivered: AtomicU64,
    lost: AtomicU64,
    overflow: AtomicU64,
}

/// One envelope in the carrier's hold, ordered by `(due, admission seq)`.
struct Held {
    due: Instant,
    seq: u64,
    env: WireEnvelope,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    // BinaryHeap is a max-heap; reverse so the earliest due pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Envelope as handed to the carrier thread.
struct Carry {
    wall_due: Option<Instant>,
    lossable: bool,
    env: WireEnvelope,
}

/// The threaded in-memory datagram substrate (see module docs).
pub struct MemDatagram {
    to_carrier: Option<SyncSender<Carry>>,
    from_carrier: Option<Receiver<WireEnvelope>>,
    carrier: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl std::fmt::Debug for MemDatagram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDatagram")
            .field("in_flight", &self.in_flight())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// How long the carrier sleeps at most before re-checking its inbox and
/// shutdown state; bounds both loss-accounting latency and drop time.
const CARRIER_SLICE: Duration = Duration::from_millis(25);

/// splitmix64 over `(seed, src, seq)`: the per-envelope loss coin.
fn loss_hash(seed: u64, src: u32, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(((src as u64) << 40 ^ seq).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MemDatagram {
    /// Spawn the carrier thread and return the substrate handle.
    pub fn new(cfg: MemConfig) -> Self {
        let (to_carrier, carrier_rx) = mpsc::sync_channel::<Carry>(cfg.capacity.max(1));
        let (carrier_tx, from_carrier) = mpsc::sync_channel::<WireEnvelope>(cfg.capacity.max(1));
        let counters = Arc::new(Counters::default());
        let c = Arc::clone(&counters);
        let carrier = std::thread::Builder::new()
            .name("dash-rt-carrier".into())
            .spawn(move || carrier_loop(cfg, carrier_rx, carrier_tx, c))
            .expect("spawn substrate carrier thread");
        MemDatagram {
            to_carrier: Some(to_carrier),
            from_carrier: Some(from_carrier),
            carrier: Some(carrier),
            counters,
        }
    }

    /// Envelopes accepted for carriage so far.
    pub fn accepted(&self) -> u64 {
        self.counters.accepted.load(AtomicOrdering::Relaxed)
    }
}

impl Substrate for MemDatagram {
    fn transmit(&mut self, env: WireEnvelope, wall_due: Option<Instant>, lossable: bool) {
        let tx = self.to_carrier.as_ref().expect("substrate not shut down");
        match tx.try_send(Carry {
            wall_due,
            lossable,
            env,
        }) {
            Ok(()) => {
                self.counters.accepted.fetch_add(1, AtomicOrdering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                // A full bounded channel is a full device ring: the
                // datagram dies here, loudly counted. The protocol layers
                // already treat the wire as lossy.
                self.counters.overflow.fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
    }

    fn recv(&mut self, timeout: Duration) -> Carried {
        let rx = self.from_carrier.as_ref().expect("substrate not shut down");
        let got = if timeout.is_zero() {
            rx.try_recv().ok()
        } else {
            match rx.recv_timeout(timeout) {
                Ok(env) => Some(env),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        match got {
            Some(env) => {
                self.counters
                    .delivered
                    .fetch_add(1, AtomicOrdering::Relaxed);
                Carried::Delivered(env)
            }
            None => Carried::TimedOut,
        }
    }

    fn in_flight(&self) -> u64 {
        let c = &self.counters;
        c.accepted
            .load(AtomicOrdering::Relaxed)
            .saturating_sub(c.delivered.load(AtomicOrdering::Relaxed))
            .saturating_sub(c.lost.load(AtomicOrdering::Relaxed))
    }

    fn dropped(&self) -> u64 {
        let c = &self.counters;
        c.lost.load(AtomicOrdering::Relaxed) + c.overflow.load(AtomicOrdering::Relaxed)
    }
}

impl Drop for MemDatagram {
    fn drop(&mut self) {
        // Disconnect both channels, then join: the carrier notices within
        // one slice and exits (discarding whatever it still holds).
        self.to_carrier.take();
        self.from_carrier.take();
        if let Some(h) = self.carrier.take() {
            let _ = h.join();
        }
    }
}

fn carrier_loop(
    cfg: MemConfig,
    rx: Receiver<Carry>,
    tx: SyncSender<WireEnvelope>,
    counters: Arc<Counters>,
) {
    let mut held: BinaryHeap<Held> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut disconnected = false;
    loop {
        // Deliver everything due. A blocking send backpressures this
        // thread when the scheduler lags — that waiting *is* the real
        // queueing delay the receiver observes.
        let now = Instant::now();
        while held.peek().is_some_and(|h| h.due <= now) {
            let h = held.pop().expect("peeked");
            if tx.send(h.env).is_err() {
                return; // scheduler gone: nothing left to deliver to
            }
        }
        if disconnected && held.is_empty() {
            return;
        }
        // Sleep until the earliest due, sliced so disconnection and
        // late-arriving earlier deadlines are noticed promptly.
        let wait = held
            .peek()
            .map(|h| h.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::MAX)
            .min(CARRIER_SLICE);
        match rx.recv_timeout(wait) {
            Ok(carry) => {
                let env = carry.env;
                if carry.lossable
                    && cfg.loss_per_mille > 0
                    && loss_hash(cfg.seed, env.src.0, env.seq) % 1000 < cfg.loss_per_mille as u64
                {
                    counters.lost.fetch_add(1, AtomicOrdering::Relaxed);
                    continue;
                }
                let due = carry.wall_due.unwrap_or_else(Instant::now) + cfg.extra_delay;
                held.push(Held { due, seq, env });
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_hash_is_deterministic_and_spread() {
        let a = loss_hash(7, 3, 100);
        assert_eq!(a, loss_hash(7, 3, 100));
        assert_ne!(a, loss_hash(7, 3, 101));
        assert_ne!(a, loss_hash(8, 3, 100));
        // Roughly uniform: a 10% coin over 10k draws lands near 1k.
        let hits = (0..10_000u64)
            .filter(|&s| loss_hash(1, 2, s) % 1000 < 100)
            .count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn sim_links_waits_but_never_delivers() {
        let mut s = SimLinks;
        let t0 = Instant::now();
        assert!(matches!(s.recv(Duration::ZERO), Carried::TimedOut));
        assert!(matches!(
            s.recv(Duration::from_millis(5)),
            Carried::TimedOut
        ));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(s.in_flight(), 0);
    }
}
