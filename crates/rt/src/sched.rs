//! The real-time scheduler: one loop that drains due events and substrate
//! deliveries through the *unchanged* protocol entry points.
//!
//! [`run_rt`] owns three obligations per iteration, in order:
//!
//! 1. **Departures** — every envelope the world diverted since the last
//!    iteration ([`take_outbox`](dash_net::state::NetState::take_outbox))
//!    is handed to the substrate
//!    with its wall deadline ([`TimeDriver::wall_deadline`]).
//! 2. **Arrivals** — every envelope the substrate has finished carrying
//!    is injected with [`Sim::schedule_arrival`] under its canonical
//!    arrival key, exactly like the parallel executor's LPs, so ordering
//!    among co-timed arrivals stays a pure function of what was sent.
//!    Late carriage (real queueing) lands at the driver's *current*
//!    position, never in the past.
//! 3. **The next event** — if [`TimeDriver::wait_budget`] for the
//!    earliest pending event is zero, step it (accounting wall lag
//!    against the miss slack); otherwise wait out the budget on the
//!    substrate and re-evaluate from the top. Stepping only on a zero
//!    budget is what guarantees timers never fire early: under the
//!    monotonic driver a zero budget *means* the wall clock passed the
//!    event's mapped instant.
//!
//! With the [`VirtualDriver`](dash_sim::driver::VirtualDriver) and the
//! null [`SimLinks`](crate::substrate::SimLinks) substrate every budget
//! is zero and the outbox stays empty, so the loop degenerates to
//! `sim.run()` — same pop order, same events, byte-for-byte. That
//! degenerate case is the conformance baseline the monotonic driver is
//! tested against.

use std::time::{Duration, Instant};

use dash_net::pipeline;
use dash_net::shard::WireEnvelope;
use dash_net::state::NetWorld;
use dash_sim::driver::TimeDriver;
use dash_sim::engine::Sim;
use dash_sim::time::SimTime;

use crate::substrate::{Carried, Substrate};

/// Knobs for one [`run_rt`] call.
#[derive(Debug, Clone)]
pub struct RtOptions {
    /// Stop once the earliest pending event lies beyond this virtual
    /// instant (exclusive), like [`Sim::run_until_horizon`]. `None` runs
    /// to quiescence.
    pub horizon: Option<SimTime>,
    /// Hard wall-clock box: stop (non-quiescent if work remains) once
    /// this much wall time has elapsed. The backstop that turns a wedged
    /// run into a report instead of a hang.
    pub max_wall: Option<Duration>,
    /// How long one idle wait on the substrate lasts when the event
    /// queue is empty but envelopes are still in flight.
    pub idle_wait: Duration,
    /// Wall lag beyond which stepping an event counts as a deadline
    /// miss. Lag below this is scheduler noise, not a miss.
    pub miss_slack: Duration,
    /// Record every event's wall lag in [`RtReport::lags`] (tests only;
    /// unbounded memory on long runs).
    pub record_lags: bool,
}

impl Default for RtOptions {
    fn default() -> Self {
        RtOptions {
            horizon: None,
            max_wall: None,
            idle_wait: Duration::from_millis(10),
            miss_slack: Duration::from_millis(5),
            record_lags: false,
        }
    }
}

/// Why [`run_rt`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Event queue empty and substrate drained: the run completed.
    Quiesced,
    /// The earliest pending event lies beyond [`RtOptions::horizon`].
    Horizon,
    /// [`RtOptions::max_wall`] elapsed with work still outstanding.
    WallBox,
}

/// What one [`run_rt`] call did.
#[derive(Debug)]
pub struct RtReport {
    /// Events stepped by this call.
    pub events: u64,
    /// Envelopes handed to the substrate.
    pub transmitted: u64,
    /// Envelopes received from the substrate and injected.
    pub injected: u64,
    /// Substrate drop count at return (loss + overflow).
    pub substrate_dropped: u64,
    /// Events stepped with wall lag above [`RtOptions::miss_slack`].
    pub deadline_misses: u64,
    /// Largest wall lag observed on any stepped event.
    pub max_lag: Duration,
    /// Wall time the call took.
    pub wall: Duration,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Per-event wall lags when [`RtOptions::record_lags`] was set.
    pub lags: Vec<Duration>,
}

impl RtReport {
    /// Whether the run drained completely (queue empty, substrate idle).
    pub fn quiesced(&self) -> bool {
        self.stop == StopReason::Quiesced
    }

    /// Deadline misses as a fraction of stepped events (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.events as f64
        }
    }
}

/// Inject a carried envelope, clamped so arrivals never land in the past
/// — neither the sim's (co-timed work may already have run) nor the
/// driver's (carriage that took longer than modelled arrives *now*, and
/// the extra latency is visible to the protocols above).
/// The reliability contract of `env`, read from the sender's RMS table:
/// only best-effort RMS data and raw datagrams may be dropped by a
/// substrate's loss model (see [`Substrate::transmit`]). Reliable-RMS
/// packets and the control plane (creates, invites, releases, routing)
/// are carried losslessly, exactly as the DES wire carries them —
/// establishment and reliable delivery have no under-layer
/// retransmission to recover a hole with.
fn may_lose<W: NetWorld>(sim: &Sim<W>, env: &WireEnvelope) -> bool {
    use dash_net::packet::PacketKind;
    match &env.packet.kind {
        PacketKind::Data(d) => sim
            .state
            .net_ref()
            .host(env.src)
            .rms
            .get(&d.rms)
            .is_some_and(|s| s.params.reliability == rms_core::params::Reliability::Unreliable),
        PacketKind::Raw { .. } => true,
        _ => false,
    }
}

fn inject<W: NetWorld>(sim: &mut Sim<W>, driver: &mut dyn TimeDriver, env: WireEnvelope) {
    let key = env.arrival_key();
    let WireEnvelope {
        deliver_at,
        dst,
        packet,
        ..
    } = env;
    let at = deliver_at.max(driver.now()).max(sim.now());
    sim.schedule_arrival(at, key, move |sim| {
        pipeline::on_arrival(sim, dst, packet);
    });
}

/// Run `sim` against wall time: see the module docs for the loop's
/// obligations and the never-early argument.
pub fn run_rt<W: NetWorld>(
    sim: &mut Sim<W>,
    driver: &mut dyn TimeDriver,
    substrate: &mut dyn Substrate,
    opts: &RtOptions,
) -> RtReport {
    let started = Instant::now();
    let mut report = RtReport {
        events: 0,
        transmitted: 0,
        injected: 0,
        substrate_dropped: 0,
        deadline_misses: 0,
        max_lag: Duration::ZERO,
        wall: Duration::ZERO,
        stop: StopReason::Quiesced,
        lags: Vec::new(),
    };
    loop {
        let wall_left = opts.max_wall.map(|m| m.saturating_sub(started.elapsed()));
        if wall_left == Some(Duration::ZERO) {
            report.stop = StopReason::WallBox;
            break;
        }

        // 1. Departures: everything diverted since last iteration.
        for env in sim.state.net().take_outbox() {
            let due = driver.wall_deadline(env.deliver_at);
            let lossable = may_lose(sim, &env);
            report.transmitted += 1;
            substrate.transmit(env, due, lossable);
        }

        // 2. Arrivals already due: inject without waiting, then
        // re-evaluate (an arrival may precede the pending local event).
        let mut arrived = false;
        while let Carried::Delivered(env) = substrate.recv(Duration::ZERO) {
            inject(sim, driver, env);
            report.injected += 1;
            arrived = true;
        }
        if arrived {
            continue;
        }

        // 3. The next local event, if its time has come.
        match sim.next_event_time() {
            Some(t) => {
                if opts.horizon.is_some_and(|h| t > h) {
                    report.stop = StopReason::Horizon;
                    break;
                }
                let budget = driver.wait_budget(t);
                if budget > Duration::ZERO {
                    // Not due yet: wait the budget out on the substrate
                    // (an earlier arrival would unblock us) and re-check.
                    let wait = wall_left.map_or(budget, |w| budget.min(w));
                    if let Carried::Delivered(env) = substrate.recv(wait) {
                        inject(sim, driver, env);
                        report.injected += 1;
                    }
                    continue;
                }
                let lag =
                    Duration::from_nanos(driver.now().as_nanos().saturating_sub(t.as_nanos()));
                if lag > report.max_lag {
                    report.max_lag = lag;
                }
                if lag > opts.miss_slack {
                    report.deadline_misses += 1;
                }
                if opts.record_lags {
                    report.lags.push(lag);
                }
                sim.step();
                report.events += 1;
            }
            None => {
                if substrate.in_flight() == 0 {
                    report.stop = StopReason::Quiesced;
                    break;
                }
                // Queue empty but envelopes still carried: wait for one.
                let wait = wall_left.map_or(opts.idle_wait, |w| opts.idle_wait.min(w));
                if let Carried::Delivered(env) = substrate.recv(wait) {
                    inject(sim, driver, env);
                    report.injected += 1;
                }
            }
        }
    }
    report.substrate_dropped = substrate.dropped();
    report.wall = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_sim::driver::VirtualDriver;
    use dash_sim::time::SimDuration;

    use crate::substrate::SimLinks;

    /// A minimal world: the scheduler only needs `NetWorld`.
    struct World {
        net: dash_net::state::NetState,
        fired: Vec<u64>,
    }

    impl NetWorld for World {
        fn net(&mut self) -> &mut dash_net::state::NetState {
            &mut self.net
        }
        fn net_ref(&self) -> &dash_net::state::NetState {
            &self.net
        }
        fn deliver_up(
            _sim: &mut Sim<Self>,
            _host: dash_net::ids::HostId,
            _rms: dash_net::ids::NetRmsId,
            _msg: rms_core::message::Message,
            _info: rms_core::port::DeliveryInfo,
        ) {
        }
        fn rms_event(
            _sim: &mut Sim<Self>,
            _host: dash_net::ids::HostId,
            _event: dash_net::state::NetRmsEvent,
        ) {
        }
    }

    fn world() -> Sim<World> {
        Sim::new(World {
            net: dash_net::state::NetState::new(dash_net::state::NetConfig::default(), 1),
            fired: Vec::new(),
        })
    }

    #[test]
    fn virtual_driver_runs_to_quiescence_in_order() {
        let mut sim = world();
        for ms in [30u64, 10, 20] {
            sim.schedule_at(SimTime::from_nanos(ms * 1_000_000), move |sim| {
                sim.state.fired.push(ms);
            });
        }
        let mut driver = VirtualDriver::new();
        let mut links = SimLinks;
        let report = run_rt(&mut sim, &mut driver, &mut links, &RtOptions::default());
        assert!(report.quiesced());
        assert_eq!(report.events, 3);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(sim.state.fired, vec![10, 20, 30]);
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut sim = world();
        for ms in [5u64, 50] {
            sim.schedule_at(SimTime::from_nanos(ms * 1_000_000), move |sim| {
                sim.state.fired.push(ms);
            });
        }
        let mut driver = VirtualDriver::new();
        let mut links = SimLinks;
        let report = run_rt(
            &mut sim,
            &mut driver,
            &mut links,
            &RtOptions {
                horizon: Some(SimTime::ZERO + SimDuration::from_millis(10)),
                ..RtOptions::default()
            },
        );
        assert_eq!(report.stop, StopReason::Horizon);
        assert_eq!(sim.state.fired, vec![5]);
    }
}
