//! The wall-clock time driver: virtual nanoseconds mapped 1:1 onto a
//! [`std::time::Instant`] anchor.
//!
//! The mapping is fixed at construction — `wall(t) = anchor + t` and
//! `virtual(i) = i - anchor` — so it is trivially monotone and lossless
//! at nanosecond granularity for any virtual instant within the run
//! horizon (`Instant` arithmetic is exact at nanoseconds; a u64 of
//! nanoseconds holds ~584 years). Timers never fire early because the
//! scheduler only runs an event once [`TimeDriver::wait_budget`] reaches
//! zero, which by construction means the wall clock has passed the
//! event's mapped instant.

use std::time::{Duration, Instant};

use dash_sim::driver::TimeDriver;
use dash_sim::time::SimTime;

/// Paces virtual time against `std::time::Instant`: virtual instant `t`
/// falls due `t` nanoseconds of wall time after the anchor.
#[derive(Debug, Clone)]
pub struct Monotonic {
    anchor: Instant,
}

impl Monotonic {
    /// Anchor the run at the current wall instant: virtual zero is *now*.
    pub fn start() -> Self {
        Monotonic {
            anchor: Instant::now(),
        }
    }

    /// Anchor the run at an explicit instant (tests pin the mapping).
    pub fn anchored_at(anchor: Instant) -> Self {
        Monotonic { anchor }
    }

    /// The run's anchor instant (the wall position of virtual zero).
    pub fn anchor(&self) -> Instant {
        self.anchor
    }

    /// The wall instant at which virtual instant `t` falls due.
    pub fn wall_of(&self, t: SimTime) -> Instant {
        self.anchor + Duration::from_nanos(t.as_nanos())
    }

    /// The virtual instant corresponding to wall instant `i` (saturating
    /// to zero before the anchor).
    pub fn sim_of(&self, i: Instant) -> SimTime {
        SimTime::from_nanos(i.saturating_duration_since(self.anchor).as_nanos() as u64)
    }
}

impl TimeDriver for Monotonic {
    fn wait_budget(&mut self, t: SimTime) -> Duration {
        self.wall_of(t).saturating_duration_since(Instant::now())
    }

    fn wall_deadline(&self, t: SimTime) -> Option<Instant> {
        Some(self.wall_of(t))
    }

    fn now(&mut self) -> SimTime {
        self.sim_of(Instant::now())
    }

    fn is_realtime(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_round_trips_at_nanosecond_granularity() {
        let d = Monotonic::start();
        for ns in [0u64, 1, 999, 1_000_000, 3_600_000_000_000] {
            let t = SimTime::from_nanos(ns);
            assert_eq!(d.sim_of(d.wall_of(t)), t);
        }
    }

    #[test]
    fn mapping_is_monotone() {
        let d = Monotonic::start();
        let mut prev = d.wall_of(SimTime::ZERO);
        for ns in [1u64, 2, 10, 1_000, 1_000_000, 1_000_000_000] {
            let w = d.wall_of(SimTime::from_nanos(ns));
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn instants_before_the_anchor_saturate_to_virtual_zero() {
        let anchor = Instant::now() + Duration::from_secs(1);
        let d = Monotonic::anchored_at(anchor);
        assert_eq!(d.sim_of(Instant::now()), SimTime::ZERO);
    }

    #[test]
    fn due_instants_have_zero_budget_and_future_ones_do_not() {
        // Anchor one second in the past: virtual 500 ms is already due,
        // virtual 10 s is not.
        let mut d = Monotonic::anchored_at(Instant::now() - Duration::from_secs(1));
        assert_eq!(
            d.wait_budget(SimTime::from_nanos(500_000_000)),
            Duration::ZERO
        );
        let b = d.wait_budget(SimTime::from_nanos(10_000_000_000));
        assert!(b > Duration::from_secs(8), "budget {b:?}");
        assert!(d.is_realtime());
        assert!(d.now() >= SimTime::from_nanos(1_000_000_000));
    }
}
