//! Fault-injection plans: scripted and seeded-random schedules of network
//! failure/recovery, link flapping, host-pair partitions, burst loss
//! (Gilbert–Elliott), interface stalls, and host crash/restart.
//!
//! The paper treats reliability as a *negotiated parameter* (§2.1): a
//! reliable RMS must stay reliable — or fail with notification — when the
//! network under it misbehaves. This module only *describes* faults; the
//! network layer applies them (`dash_net::pipeline::schedule_fault_plan`).
//! Identifiers are raw `u32`s because `dash-sim` sits below the layer that
//! defines the id newtypes (the same convention as [`crate::obs::ObsEvent`]).
//!
//! Every random choice routes through the seeded [`Rng`], so a plan — and
//! therefore an entire chaos run — is reproducible from its seed.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// A two-state Markov (Gilbert–Elliott) burst-loss channel: a *good* state
/// with low loss and a *bad* state with high loss, with per-packet
/// transition probabilities. Models correlated (bursty) loss that i.i.d.
/// drop probabilities cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of entering the bad state from the good one.
    pub p_enter_bad: f64,
    /// Per-packet probability of leaving the bad state.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
    /// Current channel state.
    in_bad: bool,
}

impl GilbertElliott {
    /// A channel starting in the good state.
    pub fn new(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Whether the channel is currently in the bad state.
    pub fn in_bad(&self) -> bool {
        self.in_bad
    }

    /// Advance the channel by one packet and sample whether it is lost.
    pub fn sample_loss(&mut self, rng: &mut Rng) -> bool {
        if self.in_bad {
            if rng.chance(self.p_exit_bad) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_enter_bad) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }
}

/// One injectable fault (or its recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The network goes down: in-flight packets are lost, RMSs over it
    /// fail, admission rejects new RMSs on it.
    NetworkDown {
        /// The network id.
        network: u32,
    },
    /// The network comes back up; routes over it become usable again.
    NetworkUp {
        /// The network id.
        network: u32,
    },
    /// Traffic between the two hosts is silently dropped (in both
    /// directions) on every network, as if a filter partitioned them.
    Partition {
        /// One host.
        a: u32,
        /// The other host.
        b: u32,
    },
    /// The partition between the two hosts heals.
    HealPartition {
        /// One host.
        a: u32,
        /// The other host.
        b: u32,
    },
    /// The network's loss process switches to a Gilbert–Elliott burst
    /// channel (replacing its i.i.d. drop probability).
    BurstLossStart {
        /// The network id.
        network: u32,
        /// The burst channel model.
        model: GilbertElliott,
    },
    /// The network's loss process reverts to its configured i.i.d. drops.
    BurstLossEnd {
        /// The network id.
        network: u32,
    },
    /// The host's interface on the network stops transmitting for
    /// `duration` (queued packets wait; nothing is dropped by the stall
    /// itself).
    IfaceStall {
        /// The host.
        host: u32,
        /// The network whose interface stalls.
        network: u32,
        /// How long the interface is frozen.
        duration: SimDuration,
    },
    /// The host crashes: its queued packets are dropped, its RMS state is
    /// lost, and packets addressed to it die on arrival.
    HostCrash {
        /// The host.
        host: u32,
    },
    /// The host restarts with empty protocol state.
    HostRestart {
        /// The host.
        host: u32,
    },
}

impl FaultKind {
    /// Short identifier used for per-fault-kind metric counters
    /// (`fault.<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NetworkDown { .. } => "network_down",
            FaultKind::NetworkUp { .. } => "network_up",
            FaultKind::Partition { .. } => "partition",
            FaultKind::HealPartition { .. } => "heal_partition",
            FaultKind::BurstLossStart { .. } => "burst_loss_start",
            FaultKind::BurstLossEnd { .. } => "burst_loss_end",
            FaultKind::IfaceStall { .. } => "iface_stall",
            FaultKind::HostCrash { .. } => "host_crash",
            FaultKind::HostRestart { .. } => "host_restart",
        }
    }
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered schedule of faults. Build one by hand ([`FaultPlan::at`],
/// [`FaultPlan::flap`]) or generate one from a seed
/// ([`FaultPlan::random`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, sorted by time (ties keep insertion order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `kind` at `at` (builder style).
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.sort();
        self
    }

    /// Link flapping: the network alternates down/up starting at `from`,
    /// staying down `down_for` and up `up_for`, until `until`. The plan
    /// always ends with the network up.
    pub fn flap(
        mut self,
        network: u32,
        from: SimTime,
        down_for: SimDuration,
        up_for: SimDuration,
        until: SimTime,
    ) -> Self {
        let mut t = from;
        while t < until {
            self.events.push(FaultEvent {
                at: t,
                kind: FaultKind::NetworkDown { network },
            });
            let up_at = t.saturating_add(down_for);
            self.events.push(FaultEvent {
                at: up_at.min(until),
                kind: FaultKind::NetworkUp { network },
            });
            t = up_at.saturating_add(up_for);
        }
        self.sort();
        self
    }

    /// A seeded random plan drawn from `cfg`. Every injected fault is
    /// paired with its recovery before `cfg.horizon`, so the world is
    /// healthy again once the plan has fully played out.
    pub fn random(rng: &mut Rng, cfg: &ChaosConfig) -> Self {
        let mut plan = FaultPlan::new();
        let n = rng.range(cfg.min_faults as u64, cfg.max_faults as u64 + 1) as usize;
        let horizon_us = cfg.horizon.as_micros().max(1);
        for _ in 0..n {
            // Faults start in the first three quarters of the window so
            // recoveries comfortably fit before the horizon.
            let start = SimTime::ZERO
                .saturating_add(SimDuration::from_micros(rng.below(horizon_us * 3 / 4)));
            let outage_us = rng.range(
                cfg.min_outage.as_micros().max(1),
                cfg.max_outage.as_micros().max(2),
            );
            let end = start
                .saturating_add(SimDuration::from_micros(outage_us))
                .min(SimTime::ZERO.saturating_add(cfg.horizon));
            let mut choices: Vec<u8> = Vec::new();
            if !cfg.networks.is_empty() {
                choices.push(0); // network down/up
                choices.push(2); // burst loss
            }
            if !cfg.host_pairs.is_empty() {
                choices.push(1); // partition
            }
            if !cfg.stall_targets.is_empty() {
                choices.push(3); // iface stall
            }
            if !cfg.crash_hosts.is_empty() {
                choices.push(4); // host crash/restart
            }
            let Some(&c) = rng.choose(&choices) else {
                break;
            };
            match c {
                0 => {
                    let network = *rng.choose(&cfg.networks).expect("non-empty");
                    plan.events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::NetworkDown { network },
                    });
                    plan.events.push(FaultEvent {
                        at: end,
                        kind: FaultKind::NetworkUp { network },
                    });
                }
                1 => {
                    let (a, b) = *rng.choose(&cfg.host_pairs).expect("non-empty");
                    plan.events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::Partition { a, b },
                    });
                    plan.events.push(FaultEvent {
                        at: end,
                        kind: FaultKind::HealPartition { a, b },
                    });
                }
                2 => {
                    let network = *rng.choose(&cfg.networks).expect("non-empty");
                    let model = GilbertElliott::new(
                        0.05 + rng.f64() * 0.2,
                        0.1 + rng.f64() * 0.3,
                        rng.f64() * 0.01,
                        0.5 + rng.f64() * 0.5,
                    );
                    plan.events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::BurstLossStart { network, model },
                    });
                    plan.events.push(FaultEvent {
                        at: end,
                        kind: FaultKind::BurstLossEnd { network },
                    });
                }
                3 => {
                    let (host, network) = *rng.choose(&cfg.stall_targets).expect("non-empty");
                    plan.events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::IfaceStall {
                            host,
                            network,
                            duration: end.saturating_since(start),
                        },
                    });
                }
                _ => {
                    let host = *rng.choose(&cfg.crash_hosts).expect("non-empty");
                    plan.events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::HostCrash { host },
                    });
                    plan.events.push(FaultEvent {
                        at: end,
                        kind: FaultKind::HostRestart { host },
                    });
                }
            }
        }
        plan.sort();
        plan
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }
}

/// Parameters for [`FaultPlan::random`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Window the whole plan (faults and recoveries) fits in.
    pub horizon: SimDuration,
    /// Networks eligible for down/up and burst-loss faults.
    pub networks: Vec<u32>,
    /// Host pairs eligible for partitions.
    pub host_pairs: Vec<(u32, u32)>,
    /// `(host, network)` interfaces eligible for stalls.
    pub stall_targets: Vec<(u32, u32)>,
    /// Hosts eligible for crash/restart.
    pub crash_hosts: Vec<u32>,
    /// Minimum faults per plan.
    pub min_faults: usize,
    /// Maximum faults per plan.
    pub max_faults: usize,
    /// Shortest outage duration.
    pub min_outage: SimDuration,
    /// Longest outage duration.
    pub max_outage: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            horizon: SimDuration::from_secs(2),
            networks: Vec::new(),
            host_pairs: Vec::new(),
            stall_targets: Vec::new(),
            crash_hosts: Vec::new(),
            min_faults: 1,
            max_faults: 5,
            min_outage: SimDuration::from_millis(10),
            max_outage: SimDuration::from_millis(300),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gilbert_elliott_burst_losses_cluster() {
        let mut rng = Rng::new(7);
        let mut ge = GilbertElliott::new(0.05, 0.2, 0.0, 1.0);
        let outcomes: Vec<bool> = (0..10_000).map(|_| ge.sample_loss(&mut rng)).collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        // Stationary bad-state occupancy = p_enter / (p_enter + p_exit) = 0.2.
        assert!(losses > 1_000 && losses < 3_200, "losses = {losses}");
        // Losses are correlated: P(loss | previous loss) far above the
        // marginal rate.
        let mut after_loss = 0usize;
        let mut loss_pairs = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    loss_pairs += 1;
                }
            }
        }
        let cond = loss_pairs as f64 / after_loss as f64;
        assert!(cond > 0.5, "conditional loss rate {cond} not bursty");
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let cfg = ChaosConfig {
            networks: vec![0, 1],
            host_pairs: vec![(0, 1)],
            stall_targets: vec![(0, 0), (1, 1)],
            crash_hosts: vec![1],
            ..ChaosConfig::default()
        };
        let a = FaultPlan::random(&mut Rng::new(42), &cfg);
        let b = FaultPlan::random(&mut Rng::new(42), &cfg);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let c = FaultPlan::random(&mut Rng::new(43), &cfg);
        assert_ne!(a, c, "different seeds should differ (vanishingly rare tie)");
    }

    #[test]
    fn random_plans_heal_everything_within_horizon() {
        let cfg = ChaosConfig {
            networks: vec![0, 1],
            host_pairs: vec![(0, 1)],
            crash_hosts: vec![0],
            ..ChaosConfig::default()
        };
        for seed in 0..50 {
            let plan = FaultPlan::random(&mut Rng::new(seed), &cfg);
            let horizon = SimTime::ZERO.saturating_add(cfg.horizon);
            let mut down = 0i64;
            let mut parts = 0i64;
            let mut crashed = 0i64;
            for e in &plan.events {
                assert!(e.at <= horizon, "event past horizon: {:?}", e);
                match e.kind {
                    FaultKind::NetworkDown { .. } => down += 1,
                    FaultKind::NetworkUp { .. } => down -= 1,
                    FaultKind::Partition { .. } => parts += 1,
                    FaultKind::HealPartition { .. } => parts -= 1,
                    FaultKind::HostCrash { .. } => crashed += 1,
                    FaultKind::HostRestart { .. } => crashed -= 1,
                    _ => {}
                }
            }
            assert_eq!(down, 0, "unmatched network down (seed {seed})");
            assert_eq!(parts, 0, "unmatched partition (seed {seed})");
            assert_eq!(crashed, 0, "unmatched crash (seed {seed})");
        }
    }

    #[test]
    fn flap_ends_up() {
        let t = |us| SimTime::ZERO.saturating_add(SimDuration::from_micros(us));
        let plan = FaultPlan::new().flap(
            3,
            t(1000),
            SimDuration::from_micros(500),
            SimDuration::from_micros(500),
            t(4000),
        );
        assert!(!plan.events.is_empty());
        let last_state_change = plan
            .events
            .iter()
            .rev()
            .find(|e| {
                matches!(
                    e.kind,
                    FaultKind::NetworkDown { .. } | FaultKind::NetworkUp { .. }
                )
            })
            .unwrap();
        assert!(matches!(
            last_state_change.kind,
            FaultKind::NetworkUp { network: 3 }
        ));
        // Sorted by time.
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
