//! Host CPU model with deadline-based short-term scheduling (paper §4.1).
//!
//! When an upper-level RMS is created, its total delay bound is divided among
//! stages; protocol processing at each end is one such stage, and the paper
//! requires the short-term scheduler to order protocol (and user) processes
//! by those deadlines. This module models one CPU per host: protocol work is
//! submitted as a [`Job`] with a cost and a deadline, and a pluggable
//! [`SchedPolicy`] picks the execution order. A context-switch cost is
//! charged whenever the CPU switches between job *streams* (the stand-in for
//! protocol process identity), which is what experiment `e4_fragmentation`
//! sweeps.
//!
//! Scheduling is non-preemptive: protocol jobs are short relative to delay
//! bounds, and non-preemptive EDF keeps the model (and its analysis) simple.
//! This choice is recorded in `DESIGN.md`.
//!
//! The CPU lives inside the simulation world `S`; completion events reach it
//! through a [`CpuAccessor`] function pointer so event closures stay
//! `'static` without borrowing the world.

use crate::engine::Sim;
use crate::stats::{Counter, Histogram};
use crate::time::{SimDuration, SimTime};

/// How the CPU picks the next ready job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Earliest-deadline-first: the policy the paper prescribes (§4.1).
    #[default]
    Edf,
    /// First-in-first-out arrival order: the "no information" baseline.
    Fifo,
    /// Static priority (lower number = more urgent), the "priorities only"
    /// baseline the conclusion contrasts with.
    Priority,
}

/// A unit of protocol or user processing to run on a host CPU.
pub struct Job<S> {
    /// Deadline by which this work should complete (drives EDF).
    pub deadline: SimTime,
    /// Static priority (drives [`SchedPolicy::Priority`]); lower is sooner.
    pub priority: u8,
    /// Identity of the process/stream this job belongs to; switching streams
    /// costs a context switch.
    pub stream: u64,
    /// CPU time the job consumes.
    pub cost: SimDuration,
    /// Continuation run when the job completes.
    pub cont: JobCont<S>,
}

/// Continuation run when a [`Job`] completes.
pub type JobCont<S> = Box<dyn FnOnce(&mut Sim<S>)>;

impl<S> std::fmt::Debug for Job<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("deadline", &self.deadline)
            .field("priority", &self.priority)
            .field("stream", &self.stream)
            .field("cost", &self.cost)
            .finish()
    }
}

struct ReadyJob<S> {
    /// Scheduling key, computed from the policy at submit time: the ready
    /// queue is a min-heap on `(key, seq)`, so picking the next job is
    /// O(log n) instead of a linear scan. The unique `seq` tie-break keeps
    /// the order identical to the old scan (and deterministic).
    key: u64,
    arrival: SimTime,
    seq: u64,
    job: Job<S>,
}

impl<S> PartialEq for ReadyJob<S> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<S> Eq for ReadyJob<S> {}

impl<S> PartialOrd for ReadyJob<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for ReadyJob<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the smallest key.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

struct Running<S> {
    cont: Option<JobCont<S>>,
    deadline: SimTime,
    finish_at: SimTime,
}

/// Function pointer that locates a host's CPU inside the world state.
///
/// Using a plain `fn` keeps completion events `Copy + 'static`.
pub type CpuAccessor<S> = fn(&mut S, u64) -> &mut Cpu<S>;

/// Counters exported by a [`Cpu`] for the scheduling experiments.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Jobs completed.
    pub completed: Counter,
    /// Jobs that finished after their deadline.
    pub deadline_misses: Counter,
    /// Context switches charged.
    pub context_switches: Counter,
    /// Total busy time (including context-switch overhead).
    pub busy: SimDuration,
    /// Lateness of completed jobs in seconds (0 for on-time jobs).
    pub lateness: Histogram,
}

/// A simulated single-core CPU with a ready queue and scheduling policy.
pub struct Cpu<S> {
    policy: SchedPolicy,
    context_switch: SimDuration,
    ready: std::collections::BinaryHeap<ReadyJob<S>>,
    running: Option<Running<S>>,
    current_stream: Option<u64>,
    seq: u64,
    /// Measurement counters; reset with [`Cpu::take_stats`].
    pub stats: CpuStats,
}

impl<S> std::fmt::Debug for Cpu<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("policy", &self.policy)
            .field("ready", &self.ready.len())
            .field("busy", &self.running.is_some())
            .finish()
    }
}

impl<S: 'static> Cpu<S> {
    /// Create a CPU with the given policy and per-switch overhead.
    pub fn new(policy: SchedPolicy, context_switch: SimDuration) -> Self {
        Cpu {
            policy,
            context_switch,
            ready: std::collections::BinaryHeap::new(),
            running: None,
            current_stream: None,
            seq: 0,
            stats: CpuStats::default(),
        }
    }

    /// The scheduling policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of jobs waiting (not counting the running one).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// True if a job is currently executing.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Take and reset the accumulated statistics.
    pub fn take_stats(&mut self) -> CpuStats {
        std::mem::take(&mut self.stats)
    }

    /// The heap key a job sorts by under this CPU's policy (ties broken by
    /// submission order via `seq`).
    fn sched_key(&self, job: &Job<S>) -> u64 {
        match self.policy {
            SchedPolicy::Edf => job.deadline.as_nanos(),
            SchedPolicy::Fifo => 0,
            SchedPolicy::Priority => job.priority as u64,
        }
    }

    fn pick_next(&mut self) -> Option<ReadyJob<S>> {
        self.ready.pop()
    }
}

/// Submit a job to the CPU of host `key`, starting it immediately if idle.
///
/// `acc` must return the same [`Cpu`] for the same `key` for the lifetime of
/// the simulation.
pub fn submit<S: 'static>(sim: &mut Sim<S>, acc: CpuAccessor<S>, key: u64, job: Job<S>) {
    let now = sim.now();
    let cpu = acc(&mut sim.state, key);
    let seq = cpu.seq;
    cpu.seq += 1;
    let sched_key = cpu.sched_key(&job);
    cpu.ready.push(ReadyJob {
        key: sched_key,
        arrival: now,
        seq,
        job,
    });
    if cpu.running.is_none() {
        start_next(sim, acc, key);
    }
}

fn start_next<S: 'static>(sim: &mut Sim<S>, acc: CpuAccessor<S>, key: u64) {
    let now = sim.now();
    let cpu = acc(&mut sim.state, key);
    debug_assert!(cpu.running.is_none());
    let Some(ready) = cpu.pick_next() else {
        return;
    };
    let _ = ready.arrival;
    let switch = if cpu.current_stream == Some(ready.job.stream) {
        SimDuration::ZERO
    } else {
        if cpu.current_stream.is_some() || !cpu.context_switch.is_zero() {
            cpu.stats.context_switches.incr();
        }
        cpu.context_switch
    };
    cpu.current_stream = Some(ready.job.stream);
    let service = switch.saturating_add(ready.job.cost);
    let finish_at = now.saturating_add(service);
    cpu.stats.busy = cpu.stats.busy.saturating_add(service);
    cpu.running = Some(Running {
        cont: Some(ready.job.cont),
        deadline: ready.job.deadline,
        finish_at,
    });
    sim.schedule_at(finish_at, move |sim| complete(sim, acc, key));
}

fn complete<S: 'static>(sim: &mut Sim<S>, acc: CpuAccessor<S>, key: u64) {
    let now = sim.now();
    let cont = {
        let cpu = acc(&mut sim.state, key);
        let running = cpu.running.as_mut().expect("completion without a job");
        debug_assert_eq!(running.finish_at, now);
        cpu.stats.completed.incr();
        let lateness = now.saturating_since(running.deadline);
        if !lateness.is_zero() {
            cpu.stats.deadline_misses.incr();
        }
        cpu.stats.lateness.record(lateness.as_secs_f64());
        running.cont.take().expect("continuation already taken")
    };
    // Run the continuation while `running` is still `Some`, so jobs it
    // submits are queued rather than started re-entrantly.
    cont(sim);
    let cpu = acc(&mut sim.state, key);
    cpu.running = None;
    start_next(sim, acc, key);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        cpu: Cpu<World>,
        order: Vec<u32>,
    }

    fn acc(w: &mut World, _key: u64) -> &mut Cpu<World> {
        &mut w.cpu
    }

    fn world(policy: SchedPolicy, ctx: SimDuration) -> Sim<World> {
        Sim::new(World {
            cpu: Cpu::new(policy, ctx),
            order: Vec::new(),
        })
    }

    fn job(tag: u32, deadline_ms: u64, priority: u8, stream: u64, cost_us: u64) -> Job<World> {
        Job {
            deadline: SimTime::from_nanos(deadline_ms * 1_000_000),
            priority,
            stream,
            cost: SimDuration::from_micros(cost_us),
            cont: Box::new(move |sim| sim.state.order.push(tag)),
        }
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut sim = world(SchedPolicy::Edf, SimDuration::ZERO);
        // First job starts immediately (FIFO head), the rest sort by deadline.
        submit(&mut sim, acc, 0, job(0, 100, 0, 0, 10));
        submit(&mut sim, acc, 0, job(3, 30, 0, 0, 10));
        submit(&mut sim, acc, 0, job(1, 10, 0, 0, 10));
        submit(&mut sim, acc, 0, job(2, 20, 0, 0, 10));
        sim.run();
        assert_eq!(sim.state.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut sim = world(SchedPolicy::Fifo, SimDuration::ZERO);
        submit(&mut sim, acc, 0, job(0, 100, 0, 0, 10));
        submit(&mut sim, acc, 0, job(1, 1, 0, 0, 10));
        submit(&mut sim, acc, 0, job(2, 50, 0, 0, 10));
        sim.run();
        assert_eq!(sim.state.order, vec![0, 1, 2]);
    }

    #[test]
    fn priority_orders_by_priority() {
        let mut sim = world(SchedPolicy::Priority, SimDuration::ZERO);
        submit(&mut sim, acc, 0, job(0, 1, 5, 0, 10));
        submit(&mut sim, acc, 0, job(2, 1, 9, 0, 10));
        submit(&mut sim, acc, 0, job(1, 1, 1, 0, 10));
        sim.run();
        assert_eq!(sim.state.order, vec![0, 1, 2]);
    }

    #[test]
    fn context_switch_charged_on_stream_change_only() {
        let mut sim = world(SchedPolicy::Fifo, SimDuration::from_micros(5));
        submit(&mut sim, acc, 0, job(0, 100, 0, 1, 10)); // switch (first)
        submit(&mut sim, acc, 0, job(1, 100, 0, 1, 10)); // same stream
        submit(&mut sim, acc, 0, job(2, 100, 0, 2, 10)); // switch
        sim.run();
        // 3 jobs * 10us + 2 switches * 5us = 40us.
        assert_eq!(sim.now(), SimTime::from_nanos(40_000));
        assert_eq!(sim.state.cpu.stats.context_switches.get(), 2);
        assert_eq!(sim.state.cpu.stats.completed.get(), 3);
    }

    #[test]
    fn deadline_misses_counted() {
        let mut sim = world(SchedPolicy::Fifo, SimDuration::ZERO);
        // Deadline at 1us, cost 10us -> must miss.
        submit(&mut sim, acc, 0, job(0, 0, 0, 0, 10));
        sim.run();
        assert_eq!(sim.state.cpu.stats.deadline_misses.get(), 1);
        assert!(sim.state.cpu.stats.lateness.mean() > 0.0);
    }

    #[test]
    fn continuation_can_submit_more_work() {
        let mut sim = world(SchedPolicy::Edf, SimDuration::ZERO);
        submit(
            &mut sim,
            acc,
            0,
            Job {
                deadline: SimTime::MAX,
                priority: 0,
                stream: 0,
                cost: SimDuration::from_micros(1),
                cont: Box::new(|sim| {
                    sim.state.order.push(1);
                    submit(sim, acc, 0, job(2, 1, 0, 0, 1));
                }),
            },
        );
        sim.run();
        assert_eq!(sim.state.order, vec![1, 2]);
        assert!(!sim.state.cpu.is_busy());
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = world(SchedPolicy::Edf, SimDuration::ZERO);
        submit(&mut sim, acc, 0, job(0, 100, 0, 0, 25));
        submit(&mut sim, acc, 0, job(1, 100, 0, 0, 25));
        sim.run();
        assert_eq!(sim.state.cpu.stats.busy, SimDuration::from_micros(50));
        let taken = sim.state.cpu.take_stats();
        assert_eq!(taken.completed.get(), 2);
        assert_eq!(sim.state.cpu.stats.completed.get(), 0);
    }
}
