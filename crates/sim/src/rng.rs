//! Deterministic pseudo-random numbers for workloads and fault injection.
//!
//! A self-contained xoshiro256++ generator seeded through SplitMix64. The
//! implementation is local so simulation runs are bit-for-bit reproducible
//! regardless of external crate versions, and so per-component sub-streams
//! ([`Rng::fork`]) can be derived cheaply.

/// Deterministic random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent sub-stream, keyed by `tag`.
    ///
    /// Forking gives each component (per host, per flow, per link) its own
    /// stream, so adding a consumer does not perturb the draws seen by
    /// others.
    pub fn fork(&mut self, tag: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's unbiased multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean: {mean}");
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std_dev");
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto-distributed value with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed; used for bursty traffic models.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "invalid pareto parameters");
        let u = 1.0 - self.f64();
        xm / u.powf(1.0 / alpha)
    }

    /// Poisson-distributed count with the given mean (Knuth's method; meant
    /// for small means such as per-tick arrival counts).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0 && mean.is_finite(), "invalid mean: {mean}");
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000_000 {
                // Defensive bound; unreachable for sane means.
                return k;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forked_streams_are_independent_of_later_use() {
        let mut root1 = Rng::new(7);
        let mut fork1 = root1.fork(1);
        let seq1: Vec<u64> = (0..16).map(|_| fork1.next_u64()).collect();

        let mut root2 = Rng::new(7);
        let mut fork2 = root2.fork(1);
        // Use root2 heavily after forking; fork stream must not change.
        for _ in 0..100 {
            root2.next_u64();
        }
        let seq2: Vec<u64> = (0..16).map(|_| fork2.next_u64()).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Rng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = Rng::new(13);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.poisson(2.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(1);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[5]), Some(&5));
    }
}
