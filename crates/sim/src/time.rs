//! Simulated time.
//!
//! All of DASH's delay bounds are expressed in real time (§2.2 of the paper:
//! "message delay is the elapsed real time between the start of the send
//! operation and the moment of delivery"), so the simulator keeps a single
//! virtual clock with nanosecond resolution.
//!
//! [`SimTime`] is an instant on that clock; [`SimDuration`] is a span between
//! two instants. Both are newtypes over `u64` nanoseconds so they cannot be
//! confused with each other or with raw integers.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in nanoseconds since the start of the run.
///
/// ```
/// use dash_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use dash_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" for idle timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Add a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "unbounded".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer count, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t1.since(t0).as_millis(), 5);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_backwards() {
        let t1 = SimTime::from_nanos(10);
        let _ = SimTime::ZERO.since(t1);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!(a + b, SimDuration::from_micros(14));
        assert_eq!(a - b, SimDuration::from_micros(6));
        assert_eq!(a * 3, SimDuration::from_micros(30));
        assert_eq!(a / 2, SimDuration::from_micros(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_is_scaled() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }
}
