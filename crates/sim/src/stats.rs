//! Measurement primitives used by the experiment harness.
//!
//! Everything here is plain data: counters, online moments, sample
//! reservoirs with quantiles, and rate meters over simulated time.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Online mean/variance/min/max (Welford's algorithm), O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A full-sample reservoir with exact quantiles. Suitable for the volumes a
/// simulation run produces (≤ millions of samples).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Record a duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact quantile `q ∈ [0, 1]` by nearest-rank (0 if empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median, shorthand for `quantile(0.5)`.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Maximum observation (0 if empty).
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// The raw samples, in their current internal order (record order
    /// until the first quantile query sorts them in place).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Append every sample of `other`, in `other`'s current order.
    ///
    /// Used by the parallel executor's deterministic registry merge:
    /// shard-local histograms concatenate in canonical shard order, so
    /// the merged sample vector — and every statistic derived from it —
    /// is a pure function of the run, not of thread scheduling.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|&&x| x > threshold).count();
        n as f64 / self.samples.len() as f64
    }
}

/// Measures an event rate (per simulated second) and byte throughput.
#[derive(Debug, Clone)]
pub struct RateMeter {
    start: SimTime,
    events: u64,
    bytes: u64,
}

impl RateMeter {
    /// Start measuring at `start`.
    pub fn new(start: SimTime) -> Self {
        RateMeter {
            start,
            events: 0,
            bytes: 0,
        }
    }

    /// Record one event carrying `bytes` of payload.
    pub fn record(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per simulated second at time `now` (0 if no time elapsed).
    pub fn event_rate(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.start).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.events as f64 / dt
        }
    }

    /// Bytes per simulated second at time `now` (0 if no time elapsed).
    pub fn byte_rate(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.start).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for x in 1..=100 {
            h.record(x as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.median() - 50.0).abs() <= 1.0);
        assert!((h.quantile(0.9) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn histogram_fraction_above() {
        let mut h = Histogram::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            h.record(x);
        }
        assert_eq!(h.fraction_above(2.0), 0.5);
        assert_eq!(h.fraction_above(10.0), 0.0);
        assert_eq!(Histogram::new().fraction_above(0.0), 0.0);
    }

    #[test]
    fn histogram_interleaved_record_and_quantile() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.median(), 5.0);
        h.record(1.0);
        h.record(9.0);
        assert_eq!(h.median(), 5.0);
        assert_eq!(h.quantile(1.0), 9.0);
    }

    #[test]
    fn rate_meter_rates() {
        let t0 = SimTime::ZERO;
        let mut m = RateMeter::new(t0);
        m.record(1000);
        m.record(1000);
        let now = t0 + SimDuration::from_secs(2);
        assert_eq!(m.events(), 2);
        assert_eq!(m.bytes(), 2000);
        assert!((m.event_rate(now) - 1.0).abs() < 1e-12);
        assert!((m.byte_rate(now) - 1000.0).abs() < 1e-12);
        assert_eq!(m.event_rate(t0), 0.0);
    }
}
