//! # dash-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the DASH / Real-Time Message Stream (RMS)
//! reproduction. The paper's claims are about *policy* — deadline-based
//! packet and process scheduling, parameter negotiation, selective flow
//! control — so every layer above runs on this deterministic virtual-time
//! engine where those policies are observable and reproducible.
//!
//! Components:
//!
//! - [`time`]: nanosecond [`time::SimTime`] / [`time::SimDuration`] newtypes.
//! - [`engine`]: the event loop, [`engine::Sim<S>`], with closures as events
//!   and deterministic tie-breaking.
//! - [`driver`]: the time-source seam ([`driver::TimeDriver`]) deciding how
//!   the queue is paced — [`driver::VirtualDriver`] here (as fast as
//!   possible), a wall-clock `Monotonic` driver in `dash-rt`.
//! - [`cpu`]: per-host CPU model with EDF / FIFO / priority short-term
//!   scheduling and context-switch costs (paper §4.1).
//! - [`rng`]: self-contained xoshiro256++ PRNG with forkable sub-streams.
//! - [`fault`]: fault-injection plans (scripted and seeded-random schedules
//!   of network failure, partitions, burst loss, stalls, crashes).
//! - [`stats`]: counters, online moments, exact-quantile histograms, rate
//!   meters.
//! - [`trace`]: bounded ring-buffer tracing.
//!
//! ## Example
//!
//! ```
//! use dash_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(Vec::new());
//! sim.schedule_in(SimDuration::from_millis(2), |s| s.state.push("b"));
//! sim.schedule_in(SimDuration::from_millis(1), |s| s.state.push("a"));
//! sim.run();
//! assert_eq!(sim.state, ["a", "b"]);
//! ```

pub mod cpu;
pub mod driver;
pub mod engine;
pub mod fault;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use driver::{TimeDriver, VirtualDriver};
pub use engine::{Event, Sim, TimerHandle};
pub use fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan, GilbertElliott};
pub use obs::{JsonLinesSink, MetricRegistry, Obs, ObsEvent, ObsSink, SpanRecord, Stage};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
