//! Cross-layer observability: typed events, a metric registry, and message
//! lifecycle spans.
//!
//! The paper's central quantitative claims are about *where time goes
//! inside the stack* (per-layer delay budgets, Fig. 3 / §3.4 / §4.1), so
//! measurement cannot be an afterthought bolted onto each experiment.
//! This module is the measurement plane every layer reports into:
//!
//! - [`ObsEvent`]: one typed event enum with a variant per interesting
//!   occurrence in every layer (admission decisions, interface queueing,
//!   fragmentation, piggybacking, caching, ST/stream/RKOM sends and
//!   deliveries, TCP retransmissions).
//! - [`MetricRegistry`]: named counters, gauges, and histograms fed
//!   automatically from events, replacing per-experiment private counter
//!   plumbing.
//! - Lifecycle spans: a message allocated a span id at transport `send`
//!   carries it through ST, fragmentation, the interface queue, the wire,
//!   and reassembly to port delivery. Each [`Stage`] is timestamped on
//!   first occurrence, yielding a per-stage latency breakdown
//!   ([`SpanRecord`]) that regenerates the Fig. 2/Fig. 3 budget tables.
//!
//! Emission is zero-cost when observability is off: every hook site guards
//! on [`Obs::is_active`] — a single boolean load, matching the existing
//! [`crate::trace::Trace`] discipline — and span ids are only allocated
//! while active, so wire images and timing are bit-identical to an
//! uninstrumented run. When active, frames carrying a span id grow by
//! 8 bytes: an honest, visible instrumentation cost.
//!
//! Sinks ([`ObsSink`]) observe the raw stream: [`JsonLinesSink`] exports
//! JSON-Lines for offline analysis, and [`TraceSink`] adapts events into
//! the old stringly [`crate::trace::Trace`] ring buffer.

use std::collections::BTreeMap;
use std::io::Write;

use crate::stats::{Counter, Histogram};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Open spans are capped at this many; beyond it the oldest (smallest id)
/// is discarded. Messages lost on the wire never complete their span, and
/// a bounded tracker keeps long lossy runs from accumulating state.
const MAX_OPEN_SPANS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Stages and events
// ---------------------------------------------------------------------------

/// A named instant in a message's lifecycle, ordered top-of-stack to
/// delivery. Each stage is recorded at most once per span (the first
/// occurrence wins, so fragments and retransmissions do not distort the
/// breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The stream transport accepted the message (`stream::send` pump).
    TransportSend,
    /// The ST engine accepted the message (`engine::send`); this instant is
    /// also the frame's `sent_at`, the delay-clock origin of §2.2.
    StSend,
    /// The network layer accepted the carrying message (`send_on_rms`).
    NetSend,
    /// The packet joined an interface transmit queue.
    IfaceEnqueue,
    /// The packet left the queue and started serializing onto the wire.
    WireTx,
    /// The packet reached the destination host's network layer.
    NetRecv,
    /// The ST engine delivered the (reassembled) message to its port; this
    /// instant equals `DeliveryInfo::delivered_at`.
    StDeliver,
}

impl Stage {
    /// Short stable identifier (used in JSON export and metric names).
    pub fn name(self) -> &'static str {
        match self {
            Stage::TransportSend => "transport_send",
            Stage::StSend => "st_send",
            Stage::NetSend => "net_send",
            Stage::IfaceEnqueue => "iface_enqueue",
            Stage::WireTx => "wire_tx",
            Stage::NetRecv => "net_recv",
            Stage::StDeliver => "st_deliver",
        }
    }

    /// Name of the latency interval that *starts* at this stage, e.g. the
    /// queueing delay starts at [`Stage::IfaceEnqueue`]. Used as the
    /// registry histogram name `span.stage.<interval>`.
    pub fn interval(self) -> &'static str {
        match self {
            Stage::TransportSend => "transport",
            Stage::StSend => "st_tx",
            Stage::NetSend => "net_tx",
            Stage::IfaceEnqueue => "queue",
            Stage::WireTx => "wire",
            Stage::NetRecv => "st_rx",
            Stage::StDeliver => "delivered",
        }
    }
}

/// Why a piggyback slot was flushed (public mirror of the engine's
/// internal cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The coalescing timer expired (§4.2 deadline-driven flush).
    Timer,
    /// The pending bundle would exceed the network message size.
    Overflow,
    /// An incompatible frame (deadline/parameter conflict) forced it out.
    Conflict,
    /// A fragmented message required exclusive use of the channel.
    Fragment,
    /// The slot was closing.
    Close,
}

impl FlushReason {
    /// Short stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Timer => "timer",
            FlushReason::Overflow => "overflow",
            FlushReason::Conflict => "conflict",
            FlushReason::Fragment => "fragment",
            FlushReason::Close => "close",
        }
    }
}

/// One typed observability event. Variants carry raw ids (`u32` hosts,
/// `u64` streams/sequences) because this crate sits below the layers that
/// define the id newtypes.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// An admission-control decision at a hop's interface ledger (§2.3).
    AdmissionDecision {
        /// Deciding host.
        host: u32,
        /// Whether the reservation was admitted.
        admitted: bool,
    },
    /// A packet joined an interface transmit queue.
    IfaceEnqueue {
        /// Queueing host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
        /// Span of the carried data, if any.
        span: Option<u64>,
        /// Packets waiting after the enqueue.
        queued_packets: usize,
        /// Bytes waiting after the enqueue.
        queued_bytes: u64,
    },
    /// A packet left the queue and started transmitting ([`Stage::WireTx`]).
    IfaceDequeue {
        /// Transmitting host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
        /// Span of the carried data, if any.
        span: Option<u64>,
        /// Packets still waiting after the dequeue.
        queued_packets: usize,
        /// Bytes still waiting after the dequeue.
        queued_bytes: u64,
    },
    /// A packet was dropped at an interface for queue overflow.
    IfaceDrop {
        /// Dropping host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
    },
    /// The network layer accepted a message for transmission.
    NetSend {
        /// Sending host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Payload bytes.
        bytes: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// A data packet reached the destination host's network layer.
    NetRecv {
        /// Receiving host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Packet sequence number.
        seq: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// A packet was handed to an interface (counted once at the source).
    NetPacketSent {
        /// Sending host.
        host: u32,
    },
    /// A packet was delivered in sequence to a receiving RMS endpoint.
    NetPacketDelivered {
        /// Receiving host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Packet sequence number.
        seq: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// The ST engine accepted a client message ([`Stage::StSend`]).
    StSend {
        /// Sending host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// The message's span.
        span: Option<u64>,
    },
    /// The ST engine delivered a message to its port
    /// ([`Stage::StDeliver`], completing the span).
    StDeliver {
        /// Receiving host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// Whether delivery exceeded the negotiated delay bound.
        late: bool,
        /// The message's span.
        span: Option<u64>,
    },
    /// A message was split into fragments (§4.3).
    Fragment {
        /// Fragmenting host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Number of fragments produced.
        count: u32,
        /// The message's span.
        span: Option<u64>,
    },
    /// Fragments were reassembled into a complete message (§4.3).
    Reassemble {
        /// Reassembling host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// The message's span.
        span: Option<u64>,
    },
    /// A frame was coalesced into a pending piggyback bundle (§4.2).
    PiggybackCoalesce {
        /// Coalescing host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Frames pending after the coalesce.
        pending: usize,
    },
    /// A piggyback slot was flushed to the network (§4.2).
    PiggybackFlush {
        /// Flushing host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Frames in the flushed bundle.
        frames: usize,
        /// Why the flush happened.
        reason: FlushReason,
    },
    /// An ST channel-cache lookup hit (§3.2 connection caching).
    CacheHit {
        /// Host performing the lookup.
        host: u32,
    },
    /// An ST channel-cache lookup missed.
    CacheMiss {
        /// Host performing the lookup.
        host: u32,
    },
    /// An idle cached channel was evicted.
    CacheEvict {
        /// Evicting host.
        host: u32,
    },
    /// The ST engine handed one network message (frame or bundle) down.
    StNetMsg {
        /// Sending host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Encoded bytes.
        bytes: u64,
        /// Span carried, if any.
        span: Option<u64>,
    },
    /// A fast acknowledgement was sent (§3.2).
    FastAckSent {
        /// Acknowledging host.
        host: u32,
        /// Acknowledged ST RMS id.
        st_rms: u64,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// A per-peer control channel finished creation (§3.2).
    ControlCreated {
        /// Local host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// An authentication hello was sent (§3.2).
    HelloSent {
        /// Sending host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// An ST RMS creation was requested (§2.4).
    CreateRequested {
        /// Requesting host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// The stream transport sent a message ([`Stage::TransportSend`]).
    TransportSend {
        /// Sending host.
        host: u32,
        /// Stream session id.
        session: u64,
        /// Stream sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// The span allocated for the message.
        span: Option<u64>,
    },
    /// The stream transport delivered a message in order.
    StreamDeliver {
        /// Receiving host.
        host: u32,
        /// Stream session id.
        session: u64,
        /// Stream sequence number.
        seq: u64,
    },
    /// The stream transport sent a window acknowledgement.
    StreamAck {
        /// Acknowledging host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// A stream sender was blocked by flow control.
    StreamBlocked {
        /// Blocked host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// A reliable stream sender gave up after its retry budget.
    StreamRetriesExhausted {
        /// Sending host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// An RKOM call was issued (§3.3).
    RkomSend {
        /// Calling host.
        host: u32,
        /// Callee host.
        peer: u32,
        /// Call id.
        call: u64,
    },
    /// An RKOM call completed with a reply (§3.3).
    RkomDeliver {
        /// Calling host.
        host: u32,
        /// Call id.
        call: u64,
    },
    /// A TCP baseline connection retransmitted segments.
    TcpRetransmit {
        /// Retransmitting host.
        host: u32,
        /// Connection id.
        conn: u64,
        /// Segments resent.
        segments: u64,
    },
    /// A fault was injected (fault-injection subsystem, `dash_sim::fault`).
    FaultInjected {
        /// The fault kind's short name ([`crate::fault::FaultKind::name`]);
        /// also increments a per-kind `fault.<kind>` counter.
        kind: &'static str,
    },
    /// A network went down; RMSs over it failed.
    NetworkFailed {
        /// The network.
        network: u32,
    },
    /// A network came back up; routes over it are usable again.
    NetworkRestored {
        /// The network.
        network: u32,
    },
    /// A host crashed, losing its protocol state.
    HostCrashed {
        /// The host.
        host: u32,
    },
    /// A crashed host restarted with empty protocol state.
    HostRestarted {
        /// The host.
        host: u32,
    },
    /// The ST began failing streams over to a new network RMS after their
    /// network RMS died.
    FailoverStarted {
        /// The host performing failover.
        host: u32,
        /// How many ST streams are being moved.
        streams: u32,
    },
    /// One ST stream completed failover onto a replacement network RMS.
    FailoverCompleted {
        /// The host.
        host: u32,
        /// The recovered ST stream.
        st_rms: u64,
        /// Failure-to-recovery latency in seconds (also recorded in the
        /// `fault.recovery_latency` histogram).
        latency_s: f64,
    },
}

impl ObsEvent {
    /// The registry counter this event increments (also the JSON `name`).
    pub fn name(&self) -> &'static str {
        match self {
            ObsEvent::AdmissionDecision { admitted: true, .. } => "net.admission_admitted",
            ObsEvent::AdmissionDecision { admitted: false, .. } => "net.admission_rejected",
            ObsEvent::IfaceEnqueue { .. } => "net.iface_enqueue",
            ObsEvent::IfaceDequeue { .. } => "net.iface_dequeue",
            ObsEvent::IfaceDrop { .. } => "net.iface_drop",
            ObsEvent::NetSend { .. } => "net.send",
            ObsEvent::NetRecv { .. } => "net.recv",
            ObsEvent::NetPacketSent { .. } => "net.packet_sent",
            ObsEvent::NetPacketDelivered { .. } => "net.packet_delivered",
            ObsEvent::StSend { .. } => "st.send",
            ObsEvent::StDeliver { .. } => "st.deliver",
            ObsEvent::Fragment { .. } => "st.msg_fragmented",
            ObsEvent::Reassemble { .. } => "st.reassembled",
            ObsEvent::PiggybackCoalesce { .. } => "st.coalesced",
            ObsEvent::PiggybackFlush { .. } => "st.flush",
            ObsEvent::CacheHit { .. } => "st.cache_hit",
            ObsEvent::CacheMiss { .. } => "st.cache_miss",
            ObsEvent::CacheEvict { .. } => "st.cache_eviction",
            ObsEvent::StNetMsg { .. } => "st.net_msg_sent",
            ObsEvent::FastAckSent { .. } => "st.fast_ack_sent",
            ObsEvent::ControlCreated { .. } => "st.control_created",
            ObsEvent::HelloSent { .. } => "st.hello_sent",
            ObsEvent::CreateRequested { .. } => "st.create_requested",
            ObsEvent::TransportSend { .. } => "stream.send",
            ObsEvent::StreamDeliver { .. } => "stream.deliver",
            ObsEvent::StreamAck { .. } => "stream.ack_sent",
            ObsEvent::StreamBlocked { .. } => "stream.sender_blocked",
            ObsEvent::StreamRetriesExhausted { .. } => "stream.retries_exhausted",
            ObsEvent::RkomSend { .. } => "rkom.call",
            ObsEvent::RkomDeliver { .. } => "rkom.completed",
            ObsEvent::TcpRetransmit { .. } => "tcp.retransmit",
            ObsEvent::FaultInjected { .. } => "fault.injected",
            ObsEvent::NetworkFailed { .. } => "net.network_failed",
            ObsEvent::NetworkRestored { .. } => "net.network_restored",
            ObsEvent::HostCrashed { .. } => "net.host_crashed",
            ObsEvent::HostRestarted { .. } => "net.host_restarted",
            ObsEvent::FailoverStarted { .. } => "st.failover_started",
            ObsEvent::FailoverCompleted { .. } => "st.failover_completed",
        }
    }

    /// The lifecycle stage this event timestamps, when it carries a span.
    pub fn span_stage(&self) -> Option<(u64, Stage)> {
        match self {
            ObsEvent::TransportSend { span, .. } => span.map(|s| (s, Stage::TransportSend)),
            ObsEvent::StSend { span, .. } => span.map(|s| (s, Stage::StSend)),
            ObsEvent::NetSend { span, .. } => span.map(|s| (s, Stage::NetSend)),
            ObsEvent::IfaceEnqueue { span, .. } => span.map(|s| (s, Stage::IfaceEnqueue)),
            // Dequeue and transmission start are the same instant.
            ObsEvent::IfaceDequeue { span, .. } => span.map(|s| (s, Stage::WireTx)),
            ObsEvent::NetRecv { span, .. } => span.map(|s| (s, Stage::NetRecv)),
            ObsEvent::StDeliver { span, .. } => span.map(|s| (s, Stage::StDeliver)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Named counters, gauges, and histograms. Keys are `String` so callers may
/// register dynamic per-stream metrics; iteration order is deterministic
/// (sorted by name) for stable export.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), Counter::default());
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Current value of a counter (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Set the gauge named `name`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram named `name`, created on first use. Mutable access
    /// also serves reads: quantiles sort the backing sample in place.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_string(), Histogram::default());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// True if a histogram named `name` has recorded samples.
    pub fn has_histogram(&self, name: &str) -> bool {
        self.histograms.get(name).map(|h| h.count() > 0).unwrap_or(false)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|k| k.as_str())
    }

    /// Dump every metric as one JSON object per line (counters, gauges,
    /// then histogram summaries with quantiles).
    pub fn to_json_lines(&mut self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters.iter() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{}}}\n",
                v.get()
            ));
        }
        for (name, v) in self.gauges.iter() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, h) in self.histograms.iter_mut() {
            if h.count() == 0 {
                continue;
            }
            let (mean, p50, p99) = (h.mean(), h.median(), h.quantile(0.99));
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\
                 \"mean\":{mean},\"p50\":{p50},\"p99\":{p99}}}\n",
                h.count()
            ));
        }
        out
    }

    /// Record the registry-side effects of one event.
    fn apply(&mut self, event: &ObsEvent) {
        self.counter(event.name()).incr();
        match event {
            ObsEvent::IfaceEnqueue {
                queued_packets,
                queued_bytes,
                ..
            } => {
                self.gauge_set("net.iface_queue_packets", *queued_packets as f64);
                self.gauge_set("net.iface_queue_bytes", *queued_bytes as f64);
                self.histogram("net.iface_queue_depth").record(*queued_packets as f64);
            }
            ObsEvent::Fragment { count, .. } => {
                self.counter("st.fragment_sent").add(*count as u64);
            }
            ObsEvent::PiggybackFlush { frames, reason, .. } => {
                match reason {
                    FlushReason::Timer => self.counter("st.flush_timer").incr(),
                    FlushReason::Overflow => self.counter("st.flush_overflow").incr(),
                    FlushReason::Conflict => self.counter("st.flush_conflict").incr(),
                    FlushReason::Fragment => self.counter("st.flush_fragment").incr(),
                    FlushReason::Close => self.counter("st.flush_close").incr(),
                }
                if *frames > 1 {
                    self.counter("st.bundle_sent").incr();
                    self.counter("st.msg_bundled").add(*frames as u64);
                } else {
                    self.counter("st.msg_alone").incr();
                }
            }
            ObsEvent::StNetMsg { bytes, .. } => {
                self.counter("st.net_bytes_sent").add(*bytes);
            }
            ObsEvent::StDeliver { late, st_rms, .. } if *late => {
                self.counter("st.late_delivery").incr();
                self.counter(&format!("st.late.{st_rms}")).incr();
            }
            ObsEvent::TcpRetransmit { segments, .. } => {
                self.counter("tcp.segments_retransmitted").add(*segments);
            }
            ObsEvent::FaultInjected { kind } => {
                self.counter(&format!("fault.{kind}")).incr();
            }
            ObsEvent::FailoverStarted { streams, .. } => {
                self.counter("st.failover_streams").add(u64::from(*streams));
            }
            ObsEvent::FailoverCompleted { latency_s, .. } => {
                self.histogram("fault.recovery_latency").record(*latency_s);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A completed message lifecycle: the stages it passed through, in the
/// order they were first observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span id.
    pub span: u64,
    /// The ST RMS it was delivered on.
    pub stream: u64,
    /// The delivered message's ST sequence number.
    pub seq: u64,
    /// `(stage, first occurrence)` pairs in observation order.
    pub stages: Vec<(Stage, SimTime)>,
}

impl SpanRecord {
    /// When `stage` was first observed, if it was.
    pub fn stage_time(&self, stage: Stage) -> Option<SimTime> {
        self.stages.iter().find(|(s, _)| *s == stage).map(|(_, t)| *t)
    }

    /// Elapsed time between two observed stages (`None` if either is
    /// missing, saturating at zero).
    pub fn between(&self, from: Stage, to: Stage) -> Option<SimDuration> {
        let a = self.stage_time(from)?;
        let b = self.stage_time(to)?;
        Some(b.saturating_since(a))
    }

    /// End-to-end latency: first observed stage to last.
    pub fn e2e(&self) -> SimDuration {
        match (self.stages.first(), self.stages.last()) {
            (Some((_, a)), Some((_, b))) => b.saturating_since(*a),
            _ => SimDuration::ZERO,
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    stages: Vec<(Stage, SimTime)>,
}

/// Tracks open spans and closes them on [`Stage::StDeliver`].
#[derive(Debug, Default)]
struct SpanTracker {
    open: BTreeMap<u64, OpenSpan>,
    /// Open spans discarded because the tracker was full.
    dropped: u64,
}

impl SpanTracker {
    /// Record `stage` for `span` (first occurrence only). Returns the
    /// completed record when the stage closes the span.
    fn record(
        &mut self,
        span: u64,
        stage: Stage,
        time: SimTime,
        stream: u64,
        seq: u64,
    ) -> Option<SpanRecord> {
        let entry = self.open.entry(span).or_insert_with(|| OpenSpan { stages: Vec::new() });
        if !entry.stages.iter().any(|(s, _)| *s == stage) {
            entry.stages.push((stage, time));
        }
        if stage == Stage::StDeliver {
            let done = self.open.remove(&span).expect("span just touched");
            return Some(SpanRecord {
                span,
                stream,
                seq,
                stages: done.stages,
            });
        }
        if self.open.len() > MAX_OPEN_SPANS {
            self.open.pop_first();
            self.dropped += 1;
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A consumer of the raw observability stream. Installed via
/// `Obs::set_sink`; both hooks default to no-ops so a sink may care about
/// only events or only spans.
pub trait ObsSink {
    /// An event was emitted at `time`.
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        let _ = (time, event);
    }

    /// A message lifecycle completed.
    fn on_span(&mut self, record: &SpanRecord) {
        let _ = record;
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the stream as JSON-Lines: one `{"type":"span",...}` object per
/// delivered message and, when enabled, one `{"type":"event",...}` object
/// per event. Hand-rolled serialization — the workspace carries no JSON
/// dependency.
pub struct JsonLinesSink {
    out: Box<dyn Write>,
    events: bool,
}

impl JsonLinesSink {
    /// Span records only (one line per delivered message).
    pub fn new(out: impl Write + 'static) -> Self {
        JsonLinesSink {
            out: Box::new(out),
            events: false,
        }
    }

    /// Also export every raw event (verbose).
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }
}

impl ObsSink for JsonLinesSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        if !self.events {
            return;
        }
        let _ = writeln!(
            self.out,
            "{{\"type\":\"event\",\"t_ns\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
            time.as_nanos(),
            event.name(),
            json_escape(&format!("{event:?}")),
        );
    }

    fn on_span(&mut self, record: &SpanRecord) {
        let stages: Vec<String> = record
            .stages
            .iter()
            .map(|(s, t)| format!("{{\"stage\":\"{}\",\"t_ns\":{}}}", s.name(), t.as_nanos()))
            .collect();
        let _ = writeln!(
            self.out,
            "{{\"type\":\"span\",\"span\":{},\"stream\":{},\"seq\":{},\"e2e_ns\":{},\"stages\":[{}]}}",
            record.span,
            record.stream,
            record.seq,
            record.e2e().as_nanos(),
            stages.join(","),
        );
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Adapts typed events onto the old stringly [`Trace`] ring buffer, making
/// `Trace` a thin sink over [`ObsEvent`] instead of a parallel mechanism.
#[derive(Debug)]
pub struct TraceSink {
    /// The backing trace (read it after the run).
    pub trace: Trace,
}

impl TraceSink {
    /// A trace sink retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let mut trace = Trace::new(capacity);
        trace.set_enabled(true);
        TraceSink { trace }
    }
}

impl ObsSink for TraceSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        self.trace.record(time, event.name(), || format!("{event:?}"));
    }

    fn on_span(&mut self, record: &SpanRecord) {
        let time = record
            .stages
            .last()
            .map(|(_, t)| *t)
            .unwrap_or(SimTime::ZERO);
        self.trace.record(time, "span", || format!("{record:?}"));
    }
}

// ---------------------------------------------------------------------------
// The observability hub
// ---------------------------------------------------------------------------

/// The per-world observability hub: holds the activation flag, the metric
/// registry, the span tracker, and the optional sink. Lives in the network
/// layer's state so every layer reaches it through `W::net()`.
pub struct Obs {
    active: bool,
    sink: Option<Box<dyn ObsSink>>,
    /// The metric registry (readable while inactive; it is simply empty).
    pub registry: MetricRegistry,
    tracker: SpanTracker,
    retain: bool,
    completed: Vec<SpanRecord>,
    next_span: u64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("active", &self.active)
            .field("sink", &self.sink.is_some())
            .field("open_spans", &self.tracker.open.len())
            .field("completed_spans", &self.completed.len())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            active: false,
            sink: None,
            registry: MetricRegistry::new(),
            tracker: SpanTracker::default(),
            retain: false,
            completed: Vec::new(),
            next_span: 1,
        }
    }
}

impl Obs {
    /// Inactive hub (the default embedded in every world).
    pub fn new() -> Self {
        Obs::default()
    }

    /// Turn emission on without installing a sink (registry + spans only).
    pub fn enable(&mut self) {
        self.active = true;
    }

    /// Install a sink and activate emission.
    pub fn set_sink(&mut self, sink: impl ObsSink + 'static) {
        self.set_boxed_sink(Box::new(sink));
    }

    /// Install an already-boxed sink and activate emission (used by
    /// builders that collect the sink before the world exists).
    pub fn set_boxed_sink(&mut self, sink: Box<dyn ObsSink>) {
        self.sink = Some(sink);
        self.active = true;
    }

    /// Remove the sink (emission stays on if it was on).
    pub fn take_sink(&mut self) -> Option<Box<dyn ObsSink>> {
        self.sink.take()
    }

    /// True when hook sites should emit. This is the single cheap check on
    /// every fast path; when false, instrumented code is a no-op.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Keep completed [`SpanRecord`]s in memory (off by default; sinks see
    /// them either way).
    pub fn retain_spans(&mut self, on: bool) {
        self.retain = on;
    }

    /// Completed spans retained so far (see [`Obs::retain_spans`]).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.completed
    }

    /// Open spans discarded because the tracker was full.
    pub fn spans_dropped(&self) -> u64 {
        self.tracker.dropped
    }

    /// Allocate a fresh span id, or `None` while inactive — so an idle run
    /// never pays for (or wire-encodes) span ids.
    pub fn start_span(&mut self) -> Option<u64> {
        if !self.active {
            return None;
        }
        let id = self.next_span;
        self.next_span += 1;
        Some(id)
    }

    /// Emit one event: updates the registry, advances the event's span
    /// stage (closing the span on [`Stage::StDeliver`]), and forwards to
    /// the sink.
    pub fn emit(&mut self, time: SimTime, event: ObsEvent) {
        if !self.active {
            return;
        }
        self.registry.apply(&event);
        if let Some((span, stage)) = event.span_stage() {
            let (stream, seq) = match &event {
                ObsEvent::StDeliver { st_rms, seq, .. } => (*st_rms, *seq),
                _ => (0, 0),
            };
            if let Some(record) = self.tracker.record(span, stage, time, stream, seq) {
                self.finish_span(&record);
                if self.retain {
                    self.completed.push(record);
                }
            }
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.on_event(time, &event);
        }
    }

    /// Feed a completed span into the latency histograms and the sink.
    fn finish_span(&mut self, record: &SpanRecord) {
        let reg = &mut self.registry;
        reg.histogram("span.e2e").record(record.e2e().as_secs_f64());
        if let Some(d) = record.between(Stage::StSend, Stage::StDeliver) {
            reg.histogram("span.st").record(d.as_secs_f64());
        }
        if let Some(d) = record.between(Stage::NetSend, Stage::NetRecv) {
            reg.histogram("span.net").record(d.as_secs_f64());
        }
        for pair in record.stages.windows(2) {
            let (stage, t0) = pair[0];
            let (_, t1) = pair[1];
            reg.histogram(&format!("span.stage.{}", stage.interval()))
                .record(t1.saturating_since(t0).as_secs_f64());
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.on_span(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver_event(span: u64) -> ObsEvent {
        ObsEvent::StDeliver {
            host: 1,
            st_rms: 9,
            seq: 4,
            bytes: 10,
            late: false,
            span: Some(span),
        }
    }

    #[test]
    fn inactive_obs_is_inert() {
        let mut obs = Obs::new();
        assert!(!obs.is_active());
        assert_eq!(obs.start_span(), None);
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        assert_eq!(obs.registry.counter_value("st.cache_hit"), 0);
    }

    #[test]
    fn events_feed_counters() {
        let mut obs = Obs::new();
        obs.enable();
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        obs.emit(
            SimTime::ZERO,
            ObsEvent::Fragment {
                host: 0,
                st_rms: 1,
                seq: 0,
                count: 5,
                span: None,
            },
        );
        assert_eq!(obs.registry.counter_value("st.cache_hit"), 2);
        assert_eq!(obs.registry.counter_value("st.msg_fragmented"), 1);
        assert_eq!(obs.registry.counter_value("st.fragment_sent"), 5);
    }

    #[test]
    fn span_life_cycle_records_stages_in_order() {
        let mut obs = Obs::new();
        obs.enable();
        obs.retain_spans(true);
        let span = obs.start_span().unwrap();
        let t = |ns| SimTime::from_nanos(ns);
        obs.emit(
            t(10),
            ObsEvent::StSend {
                host: 0,
                st_rms: 9,
                seq: 4,
                bytes: 10,
                span: Some(span),
            },
        );
        obs.emit(
            t(20),
            ObsEvent::NetSend {
                host: 0,
                rms: 1,
                bytes: 40,
                span: Some(span),
            },
        );
        // A second fragment hitting the same stage must not overwrite.
        obs.emit(
            t(25),
            ObsEvent::NetSend {
                host: 0,
                rms: 1,
                bytes: 40,
                span: Some(span),
            },
        );
        obs.emit(t(60), deliver_event(span));
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        let rec = &spans[0];
        assert_eq!(rec.stream, 9);
        assert_eq!(rec.seq, 4);
        assert_eq!(rec.stage_time(Stage::NetSend), Some(t(20)));
        assert_eq!(rec.e2e(), SimDuration::from_nanos(50));
        assert_eq!(
            rec.between(Stage::StSend, Stage::StDeliver),
            Some(SimDuration::from_nanos(50))
        );
        assert!(obs.registry.has_histogram("span.e2e"));
        assert!(obs.registry.has_histogram("span.st"));
    }

    #[test]
    fn json_lines_sink_emits_one_span_line_per_delivery() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let mut obs = Obs::new();
        obs.set_sink(JsonLinesSink::new(shared.clone()));
        for _ in 0..3 {
            let span = obs.start_span().unwrap();
            obs.emit(
                SimTime::from_nanos(1),
                ObsEvent::StSend {
                    host: 0,
                    st_rms: 9,
                    seq: 0,
                    bytes: 1,
                    span: Some(span),
                },
            );
            obs.emit(SimTime::from_nanos(2), deliver_event(span));
        }
        let buf = shared.0.borrow();
        let text = std::str::from_utf8(&buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with("{\"type\":\"span\""), "bad line: {line}");
            assert!(line.contains("\"stage\":\"st_send\""));
        }
    }

    #[test]
    fn trace_sink_adapts_events() {
        let mut obs = Obs::new();
        obs.set_sink(TraceSink::new(16));
        obs.emit(SimTime::from_nanos(5), ObsEvent::CacheMiss { host: 2 });
        let sink = obs.take_sink().unwrap();
        // The sink is opaque as a trait object; re-emit through a fresh one
        // to check the formatting contract instead.
        drop(sink);
        let mut ts = TraceSink::new(16);
        ts.on_event(SimTime::from_nanos(5), &ObsEvent::CacheMiss { host: 2 });
        let events: Vec<_> = ts.trace.events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].subsystem, "st.cache_miss");
    }

    #[test]
    fn tracker_caps_open_spans() {
        let mut obs = Obs::new();
        obs.enable();
        for _ in 0..(MAX_OPEN_SPANS + 10) {
            let span = obs.start_span().unwrap();
            obs.emit(
                SimTime::ZERO,
                ObsEvent::StSend {
                    host: 0,
                    st_rms: 1,
                    seq: 0,
                    bytes: 1,
                    span: Some(span),
                },
            );
        }
        assert!(obs.spans_dropped() > 0);
    }

    #[test]
    fn registry_json_dump_is_line_per_metric() {
        let mut reg = MetricRegistry::new();
        reg.counter("a.b").add(3);
        reg.gauge_set("g", 1.5);
        reg.histogram("h").record(0.25);
        let dump = reg.to_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"counter\""));
        assert!(lines[1].contains("\"gauge\""));
        assert!(lines[2].contains("\"histogram\""));
    }
}
