//! Cross-layer observability: typed events, a metric registry, and message
//! lifecycle spans.
//!
//! The paper's central quantitative claims are about *where time goes
//! inside the stack* (per-layer delay budgets, Fig. 3 / §3.4 / §4.1), so
//! measurement cannot be an afterthought bolted onto each experiment.
//! This module is the measurement plane every layer reports into:
//!
//! - [`ObsEvent`]: one typed event enum with a variant per interesting
//!   occurrence in every layer (admission decisions, interface queueing,
//!   fragmentation, piggybacking, caching, ST/stream/RKOM sends and
//!   deliveries, TCP retransmissions).
//! - [`MetricRegistry`]: named counters, gauges, and histograms fed
//!   automatically from events, replacing per-experiment private counter
//!   plumbing.
//! - Lifecycle spans: a message allocated a span id at transport `send`
//!   carries it through ST, fragmentation, the interface queue, the wire,
//!   and reassembly to port delivery. Each [`Stage`] is timestamped on
//!   first occurrence, yielding a per-stage latency breakdown
//!   ([`SpanRecord`]) that regenerates the Fig. 2/Fig. 3 budget tables.
//!
//! Emission is zero-cost when observability is off: every hook site guards
//! on [`Obs::is_active`] — a single boolean load, matching the existing
//! [`crate::trace::Trace`] discipline — and span ids are only allocated
//! while active, so wire images and timing are bit-identical to an
//! uninstrumented run. When active, frames carrying a span id grow by
//! 8 bytes: an honest, visible instrumentation cost.
//!
//! Sinks ([`ObsSink`]) observe the raw stream: [`JsonLinesSink`] exports
//! JSON-Lines for offline analysis, and [`TraceSink`] adapts events into
//! the old stringly [`crate::trace::Trace`] ring buffer.

use std::collections::BTreeMap;
use std::io::Write;

use crate::stats::{Counter, Histogram};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Open spans are capped at this many; beyond it the oldest (smallest id)
/// is discarded. Messages lost on the wire never complete their span, and
/// a bounded tracker keeps long lossy runs from accumulating state.
const MAX_OPEN_SPANS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Stages and events
// ---------------------------------------------------------------------------

/// A named instant in a message's lifecycle, ordered top-of-stack to
/// delivery. Each stage is recorded at most once per span (the first
/// occurrence wins, so fragments and retransmissions do not distort the
/// breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The stream transport accepted the message (`stream::send` pump).
    TransportSend,
    /// The ST engine accepted the message (`engine::send`); this instant is
    /// also the frame's `sent_at`, the delay-clock origin of §2.2.
    StSend,
    /// The network layer accepted the carrying message (`send_on_rms`).
    NetSend,
    /// The packet joined an interface transmit queue.
    IfaceEnqueue,
    /// The packet left the queue and started serializing onto the wire.
    WireTx,
    /// The packet reached the destination host's network layer.
    NetRecv,
    /// The ST engine delivered the (reassembled) message to its port; this
    /// instant equals `DeliveryInfo::delivered_at`.
    StDeliver,
}

impl Stage {
    /// Short stable identifier (used in JSON export and metric names).
    pub fn name(self) -> &'static str {
        match self {
            Stage::TransportSend => "transport_send",
            Stage::StSend => "st_send",
            Stage::NetSend => "net_send",
            Stage::IfaceEnqueue => "iface_enqueue",
            Stage::WireTx => "wire_tx",
            Stage::NetRecv => "net_recv",
            Stage::StDeliver => "st_deliver",
        }
    }

    /// Name of the latency interval that *starts* at this stage, e.g. the
    /// queueing delay starts at [`Stage::IfaceEnqueue`]. Used as the
    /// registry histogram name `span.stage.<interval>`.
    pub fn interval(self) -> &'static str {
        match self {
            Stage::TransportSend => "transport",
            Stage::StSend => "st_tx",
            Stage::NetSend => "net_tx",
            Stage::IfaceEnqueue => "queue",
            Stage::WireTx => "wire",
            Stage::NetRecv => "st_rx",
            Stage::StDeliver => "delivered",
        }
    }
}

/// Why a piggyback slot was flushed (public mirror of the engine's
/// internal cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The coalescing timer expired (§4.2 deadline-driven flush).
    Timer,
    /// The pending bundle would exceed the network message size.
    Overflow,
    /// An incompatible frame (deadline/parameter conflict) forced it out.
    Conflict,
    /// A fragmented message required exclusive use of the channel.
    Fragment,
    /// The slot was closing.
    Close,
}

impl FlushReason {
    /// Short stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Timer => "timer",
            FlushReason::Overflow => "overflow",
            FlushReason::Conflict => "conflict",
            FlushReason::Fragment => "fragment",
            FlushReason::Close => "close",
        }
    }
}

/// One typed observability event. Variants carry raw ids (`u32` hosts,
/// `u64` streams/sequences) because this crate sits below the layers that
/// define the id newtypes.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// An admission-control decision at a hop's interface ledger (§2.3).
    AdmissionDecision {
        /// Deciding host.
        host: u32,
        /// Whether the reservation was admitted.
        admitted: bool,
        /// Deterministic bandwidth reserved at the ledger *after* the
        /// decision, in bytes/sec. Lets an external oracle check the §2.3
        /// invariant (reservations never exceed the deterministic budget)
        /// without reaching into the ledger.
        reserved_bps: f64,
        /// The ledger's deterministic budget (capacity × share), bytes/sec.
        budget_bps: f64,
    },
    /// A packet joined an interface transmit queue.
    IfaceEnqueue {
        /// Queueing host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
        /// Span of the carried data, if any.
        span: Option<u64>,
        /// Packets waiting after the enqueue.
        queued_packets: usize,
        /// Bytes waiting after the enqueue.
        queued_bytes: u64,
    },
    /// A packet left the queue and started transmitting ([`Stage::WireTx`]).
    IfaceDequeue {
        /// Transmitting host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
        /// Span of the carried data, if any.
        span: Option<u64>,
        /// Packets still waiting after the dequeue.
        queued_packets: usize,
        /// Bytes still waiting after the dequeue.
        queued_bytes: u64,
    },
    /// A packet was dropped at an interface for queue overflow.
    IfaceDrop {
        /// Dropping host.
        host: u32,
        /// Interface index at that host.
        iface: usize,
    },
    /// The network layer accepted a message for transmission.
    NetSend {
        /// Sending host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Payload bytes.
        bytes: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// A data packet reached the destination host's network layer.
    NetRecv {
        /// Receiving host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Packet sequence number.
        seq: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// A packet was handed to an interface (counted once at the source).
    NetPacketSent {
        /// Sending host.
        host: u32,
    },
    /// A packet was delivered in sequence to a receiving RMS endpoint.
    NetPacketDelivered {
        /// Receiving host.
        host: u32,
        /// Network RMS id.
        rms: u64,
        /// Packet sequence number.
        seq: u64,
        /// Span of the message, if any.
        span: Option<u64>,
    },
    /// The ST engine accepted a client message ([`Stage::StSend`]).
    StSend {
        /// Sending host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// The message's span.
        span: Option<u64>,
    },
    /// The ST engine delivered a message to its port
    /// ([`Stage::StDeliver`], completing the span).
    StDeliver {
        /// Receiving host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// Whether delivery exceeded the negotiated delay bound.
        late: bool,
        /// Whether the stream's delay bound is deterministic class — a
        /// late deterministic delivery is a contract violation (§2.2), a
        /// late statistical one is merely a tail sample.
        det: bool,
        /// The message's span.
        span: Option<u64>,
    },
    /// A message was split into fragments (§4.3).
    Fragment {
        /// Fragmenting host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// Number of fragments produced.
        count: u32,
        /// The message's span.
        span: Option<u64>,
    },
    /// Fragments were reassembled into a complete message (§4.3).
    Reassemble {
        /// Reassembling host.
        host: u32,
        /// ST RMS id.
        st_rms: u64,
        /// Message sequence number.
        seq: u64,
        /// The message's span.
        span: Option<u64>,
    },
    /// A frame was coalesced into a pending piggyback bundle (§4.2).
    PiggybackCoalesce {
        /// Coalescing host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Frames pending after the coalesce.
        pending: usize,
    },
    /// A piggyback slot was flushed to the network (§4.2).
    PiggybackFlush {
        /// Flushing host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Frames in the flushed bundle.
        frames: usize,
        /// Why the flush happened.
        reason: FlushReason,
    },
    /// An ST channel-cache lookup hit (§3.2 connection caching).
    CacheHit {
        /// Host performing the lookup.
        host: u32,
    },
    /// An ST channel-cache lookup missed.
    CacheMiss {
        /// Host performing the lookup.
        host: u32,
    },
    /// An idle cached channel was evicted.
    CacheEvict {
        /// Evicting host.
        host: u32,
    },
    /// The ST engine handed one network message (frame or bundle) down.
    StNetMsg {
        /// Sending host.
        host: u32,
        /// Carrying network RMS id.
        net_rms: u64,
        /// Encoded bytes.
        bytes: u64,
        /// Span carried, if any.
        span: Option<u64>,
    },
    /// A fast acknowledgement was sent (§3.2).
    FastAckSent {
        /// Acknowledging host.
        host: u32,
        /// Acknowledged ST RMS id.
        st_rms: u64,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// A per-peer control channel finished creation (§3.2).
    ControlCreated {
        /// Local host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// An authentication hello was sent (§3.2).
    HelloSent {
        /// Sending host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// An ST RMS creation was requested (§2.4).
    CreateRequested {
        /// Requesting host.
        host: u32,
        /// Peer host.
        peer: u32,
    },
    /// The stream transport sent a message ([`Stage::TransportSend`]).
    TransportSend {
        /// Sending host.
        host: u32,
        /// Stream session id.
        session: u64,
        /// Stream sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u64,
        /// The span allocated for the message.
        span: Option<u64>,
    },
    /// The stream transport delivered a message in order.
    StreamDeliver {
        /// Receiving host.
        host: u32,
        /// Stream session id.
        session: u64,
        /// Stream sequence number.
        seq: u64,
    },
    /// The stream transport sent a window acknowledgement.
    StreamAck {
        /// Acknowledging host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// A stream sender was blocked by flow control.
    StreamBlocked {
        /// Blocked host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// A reliable stream sender gave up after its retry budget.
    StreamRetriesExhausted {
        /// Sending host.
        host: u32,
        /// Stream session id.
        session: u64,
    },
    /// An RKOM call was issued (§3.3).
    RkomSend {
        /// Calling host.
        host: u32,
        /// Callee host.
        peer: u32,
        /// Call id.
        call: u64,
    },
    /// An RKOM call completed with a reply (§3.3).
    RkomDeliver {
        /// Calling host.
        host: u32,
        /// Call id.
        call: u64,
    },
    /// A TCP baseline connection retransmitted segments.
    TcpRetransmit {
        /// Retransmitting host.
        host: u32,
        /// Connection id.
        conn: u64,
        /// Segments resent.
        segments: u64,
    },
    /// A fault was injected (fault-injection subsystem, `dash_sim::fault`).
    FaultInjected {
        /// The fault kind's short name ([`crate::fault::FaultKind::name`]);
        /// also increments a per-kind `fault.<kind>` counter.
        kind: &'static str,
    },
    /// A network went down; RMSs over it failed.
    NetworkFailed {
        /// The network.
        network: u32,
    },
    /// A network came back up; routes over it are usable again.
    NetworkRestored {
        /// The network.
        network: u32,
    },
    /// A host crashed, losing its protocol state.
    HostCrashed {
        /// The host.
        host: u32,
    },
    /// A crashed host restarted with empty protocol state.
    HostRestarted {
        /// The host.
        host: u32,
    },
    /// The ST began failing streams over to a new network RMS after their
    /// network RMS died.
    FailoverStarted {
        /// The host performing failover.
        host: u32,
        /// How many ST streams are being moved.
        streams: u32,
    },
    /// One ST stream completed failover onto a replacement network RMS.
    FailoverCompleted {
        /// The host.
        host: u32,
        /// The recovered ST stream.
        st_rms: u64,
        /// Failure-to-recovery latency in seconds (also recorded in the
        /// `fault.recovery_latency` histogram).
        latency_s: f64,
    },
    /// A host originated a link-state flood (routing subsystem): its
    /// interfaces' delay/capacity/headroom advertisement starts spreading.
    RoutingFlood {
        /// The originating host.
        origin: u32,
        /// The advertisement's sequence number at the origin.
        seq: u64,
    },
    /// A host recomputed its route table from its link-state database.
    RoutingRecompute {
        /// The recomputing host.
        host: u32,
        /// Seconds from the triggering change (fault or advertisement
        /// origination) to this recompute, in simulated time (also recorded
        /// in the `routing.recompute_latency` histogram).
        latency_s: f64,
    },
    /// An RMS was established over a non-primary alternate path (the
    /// shortest path refused it, a fallback admitted it).
    RoutingAlternateWin {
        /// The creating host.
        host: u32,
        /// Index of the winning candidate in the creator's alternate list.
        alternate: u32,
    },
    /// A stream session ended (close or typed failure). Together with
    /// [`ObsEvent::TransportSend`] / [`ObsEvent::StreamDeliver`] this lets
    /// an external oracle check exactly-once-or-typed-failure delivery.
    StreamEnd {
        /// The host observing the end.
        host: u32,
        /// Stream session id.
        session: u64,
        /// True for a typed failure (retries exhausted, channel failed),
        /// false for an orderly close.
        failed: bool,
    },
    /// A stream open failed before the session was established.
    StreamOpenFailed {
        /// The opening host.
        host: u32,
        /// The session id the open would have used.
        session: u64,
    },
    /// An RMS creation pinned its source route: the exact host sequence
    /// packets will traverse. Lets an external oracle check that chosen
    /// alternates are loop-free.
    RoutingPathPinned {
        /// The creating host.
        host: u32,
        /// The full hop sequence, source first, destination last.
        hops: Vec<u32>,
    },
}

/// Every distinct event counter name, indexed by [`ObsEvent::fast_index`].
/// The registry keeps these counts in a plain array so the per-event fast
/// path is an indexed increment — no map lookup, no allocation.
pub const EVENT_NAMES: [&str; 44] = [
    "net.admission_admitted",
    "net.admission_rejected",
    "net.iface_enqueue",
    "net.iface_dequeue",
    "net.iface_drop",
    "net.send",
    "net.recv",
    "net.packet_sent",
    "net.packet_delivered",
    "st.send",
    "st.deliver",
    "st.msg_fragmented",
    "st.reassembled",
    "st.coalesced",
    "st.flush",
    "st.cache_hit",
    "st.cache_miss",
    "st.cache_eviction",
    "st.net_msg_sent",
    "st.fast_ack_sent",
    "st.control_created",
    "st.hello_sent",
    "st.create_requested",
    "stream.send",
    "stream.deliver",
    "stream.ack_sent",
    "stream.sender_blocked",
    "stream.retries_exhausted",
    "rkom.call",
    "rkom.completed",
    "tcp.retransmit",
    "fault.injected",
    "net.network_failed",
    "net.network_restored",
    "net.host_crashed",
    "net.host_restarted",
    "st.failover_started",
    "st.failover_completed",
    "routing.floods",
    "routing.recompute",
    "routing.alternate_wins",
    "stream.end",
    "stream.open_failed",
    "net.path_pinned",
];

impl ObsEvent {
    /// This event's slot in [`EVENT_NAMES`] (and in the registry's fast
    /// counter array).
    pub fn fast_index(&self) -> usize {
        match self {
            ObsEvent::AdmissionDecision { admitted: true, .. } => 0,
            ObsEvent::AdmissionDecision {
                admitted: false, ..
            } => 1,
            ObsEvent::IfaceEnqueue { .. } => 2,
            ObsEvent::IfaceDequeue { .. } => 3,
            ObsEvent::IfaceDrop { .. } => 4,
            ObsEvent::NetSend { .. } => 5,
            ObsEvent::NetRecv { .. } => 6,
            ObsEvent::NetPacketSent { .. } => 7,
            ObsEvent::NetPacketDelivered { .. } => 8,
            ObsEvent::StSend { .. } => 9,
            ObsEvent::StDeliver { .. } => 10,
            ObsEvent::Fragment { .. } => 11,
            ObsEvent::Reassemble { .. } => 12,
            ObsEvent::PiggybackCoalesce { .. } => 13,
            ObsEvent::PiggybackFlush { .. } => 14,
            ObsEvent::CacheHit { .. } => 15,
            ObsEvent::CacheMiss { .. } => 16,
            ObsEvent::CacheEvict { .. } => 17,
            ObsEvent::StNetMsg { .. } => 18,
            ObsEvent::FastAckSent { .. } => 19,
            ObsEvent::ControlCreated { .. } => 20,
            ObsEvent::HelloSent { .. } => 21,
            ObsEvent::CreateRequested { .. } => 22,
            ObsEvent::TransportSend { .. } => 23,
            ObsEvent::StreamDeliver { .. } => 24,
            ObsEvent::StreamAck { .. } => 25,
            ObsEvent::StreamBlocked { .. } => 26,
            ObsEvent::StreamRetriesExhausted { .. } => 27,
            ObsEvent::RkomSend { .. } => 28,
            ObsEvent::RkomDeliver { .. } => 29,
            ObsEvent::TcpRetransmit { .. } => 30,
            ObsEvent::FaultInjected { .. } => 31,
            ObsEvent::NetworkFailed { .. } => 32,
            ObsEvent::NetworkRestored { .. } => 33,
            ObsEvent::HostCrashed { .. } => 34,
            ObsEvent::HostRestarted { .. } => 35,
            ObsEvent::FailoverStarted { .. } => 36,
            ObsEvent::FailoverCompleted { .. } => 37,
            ObsEvent::RoutingFlood { .. } => 38,
            ObsEvent::RoutingRecompute { .. } => 39,
            ObsEvent::RoutingAlternateWin { .. } => 40,
            ObsEvent::StreamEnd { .. } => 41,
            ObsEvent::StreamOpenFailed { .. } => 42,
            ObsEvent::RoutingPathPinned { .. } => 43,
        }
    }

    /// The registry counter this event increments (also the JSON `name`).
    pub fn name(&self) -> &'static str {
        EVENT_NAMES[self.fast_index()]
    }

    /// The lifecycle stage this event timestamps, when it carries a span.
    pub fn span_stage(&self) -> Option<(u64, Stage)> {
        match self {
            ObsEvent::TransportSend { span, .. } => span.map(|s| (s, Stage::TransportSend)),
            ObsEvent::StSend { span, .. } => span.map(|s| (s, Stage::StSend)),
            ObsEvent::NetSend { span, .. } => span.map(|s| (s, Stage::NetSend)),
            ObsEvent::IfaceEnqueue { span, .. } => span.map(|s| (s, Stage::IfaceEnqueue)),
            // Dequeue and transmission start are the same instant.
            ObsEvent::IfaceDequeue { span, .. } => span.map(|s| (s, Stage::WireTx)),
            ObsEvent::NetRecv { span, .. } => span.map(|s| (s, Stage::NetRecv)),
            ObsEvent::StDeliver { span, .. } => span.map(|s| (s, Stage::StDeliver)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Counters [`MetricRegistry::apply`] bumps *beyond* the per-event name,
/// slot-indexed by the `D_*` constants below.
const DERIVED_NAMES: [&str; 13] = [
    "st.fragment_sent",
    "st.flush_timer",
    "st.flush_overflow",
    "st.flush_conflict",
    "st.flush_fragment",
    "st.flush_close",
    "st.bundle_sent",
    "st.msg_bundled",
    "st.msg_alone",
    "st.net_bytes_sent",
    "st.late_delivery",
    "tcp.segments_retransmitted",
    "st.failover_streams",
];
const D_FRAGMENT_SENT: usize = 0;
const D_FLUSH_TIMER: usize = 1;
const D_FLUSH_OVERFLOW: usize = 2;
const D_FLUSH_CONFLICT: usize = 3;
const D_FLUSH_FRAGMENT: usize = 4;
const D_FLUSH_CLOSE: usize = 5;
const D_BUNDLE_SENT: usize = 6;
const D_MSG_BUNDLED: usize = 7;
const D_MSG_ALONE: usize = 8;
const D_NET_BYTES_SENT: usize = 9;
const D_LATE_DELIVERY: usize = 10;
const D_TCP_SEGMENTS: usize = 11;
const D_FAILOVER_STREAMS: usize = 12;

/// Histograms fed from the event/span hot paths, slot-indexed. The
/// `span.stage.*` block is laid out in [`Stage`] declaration order so a
/// stage's slot is `H_STAGE_BASE + stage as usize`.
const FAST_HIST_NAMES: [&str; 13] = [
    "net.iface_queue_depth",
    "span.e2e",
    "span.st",
    "span.net",
    "span.stage.transport",
    "span.stage.st_tx",
    "span.stage.net_tx",
    "span.stage.queue",
    "span.stage.wire",
    "span.stage.st_rx",
    "span.stage.delivered",
    "fault.recovery_latency",
    "routing.recompute_latency",
];
const H_IFACE_QUEUE_DEPTH: usize = 0;
const H_SPAN_E2E: usize = 1;
const H_SPAN_ST: usize = 2;
const H_SPAN_NET: usize = 3;
const H_STAGE_BASE: usize = 4;
const H_RECOVERY_LATENCY: usize = 11;
const H_ROUTING_RECOMPUTE: usize = 12;

/// Named counters, gauges, and histograms. Every metric the event stream
/// itself produces lives in a fixed slot-indexed array, so the per-event
/// path is an indexed add — no name hashing, no map walk, and (beyond the
/// first sighting of a fault kind or late RMS) no allocation. Dynamic
/// caller-registered metrics still live in `String`-keyed maps. Lookup by
/// name routes to whichever storage owns it, and iteration merges them all
/// sorted by name, so readers and the JSON export cannot tell the
/// difference.
#[derive(Debug)]
pub struct MetricRegistry {
    event_counts: [Counter; EVENT_NAMES.len()],
    derived_counts: [Counter; DERIVED_NAMES.len()],
    /// Per-RMS late counters keyed by st_rms; the `st.late.<rms>` name is
    /// formatted once, on first sighting.
    late_by_rms: BTreeMap<u64, (String, Counter)>,
    /// Per-kind fault counters keyed by kind; the `fault.<kind>` name is
    /// formatted once, on first sighting.
    fault_by_kind: BTreeMap<String, (String, Counter)>,
    fast_hists: [Histogram; FAST_HIST_NAMES.len()],
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        MetricRegistry {
            event_counts: [Counter::new(); EVENT_NAMES.len()],
            derived_counts: [Counter::new(); DERIVED_NAMES.len()],
            late_by_rms: BTreeMap::new(),
            fault_by_kind: BTreeMap::new(),
            fast_hists: std::array::from_fn(|_| Histogram::new()),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

impl MetricRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// The counter named `name`, created on first use. Names owned by the
    /// fast arrays resolve to their slots, so this stays interchangeable
    /// with the counters `MetricRegistry::apply` feeds.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if let Some(i) = EVENT_NAMES.iter().position(|n| *n == name) {
            return &mut self.event_counts[i];
        }
        if let Some(i) = DERIVED_NAMES.iter().position(|n| *n == name) {
            return &mut self.derived_counts[i];
        }
        if let Some(rms) = name
            .strip_prefix("st.late.")
            .and_then(|s| s.parse::<u64>().ok())
        {
            return &mut self
                .late_by_rms
                .entry(rms)
                .or_insert_with(|| (name.to_string(), Counter::new()))
                .1;
        }
        if let Some(kind) = name.strip_prefix("fault.") {
            if !self.fault_by_kind.contains_key(kind) {
                self.fault_by_kind
                    .insert(kind.to_string(), (name.to_string(), Counter::new()));
            }
            return &mut self.fault_by_kind.get_mut(kind).expect("just inserted").1;
        }
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), Counter::default());
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Current value of a counter (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        if let Some(i) = EVENT_NAMES.iter().position(|n| *n == name) {
            return self.event_counts[i].get();
        }
        if let Some(i) = DERIVED_NAMES.iter().position(|n| *n == name) {
            return self.derived_counts[i].get();
        }
        if let Some(rms) = name
            .strip_prefix("st.late.")
            .and_then(|s| s.parse::<u64>().ok())
        {
            return self.late_by_rms.get(&rms).map(|e| e.1.get()).unwrap_or(0);
        }
        if let Some(kind) = name.strip_prefix("fault.") {
            return self.fault_by_kind.get(kind).map(|e| e.1.get()).unwrap_or(0);
        }
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Set the gauge named `name`. Updates in place; the key is only
    /// allocated the first time a name is seen.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram named `name`, created on first use. Mutable access
    /// also serves reads: quantiles sort the backing sample in place.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if let Some(i) = FAST_HIST_NAMES.iter().position(|n| *n == name) {
            return &mut self.fast_hists[i];
        }
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), Histogram::default());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// True if a histogram named `name` has recorded samples.
    pub fn has_histogram(&self, name: &str) -> bool {
        if let Some(i) = FAST_HIST_NAMES.iter().position(|n| *n == name) {
            return self.fast_hists[i].count() > 0;
        }
        self.histograms
            .get(name)
            .map(|h| h.count() > 0)
            .unwrap_or(false)
    }

    /// All counters, sorted by name. Fast-array slots that were never
    /// touched are omitted, matching the old on-first-use map behaviour.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut all: Vec<(&str, u64)> = Vec::new();
        for (i, c) in self.event_counts.iter().enumerate() {
            if c.get() > 0 {
                all.push((EVENT_NAMES[i], c.get()));
            }
        }
        for (i, c) in self.derived_counts.iter().enumerate() {
            if c.get() > 0 {
                all.push((DERIVED_NAMES[i], c.get()));
            }
        }
        for e in self.late_by_rms.values() {
            all.push((e.0.as_str(), e.1.get()));
        }
        for e in self.fault_by_kind.values() {
            all.push((e.0.as_str(), e.1.get()));
        }
        for (k, v) in self.counters.iter() {
            all.push((k.as_str(), v.get()));
        }
        all.sort_unstable();
        all.into_iter()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all histograms with samples, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = FAST_HIST_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.fast_hists[*i].count() > 0)
            .map(|(_, n)| *n)
            .collect();
        names.extend(self.histograms.keys().map(|k| k.as_str()));
        names.sort_unstable();
        names.into_iter()
    }

    /// Dump every metric as one JSON object per line (counters, gauges,
    /// then histogram summaries with quantiles), each group sorted by name.
    pub fn to_json_lines(&mut self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, v) in self.gauges.iter() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        let mut hists: Vec<(&str, &mut Histogram)> = self
            .fast_hists
            .iter_mut()
            .enumerate()
            .map(|(i, h)| (FAST_HIST_NAMES[i], h))
            .collect();
        for (k, h) in self.histograms.iter_mut() {
            hists.push((k.as_str(), h));
        }
        hists.sort_unstable_by_key(|(n, _)| *n);
        for (name, h) in hists {
            if h.count() == 0 {
                continue;
            }
            let (mean, p50, p99) = (h.mean(), h.median(), h.quantile(0.99));
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\
                 \"mean\":{mean},\"p50\":{p50},\"p99\":{p99}}}\n",
                h.count()
            ));
        }
        out
    }

    /// Fold `other` into this registry, deterministically.
    ///
    /// The parallel executor keeps one registry per logical process and
    /// merges them in canonical (host-id) order after the run: counters
    /// add, gauges take the later write (so the highest-id process wins —
    /// a fixed rule, not a race), and histograms concatenate their sample
    /// vectors in merge order. Merging the shard-local registries of a
    /// P-way run therefore yields byte-identical [`Self::to_json_lines`]
    /// output to the 1-way run of the same scenario.
    pub fn merge_from(&mut self, other: &MetricRegistry) {
        for (mine, theirs) in self.event_counts.iter_mut().zip(&other.event_counts) {
            mine.add(theirs.get());
        }
        for (mine, theirs) in self.derived_counts.iter_mut().zip(&other.derived_counts) {
            mine.add(theirs.get());
        }
        for (rms, (name, c)) in &other.late_by_rms {
            self.late_by_rms
                .entry(*rms)
                .or_insert_with(|| (name.clone(), Counter::new()))
                .1
                .add(c.get());
        }
        for (kind, (name, c)) in &other.fault_by_kind {
            self.fault_by_kind
                .entry(kind.clone())
                .or_insert_with(|| (name.clone(), Counter::new()))
                .1
                .add(c.get());
        }
        for (mine, theirs) in self.fast_hists.iter_mut().zip(&other.fast_hists) {
            mine.merge_from(theirs);
        }
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().add(c.get());
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge_from(h);
        }
    }

    /// Record the registry-side effects of one event. Pure slot arithmetic:
    /// the only allocations left are the first sighting of a fault kind or
    /// a late RMS, and the first write to each gauge name.
    fn apply(&mut self, event: &ObsEvent) {
        self.event_counts[event.fast_index()].incr();
        match event {
            ObsEvent::IfaceEnqueue {
                queued_packets,
                queued_bytes,
                ..
            } => {
                self.gauge_set("net.iface_queue_packets", *queued_packets as f64);
                self.gauge_set("net.iface_queue_bytes", *queued_bytes as f64);
                self.fast_hists[H_IFACE_QUEUE_DEPTH].record(*queued_packets as f64);
            }
            ObsEvent::Fragment { count, .. } => {
                self.derived_counts[D_FRAGMENT_SENT].add(*count as u64);
            }
            ObsEvent::PiggybackFlush { frames, reason, .. } => {
                let slot = match reason {
                    FlushReason::Timer => D_FLUSH_TIMER,
                    FlushReason::Overflow => D_FLUSH_OVERFLOW,
                    FlushReason::Conflict => D_FLUSH_CONFLICT,
                    FlushReason::Fragment => D_FLUSH_FRAGMENT,
                    FlushReason::Close => D_FLUSH_CLOSE,
                };
                self.derived_counts[slot].incr();
                if *frames > 1 {
                    self.derived_counts[D_BUNDLE_SENT].incr();
                    self.derived_counts[D_MSG_BUNDLED].add(*frames as u64);
                } else {
                    self.derived_counts[D_MSG_ALONE].incr();
                }
            }
            ObsEvent::StNetMsg { bytes, .. } => {
                self.derived_counts[D_NET_BYTES_SENT].add(*bytes);
            }
            ObsEvent::StDeliver { late, st_rms, .. } if *late => {
                self.derived_counts[D_LATE_DELIVERY].incr();
                self.late_by_rms
                    .entry(*st_rms)
                    .or_insert_with(|| (format!("st.late.{st_rms}"), Counter::new()))
                    .1
                    .incr();
            }
            ObsEvent::TcpRetransmit { segments, .. } => {
                self.derived_counts[D_TCP_SEGMENTS].add(*segments);
            }
            ObsEvent::FaultInjected { kind } => {
                if !self.fault_by_kind.contains_key(*kind) {
                    self.fault_by_kind.insert(
                        (*kind).to_string(),
                        (format!("fault.{kind}"), Counter::new()),
                    );
                }
                self.fault_by_kind
                    .get_mut(*kind)
                    .expect("just inserted")
                    .1
                    .incr();
            }
            ObsEvent::FailoverStarted { streams, .. } => {
                self.derived_counts[D_FAILOVER_STREAMS].add(u64::from(*streams));
            }
            ObsEvent::FailoverCompleted { latency_s, .. } => {
                self.fast_hists[H_RECOVERY_LATENCY].record(*latency_s);
            }
            ObsEvent::RoutingRecompute { latency_s, .. } => {
                self.fast_hists[H_ROUTING_RECOMPUTE].record(*latency_s);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A completed message lifecycle: the stages it passed through, in the
/// order they were first observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span id.
    pub span: u64,
    /// The ST RMS it was delivered on.
    pub stream: u64,
    /// The delivered message's ST sequence number.
    pub seq: u64,
    /// `(stage, first occurrence)` pairs in observation order.
    pub stages: Vec<(Stage, SimTime)>,
}

impl SpanRecord {
    /// When `stage` was first observed, if it was.
    pub fn stage_time(&self, stage: Stage) -> Option<SimTime> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, t)| *t)
    }

    /// Elapsed time between two observed stages (`None` if either is
    /// missing, saturating at zero).
    pub fn between(&self, from: Stage, to: Stage) -> Option<SimDuration> {
        let a = self.stage_time(from)?;
        let b = self.stage_time(to)?;
        Some(b.saturating_since(a))
    }

    /// End-to-end latency: first observed stage to last.
    pub fn e2e(&self) -> SimDuration {
        match (self.stages.first(), self.stages.last()) {
            (Some((_, a)), Some((_, b))) => b.saturating_since(*a),
            _ => SimDuration::ZERO,
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    stages: Vec<(Stage, SimTime)>,
}

/// Tracks open spans and closes them on [`Stage::StDeliver`].
#[derive(Debug, Default)]
struct SpanTracker {
    open: BTreeMap<u64, OpenSpan>,
    /// Open spans discarded because the tracker was full.
    dropped: u64,
}

impl SpanTracker {
    /// Record `stage` for `span` (first occurrence only). Returns the
    /// completed record when the stage closes the span.
    fn record(
        &mut self,
        span: u64,
        stage: Stage,
        time: SimTime,
        stream: u64,
        seq: u64,
    ) -> Option<SpanRecord> {
        let entry = self
            .open
            .entry(span)
            .or_insert_with(|| OpenSpan { stages: Vec::new() });
        if !entry.stages.iter().any(|(s, _)| *s == stage) {
            entry.stages.push((stage, time));
        }
        if stage == Stage::StDeliver {
            let done = self.open.remove(&span).expect("span just touched");
            return Some(SpanRecord {
                span,
                stream,
                seq,
                stages: done.stages,
            });
        }
        if self.open.len() > MAX_OPEN_SPANS {
            self.open.pop_first();
            self.dropped += 1;
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A consumer of the raw observability stream. Installed via
/// `Obs::set_sink`; both hooks default to no-ops so a sink may care about
/// only events or only spans.
pub trait ObsSink {
    /// An event was emitted at `time`.
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        let _ = (time, event);
    }

    /// A message lifecycle completed.
    fn on_span(&mut self, record: &SpanRecord) {
        let _ = record;
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the stream as JSON-Lines: one `{"type":"span",...}` object per
/// delivered message and, when enabled, one `{"type":"event",...}` object
/// per event. Hand-rolled serialization — the workspace carries no JSON
/// dependency.
pub struct JsonLinesSink {
    out: Box<dyn Write>,
    events: bool,
}

impl JsonLinesSink {
    /// Span records only (one line per delivered message).
    pub fn new(out: impl Write + 'static) -> Self {
        JsonLinesSink {
            out: Box::new(out),
            events: false,
        }
    }

    /// Also export every raw event (verbose).
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }
}

impl ObsSink for JsonLinesSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        if !self.events {
            return;
        }
        let _ = writeln!(
            self.out,
            "{{\"type\":\"event\",\"t_ns\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
            time.as_nanos(),
            event.name(),
            json_escape(&format!("{event:?}")),
        );
    }

    fn on_span(&mut self, record: &SpanRecord) {
        let stages: Vec<String> = record
            .stages
            .iter()
            .map(|(s, t)| format!("{{\"stage\":\"{}\",\"t_ns\":{}}}", s.name(), t.as_nanos()))
            .collect();
        let _ = writeln!(
            self.out,
            "{{\"type\":\"span\",\"span\":{},\"stream\":{},\"seq\":{},\"e2e_ns\":{},\"stages\":[{}]}}",
            record.span,
            record.stream,
            record.seq,
            record.e2e().as_nanos(),
            stages.join(","),
        );
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Adapts typed events onto the old stringly [`Trace`] ring buffer, making
/// `Trace` a thin sink over [`ObsEvent`] instead of a parallel mechanism.
#[derive(Debug)]
pub struct TraceSink {
    /// The backing trace (read it after the run).
    pub trace: Trace,
}

impl TraceSink {
    /// A trace sink retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let mut trace = Trace::new(capacity);
        trace.set_enabled(true);
        TraceSink { trace }
    }
}

impl ObsSink for TraceSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        self.trace
            .record(time, event.name(), || format!("{event:?}"));
    }

    fn on_span(&mut self, record: &SpanRecord) {
        let time = record
            .stages
            .last()
            .map(|(_, t)| *t)
            .unwrap_or(SimTime::ZERO);
        self.trace.record(time, "span", || format!("{record:?}"));
    }
}

/// Fans the stream out to several sinks in installation order. Built
/// implicitly by [`Obs::add_boxed_sink`] so an online checker (e.g. the
/// dash-check oracle) can observe a run without displacing the sink a
/// bench or test already installed.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn ObsSink>>,
}

impl TeeSink {
    /// An empty tee (a no-op sink until sinks are pushed).
    pub fn new() -> Self {
        TeeSink::default()
    }

    /// Append a sink; it sees every event/span after the existing ones.
    pub fn push(&mut self, sink: Box<dyn ObsSink>) {
        self.sinks.push(sink);
    }
}

impl ObsSink for TeeSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        for s in self.sinks.iter_mut() {
            s.on_event(time, event);
        }
    }

    fn on_span(&mut self, record: &SpanRecord) {
        for s in self.sinks.iter_mut() {
            s.on_span(record);
        }
    }
}

// ---------------------------------------------------------------------------
// The observability hub
// ---------------------------------------------------------------------------

/// The per-world observability hub: holds the activation flag, the metric
/// registry, the span tracker, and the optional sink. Lives in the network
/// layer's state so every layer reaches it through `W::net()`.
pub struct Obs {
    active: bool,
    sink: Option<Box<dyn ObsSink>>,
    /// The metric registry (readable while inactive; it is simply empty).
    pub registry: MetricRegistry,
    tracker: SpanTracker,
    retain: bool,
    completed: Vec<SpanRecord>,
    next_span: u64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("active", &self.active)
            .field("sink", &self.sink.is_some())
            .field("open_spans", &self.tracker.open.len())
            .field("completed_spans", &self.completed.len())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            active: false,
            sink: None,
            registry: MetricRegistry::new(),
            tracker: SpanTracker::default(),
            retain: false,
            completed: Vec::new(),
            next_span: 1,
        }
    }
}

impl Obs {
    /// Inactive hub (the default embedded in every world).
    pub fn new() -> Self {
        Obs::default()
    }

    /// Turn emission on without installing a sink (registry + spans only).
    pub fn enable(&mut self) {
        self.active = true;
    }

    /// Install a sink and activate emission.
    pub fn set_sink(&mut self, sink: impl ObsSink + 'static) {
        self.set_boxed_sink(Box::new(sink));
    }

    /// Install an already-boxed sink and activate emission (used by
    /// builders that collect the sink before the world exists).
    pub fn set_boxed_sink(&mut self, sink: Box<dyn ObsSink>) {
        self.sink = Some(sink);
        self.active = true;
    }

    /// Install an *additional* sink without displacing an existing one:
    /// the current sink (if any) and the new one are wrapped in a
    /// [`TeeSink`]. Activates emission.
    pub fn add_boxed_sink(&mut self, sink: Box<dyn ObsSink>) {
        match self.sink.take() {
            None => self.set_boxed_sink(sink),
            Some(existing) => {
                let mut tee = TeeSink::new();
                tee.push(existing);
                tee.push(sink);
                self.set_boxed_sink(Box::new(tee));
            }
        }
    }

    /// Remove the sink (emission stays on if it was on).
    pub fn take_sink(&mut self) -> Option<Box<dyn ObsSink>> {
        self.sink.take()
    }

    /// True when hook sites should emit. This is the single cheap check on
    /// every fast path; when false, instrumented code is a no-op.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Keep completed [`SpanRecord`]s in memory (off by default; sinks see
    /// them either way).
    pub fn retain_spans(&mut self, on: bool) {
        self.retain = on;
    }

    /// Completed spans retained so far (see [`Obs::retain_spans`]).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.completed
    }

    /// Open spans discarded because the tracker was full.
    pub fn spans_dropped(&self) -> u64 {
        self.tracker.dropped
    }

    /// Rebase span-id allocation to start at `base`.
    ///
    /// The parallel executor gives each logical process a disjoint id
    /// namespace (`(host + 1) << 40`), so span ids minted independently
    /// on different shards never collide when their event streams merge.
    pub fn set_span_namespace(&mut self, base: u64) {
        self.next_span = base;
    }

    /// Allocate a fresh span id, or `None` while inactive — so an idle run
    /// never pays for (or wire-encodes) span ids.
    pub fn start_span(&mut self) -> Option<u64> {
        if !self.active {
            return None;
        }
        let id = self.next_span;
        self.next_span += 1;
        Some(id)
    }

    /// Emit one event: updates the registry, advances the event's span
    /// stage (closing the span on [`Stage::StDeliver`]), and forwards to
    /// the sink.
    pub fn emit(&mut self, time: SimTime, event: ObsEvent) {
        if !self.active {
            return;
        }
        self.registry.apply(&event);
        if let Some((span, stage)) = event.span_stage() {
            let (stream, seq) = match &event {
                ObsEvent::StDeliver { st_rms, seq, .. } => (*st_rms, *seq),
                _ => (0, 0),
            };
            if let Some(record) = self.tracker.record(span, stage, time, stream, seq) {
                self.finish_span(&record);
                if self.retain {
                    self.completed.push(record);
                }
            }
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.on_event(time, &event);
        }
    }

    /// Feed a completed span into the latency histograms and the sink.
    /// All target histograms live in fixed registry slots, so closing a
    /// span performs no name formatting or map walks.
    fn finish_span(&mut self, record: &SpanRecord) {
        let reg = &mut self.registry;
        reg.fast_hists[H_SPAN_E2E].record(record.e2e().as_secs_f64());
        if let Some(d) = record.between(Stage::StSend, Stage::StDeliver) {
            reg.fast_hists[H_SPAN_ST].record(d.as_secs_f64());
        }
        if let Some(d) = record.between(Stage::NetSend, Stage::NetRecv) {
            reg.fast_hists[H_SPAN_NET].record(d.as_secs_f64());
        }
        for pair in record.stages.windows(2) {
            let (stage, t0) = pair[0];
            let (_, t1) = pair[1];
            reg.fast_hists[H_STAGE_BASE + stage as usize]
                .record(t1.saturating_since(t0).as_secs_f64());
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.on_span(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver_event(span: u64) -> ObsEvent {
        ObsEvent::StDeliver {
            host: 1,
            st_rms: 9,
            seq: 4,
            bytes: 10,
            late: false,
            det: false,
            span: Some(span),
        }
    }

    #[test]
    fn inactive_obs_is_inert() {
        let mut obs = Obs::new();
        assert!(!obs.is_active());
        assert_eq!(obs.start_span(), None);
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        assert_eq!(obs.registry.counter_value("st.cache_hit"), 0);
    }

    #[test]
    fn events_feed_counters() {
        let mut obs = Obs::new();
        obs.enable();
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        obs.emit(SimTime::ZERO, ObsEvent::CacheHit { host: 0 });
        obs.emit(
            SimTime::ZERO,
            ObsEvent::Fragment {
                host: 0,
                st_rms: 1,
                seq: 0,
                count: 5,
                span: None,
            },
        );
        assert_eq!(obs.registry.counter_value("st.cache_hit"), 2);
        assert_eq!(obs.registry.counter_value("st.msg_fragmented"), 1);
        assert_eq!(obs.registry.counter_value("st.fragment_sent"), 5);
    }

    /// The fast-slot layout invariants `apply`/`finish_span` index by.
    #[test]
    fn fast_slot_tables_are_consistent() {
        // No duplicate names anywhere across the fast tables.
        let mut all: Vec<&str> = EVENT_NAMES
            .iter()
            .chain(DERIVED_NAMES.iter())
            .chain(FAST_HIST_NAMES.iter())
            .copied()
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "duplicate name across fast tables");

        // The span.stage block is laid out in Stage declaration order.
        for stage in [
            Stage::TransportSend,
            Stage::StSend,
            Stage::NetSend,
            Stage::IfaceEnqueue,
            Stage::WireTx,
            Stage::NetRecv,
            Stage::StDeliver,
        ] {
            assert_eq!(
                FAST_HIST_NAMES[H_STAGE_BASE + stage as usize],
                format!("span.stage.{}", stage.interval()),
            );
        }
        assert_eq!(
            FAST_HIST_NAMES[H_RECOVERY_LATENCY],
            "fault.recovery_latency"
        );
    }

    /// Name lookups route to the same cells the event stream feeds, for
    /// every storage class (event slot, derived slot, fault kind, late RMS).
    #[test]
    fn counter_lookup_routes_to_fast_slots() {
        let mut obs = Obs::new();
        obs.enable();
        obs.emit(SimTime::ZERO, ObsEvent::FaultInjected { kind: "partition" });
        obs.emit(
            SimTime::ZERO,
            ObsEvent::StDeliver {
                host: 1,
                st_rms: 7,
                seq: 0,
                bytes: 10,
                late: true,
                det: false,
                span: None,
            },
        );
        let reg = &mut obs.registry;
        assert_eq!(reg.counter_value("fault.injected"), 1); // event slot
        assert_eq!(reg.counter_value("fault.partition"), 1); // per-kind slot
        assert_eq!(reg.counter_value("st.late_delivery"), 1); // derived slot
        assert_eq!(reg.counter_value("st.late.7"), 1); // per-RMS slot
                                                       // &mut access reaches the same cells.
        reg.counter("fault.partition").incr();
        reg.counter("st.late.7").incr();
        assert_eq!(reg.counter_value("fault.partition"), 2);
        assert_eq!(reg.counter_value("st.late.7"), 2);
        // The merged iterator exports them all, sorted by name.
        let names: Vec<&str> = reg.counters().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for want in [
            "fault.injected",
            "fault.partition",
            "st.deliver",
            "st.late.7",
            "st.late_delivery",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn span_life_cycle_records_stages_in_order() {
        let mut obs = Obs::new();
        obs.enable();
        obs.retain_spans(true);
        let span = obs.start_span().unwrap();
        let t = |ns| SimTime::from_nanos(ns);
        obs.emit(
            t(10),
            ObsEvent::StSend {
                host: 0,
                st_rms: 9,
                seq: 4,
                bytes: 10,
                span: Some(span),
            },
        );
        obs.emit(
            t(20),
            ObsEvent::NetSend {
                host: 0,
                rms: 1,
                bytes: 40,
                span: Some(span),
            },
        );
        // A second fragment hitting the same stage must not overwrite.
        obs.emit(
            t(25),
            ObsEvent::NetSend {
                host: 0,
                rms: 1,
                bytes: 40,
                span: Some(span),
            },
        );
        obs.emit(t(60), deliver_event(span));
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        let rec = &spans[0];
        assert_eq!(rec.stream, 9);
        assert_eq!(rec.seq, 4);
        assert_eq!(rec.stage_time(Stage::NetSend), Some(t(20)));
        assert_eq!(rec.e2e(), SimDuration::from_nanos(50));
        assert_eq!(
            rec.between(Stage::StSend, Stage::StDeliver),
            Some(SimDuration::from_nanos(50))
        );
        assert!(obs.registry.has_histogram("span.e2e"));
        assert!(obs.registry.has_histogram("span.st"));
    }

    #[test]
    fn json_lines_sink_emits_one_span_line_per_delivery() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let mut obs = Obs::new();
        obs.set_sink(JsonLinesSink::new(shared.clone()));
        for _ in 0..3 {
            let span = obs.start_span().unwrap();
            obs.emit(
                SimTime::from_nanos(1),
                ObsEvent::StSend {
                    host: 0,
                    st_rms: 9,
                    seq: 0,
                    bytes: 1,
                    span: Some(span),
                },
            );
            obs.emit(SimTime::from_nanos(2), deliver_event(span));
        }
        let buf = shared.0.borrow();
        let text = std::str::from_utf8(&buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with("{\"type\":\"span\""), "bad line: {line}");
            assert!(line.contains("\"stage\":\"st_send\""));
        }
    }

    #[test]
    fn trace_sink_adapts_events() {
        let mut obs = Obs::new();
        obs.set_sink(TraceSink::new(16));
        obs.emit(SimTime::from_nanos(5), ObsEvent::CacheMiss { host: 2 });
        let sink = obs.take_sink().unwrap();
        // The sink is opaque as a trait object; re-emit through a fresh one
        // to check the formatting contract instead.
        drop(sink);
        let mut ts = TraceSink::new(16);
        ts.on_event(SimTime::from_nanos(5), &ObsEvent::CacheMiss { host: 2 });
        let events: Vec<_> = ts.trace.events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].subsystem, "st.cache_miss");
    }

    #[test]
    fn tracker_caps_open_spans() {
        let mut obs = Obs::new();
        obs.enable();
        for _ in 0..(MAX_OPEN_SPANS + 10) {
            let span = obs.start_span().unwrap();
            obs.emit(
                SimTime::ZERO,
                ObsEvent::StSend {
                    host: 0,
                    st_rms: 1,
                    seq: 0,
                    bytes: 1,
                    span: Some(span),
                },
            );
        }
        assert!(obs.spans_dropped() > 0);
    }

    #[test]
    fn registry_json_dump_is_line_per_metric() {
        let mut reg = MetricRegistry::new();
        reg.counter("a.b").add(3);
        reg.gauge_set("g", 1.5);
        reg.histogram("h").record(0.25);
        let dump = reg.to_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"counter\""));
        assert!(lines[1].contains("\"gauge\""));
        assert!(lines[2].contains("\"histogram\""));
    }
}
