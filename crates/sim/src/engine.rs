//! The discrete-event engine.
//!
//! [`Sim<S>`] owns a virtual clock, a priority queue of pending events, and
//! an application-defined world state `S`. Events are one-shot closures
//! that receive `&mut Sim<S>` — they can mutate the world, read the clock,
//! and schedule further events. Ties in time are broken by submission
//! order, so a run is fully deterministic.
//!
//! # Queue representation
//!
//! Actions live in a slot-reusing slab; the binary heap orders small
//! `Copy` keys (time, submission seq, slot, generation) instead of the
//! boxed closures themselves, so heap sift operations move 24-byte
//! entries rather than fat owner structs. Cancellation goes through a
//! shared, non-generic `CancelBoard`: a [`TimerHandle`] marks its slot
//! dirty without needing `&mut Sim`, and the engine drains dirty slots at
//! the next scheduling boundary — dropping the cancelled closure (and
//! whatever it captured) eagerly instead of carrying a tombstone until its
//! due time. Generation counters make stale heap entries for reused slots
//! harmless, and the heap compacts itself when dead entries outnumber
//! live ones.
//!
//! ```
//! use dash_sim::engine::Sim;
//! use dash_sim::time::SimDuration;
//!
//! let mut sim = Sim::new(0u32);
//! sim.schedule_in(SimDuration::from_millis(1), |sim| sim.state += 1);
//! sim.schedule_in(SimDuration::from_millis(2), |sim| sim.state += 10);
//! sim.run();
//! assert_eq!(sim.state, 11);
//! assert_eq!(sim.now().as_nanos(), 2_000_000);
//! ```

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A scheduled action: a one-shot closure run at its scheduled instant.
pub type Event<S> = Box<dyn FnOnce(&mut Sim<S>)>;

/// Tie-break keys for [`Sim::schedule_arrival`] live above this bound;
/// locally scheduled events use submission sequence numbers far below it.
pub const ARRIVAL_KEY_BASE: u64 = 1 << 63;

/// Bits of `arrival_key` reserved for the per-source sequence number.
const ARRIVAL_SEQ_BITS: u32 = 40;

/// The canonical tie-break key for a cross-engine arrival: orders
/// co-timed arrivals by `(source host, per-source seq)` and after every
/// co-timed local event. The per-source seq is masked to 40 bits —
/// ample for any run, and keeping the source host in the high bits is
/// what makes the order injection-independent.
pub fn arrival_key(src_host: u32, src_seq: u64) -> u64 {
    ARRIVAL_KEY_BASE
        | ((src_host as u64) << ARRIVAL_SEQ_BITS)
        | (src_seq & ((1 << ARRIVAL_SEQ_BITS) - 1))
}

/// The heap key for one scheduled action. `Copy` and small by design:
/// sifting moves these, never the closures.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Shared cancellation state, deliberately non-generic so [`TimerHandle`]
/// can live in structs that know nothing about the world type `S`.
///
/// Each slot carries a generation; a handle only acts when its remembered
/// generation matches, so handles outliving their timer (fired, or slot
/// reused) degrade to no-ops. Slots cancelled since the last drain are on
/// the dirty list for the engine to reap.
#[derive(Debug, Default)]
struct CancelBoard {
    gens: Vec<u32>,
    cancelled: Vec<bool>,
    dirty: Vec<u32>,
}

impl CancelBoard {
    fn grow_to(&mut self, slots: usize) {
        if self.gens.len() < slots {
            self.gens.resize(slots, 0);
            self.cancelled.resize(slots, false);
        }
    }
}

/// Handle to a scheduled event that may be cancelled before it fires.
///
/// Cancelling drops the pending closure at the engine's next scheduling
/// boundary (its captures are released eagerly; the heap entry dies
/// silently). Dropping the handle does *not* cancel the event; cancelling
/// after the event fired is a harmless no-op.
#[derive(Clone)]
pub struct TimerHandle {
    board: Rc<RefCell<CancelBoard>>,
    slot: u32,
    gen: u32,
    /// Remembers a cancel request even after the timer fired (the board's
    /// slot may have been reused by then), so `cancel` → `is_cancelled`
    /// always observes the request on this handle and its later clones.
    requested: Cell<bool>,
}

impl std::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerHandle")
            .field("slot", &self.slot)
            .field("gen", &self.gen)
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl TimerHandle {
    /// Cancel the associated event. Idempotent.
    pub fn cancel(&self) {
        self.requested.set(true);
        let mut board = self.board.borrow_mut();
        let slot = self.slot as usize;
        if board.gens[slot] == self.gen && !board.cancelled[slot] {
            board.cancelled[slot] = true;
            board.dirty.push(self.slot);
        }
    }

    /// True if [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        if self.requested.get() {
            return true;
        }
        let board = self.board.borrow();
        let slot = self.slot as usize;
        board.gens[slot] == self.gen && board.cancelled[slot]
    }
}

/// A discrete-event simulator with world state `S`.
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    /// Slot-indexed storage for pending closures; `None` is a vacant slot.
    actions: Vec<Option<Event<S>>>,
    free: Vec<u32>,
    board: Rc<RefCell<CancelBoard>>,
    /// Pending live events (scheduled, not yet fired or reaped).
    live: usize,
    processed: u64,
    /// Schedule-jitter seed (see [`Sim::set_schedule_jitter`]).
    jitter_seed: u64,
    /// Maximum additive jitter in nanoseconds; 0 disables jitter entirely
    /// (the default — ordinary runs are bit-identical to a jitterless
    /// engine).
    jitter_max_ns: u64,
    /// The simulated world. Public by design: event closures and the layer
    /// crates built on this engine address the world through accessor traits
    /// on `S`.
    pub state: S,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("processed", &self.processed)
            .field("state", &self.state)
            .finish()
    }
}

impl<S> Sim<S> {
    /// Create a simulator at time zero wrapping `state`.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actions: Vec::new(),
            free: Vec::new(),
            board: Rc::new(RefCell::new(CancelBoard::default())),
            live: 0,
            processed: 0,
            jitter_seed: 0,
            jitter_max_ns: 0,
            state,
        }
    }

    /// Enable deterministic schedule jitter: every subsequently scheduled
    /// event is delayed by `hash(seed, submission_seq) % (max + 1)`
    /// nanoseconds. Jitter is *additive only* (events never move earlier,
    /// so `schedule_at`'s not-in-the-past invariant is preserved) and a
    /// pure function of `(seed, seq)`, so a jittered run replays exactly
    /// from its seed. `max = 0` turns jitter off.
    ///
    /// This is a testing hook: state-space exploration (dash-check)
    /// perturbs timer interleavings with it to surface orderings a single
    /// canonical schedule would never exercise.
    pub fn set_schedule_jitter(&mut self, seed: u64, max: SimDuration) {
        self.jitter_seed = seed;
        self.jitter_max_ns = max.as_nanos();
    }

    /// The additive jitter for the event about to take submission number
    /// `seq`, as a duration.
    fn jitter_for(&self, seq: u64) -> SimDuration {
        if self.jitter_max_ns == 0 {
            return SimDuration::ZERO;
        }
        // splitmix64 over (seed, seq): cheap, stateless, well mixed.
        let mut z = self
            .jitter_seed
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimDuration::from_nanos(z % (self.jitter_max_ns + 1))
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (cancelled timers stop counting once
    /// the engine reaps them at the next scheduling boundary).
    pub fn events_pending(&self) -> usize {
        self.live
    }

    /// The time of the next pending event, if any. Timers cancelled since
    /// the engine last ran may still be reported until they are reaped.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    /// The time of the earliest *live* event, if any.
    ///
    /// Unlike [`Sim::peek_time`] this reaps cancelled timers and discards
    /// stale heap heads first, so the answer is exact. The parallel
    /// executor uses it to compute lookahead windows, where a dead head
    /// would shrink an epoch for no reason (harmless) or, worse, hold the
    /// global minimum at a time that never fires (livelock).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.reap_cancelled();
        loop {
            let e = *self.queue.peek()?;
            if self.board.borrow().gens[e.slot as usize] != e.gen {
                self.queue.pop();
                continue;
            }
            return Some(e.time);
        }
    }

    /// Claim a slot for `action`, returning `(slot, gen)`.
    fn alloc_slot(&mut self, action: Event<S>) -> (u32, u32) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.actions.len() as u32;
                self.actions.push(None);
                self.board.borrow_mut().grow_to(self.actions.len());
                s
            }
        };
        self.actions[slot as usize] = Some(action);
        self.live += 1;
        let gen = self.board.borrow().gens[slot as usize];
        (slot, gen)
    }

    /// Release `slot` after its action fired or was reaped.
    fn release_slot(&mut self, slot: u32) {
        let mut board = self.board.borrow_mut();
        board.gens[slot as usize] = board.gens[slot as usize].wrapping_add(1);
        board.cancelled[slot as usize] = false;
        drop(board);
        self.free.push(slot);
    }

    /// Drop the closures of every timer cancelled since the last drain.
    /// Their heap entries stay behind but are invalidated by the slot's
    /// generation bump; compaction sweeps them out when they pile up.
    fn reap_cancelled(&mut self) {
        loop {
            let slot = match self.board.borrow_mut().dirty.pop() {
                Some(s) => s,
                None => break,
            };
            if let Some(action) = self.actions[slot as usize].take() {
                drop(action);
                self.live -= 1;
                self.release_slot(slot);
            }
        }
        // A heap mostly full of dead entries costs every subsequent push
        // and pop; rebuild it from the survivors once they are a minority.
        if self.queue.len() > 64 && self.queue.len() > 2 * self.live {
            let board = self.board.borrow();
            let retained: Vec<Entry> = self
                .queue
                .drain()
                .filter(|e| board.gens[e.slot as usize] == e.gen)
                .collect();
            drop(board);
            self.queue = BinaryHeap::from(retained);
        }
    }

    /// Schedule `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events cannot run in
    /// the past).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim<S>) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let at = at.saturating_add(self.jitter_for(seq));
        let (slot, gen) = self.alloc_slot(Box::new(action));
        self.queue.push(Entry {
            time: at,
            seq,
            slot,
            gen,
        });
    }

    /// Schedule `action` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, action: impl FnOnce(&mut Sim<S>) + 'static) {
        self.schedule_at(self.now.saturating_add(after), action);
    }

    /// Schedule a cancellable event; returns a [`TimerHandle`].
    pub fn schedule_timer(
        &mut self,
        after: SimDuration,
        action: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> TimerHandle {
        let at = self.now.saturating_add(after);
        assert!(at >= self.now, "timer overflow");
        let seq = self.seq;
        self.seq += 1;
        let at = at.saturating_add(self.jitter_for(seq));
        let (slot, gen) = self.alloc_slot(Box::new(action));
        self.queue.push(Entry {
            time: at,
            seq,
            slot,
            gen,
        });
        TimerHandle {
            board: Rc::clone(&self.board),
            slot,
            gen,
            requested: Cell::new(false),
        }
    }

    /// Schedule a cross-engine arrival at `at`, tie-broken by an explicit
    /// `key` instead of a submission sequence number.
    ///
    /// The parallel executor injects envelopes from *other* engines with
    /// this: the key (see [`arrival_key`]) has the top bit set, so at
    /// equal times locally scheduled events (whose sequence numbers stay
    /// far below `1 << 63`) always run first, and co-timed arrivals order
    /// by `(source host, per-source seq)` — a total order that depends
    /// only on what was sent, never on when or in which batch the
    /// envelope was injected. No submission seq is consumed and no
    /// schedule jitter is applied, so injection leaves the local event
    /// stream byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_arrival(
        &mut self,
        at: SimTime,
        key: u64,
        action: impl FnOnce(&mut Sim<S>) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule arrival in the past: {at} < now {}",
            self.now
        );
        debug_assert!(key >= ARRIVAL_KEY_BASE, "arrival keys must set the top bit");
        let (slot, gen) = self.alloc_slot(Box::new(action));
        self.queue.push(Entry {
            time: at,
            seq: key,
            slot,
            gen,
        });
    }

    /// Pop heap entries until one refers to a live action; returns it with
    /// its closure, already detached from the slab.
    fn pop_live(&mut self) -> Option<(SimTime, Event<S>)> {
        self.reap_cancelled();
        loop {
            let entry = self.queue.pop()?;
            // Stale entries (cancelled and reaped, slot possibly reused)
            // fail the generation check and die silently here.
            if self.board.borrow().gens[entry.slot as usize] != entry.gen {
                continue;
            }
            let action = self.actions[entry.slot as usize]
                .take()
                .expect("live generation implies a pending action");
            self.live -= 1;
            self.release_slot(entry.slot);
            return Some((entry.time, action));
        }
    }

    /// Run the next live event, if any. Returns `false` when no live event
    /// remains. Cancelled timers neither run nor count.
    pub fn step(&mut self) -> bool {
        match self.pop_live() {
            Some((time, action)) => {
                debug_assert!(time >= self.now);
                self.now = time;
                self.processed += 1;
                action(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run every event scheduled at or before `until`, then set the clock to
    /// `until` (even if no event fired exactly then).
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            self.reap_cancelled();
            match self.queue.peek() {
                Some(e) if e.time <= until => {
                    // Dead heads are removed (not executed) by pop_live
                    // inside step; live heads at or before `until` run.
                    if self.board.borrow().gens[e.slot as usize] != e.gen {
                        self.queue.pop();
                        continue;
                    }
                    self.step();
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Run every live event strictly *before* `horizon`, then set the
    /// clock to `horizon`.
    ///
    /// This is the epoch step of the conservative parallel executor
    /// (`dash::par`): the bound is exclusive — an event at exactly
    /// `horizon` stays pending — so cross-engine arrivals timed
    /// `>= horizon` may still be injected afterwards (via
    /// [`Sim::schedule_arrival`]) without ever scheduling into the past.
    pub fn run_until_horizon(&mut self, horizon: SimTime) {
        loop {
            self.reap_cancelled();
            match self.queue.peek() {
                Some(e) if e.time < horizon => {
                    if self.board.borrow().gens[e.slot as usize] != e.gen {
                        self.queue.pop();
                        continue;
                    }
                    self.step();
                }
                _ => break,
            }
        }
        if horizon > self.now {
            self.now = horizon;
        }
    }

    /// Run at most `max_events` live events; returns how many actually ran.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_in(SimDuration::from_millis(3), |s| s.state.push(3));
        sim.schedule_in(SimDuration::from_millis(1), |s| s.state.push(1));
        sim.schedule_in(SimDuration::from_millis(2), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(100), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::from_nanos(1), |sim| {
            sim.state += 1;
            sim.schedule_in(SimDuration::from_nanos(1), |sim| {
                sim.state += 10;
            });
        });
        sim.run();
        assert_eq!(sim.state, 11);
        assert_eq!(sim.now(), SimTime::from_nanos(2));
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::from_millis(1), |s| s.state += 1);
        sim.schedule_in(SimDuration::from_millis(10), |s| s.state += 100);
        sim.run_until(SimTime::from_nanos(5_000_000));
        assert_eq!(sim.state, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(sim.state, 101);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_in(SimDuration::from_millis(1), |sim| {
            sim.schedule_at(SimTime::ZERO, |_| {});
        });
        sim.run();
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Sim::new(0u64);
        let h = sim.schedule_timer(SimDuration::from_millis(1), |s| s.state += 1);
        let h2 = sim.schedule_timer(SimDuration::from_millis(1), |s| s.state += 10);
        h.cancel();
        assert!(h.is_cancelled());
        assert!(!h2.is_cancelled());
        sim.run();
        assert_eq!(sim.state, 10);
    }

    #[test]
    fn run_bounded_counts_events() {
        let mut sim = Sim::new(0u64);
        for _ in 0..5 {
            sim.schedule_in(SimDuration::from_nanos(1), |s| s.state += 1);
        }
        assert_eq!(sim.run_bounded(3), 3);
        assert_eq!(sim.state, 3);
        assert_eq!(sim.run_bounded(100), 2);
    }

    #[test]
    fn cancelled_timer_is_reaped_and_slot_reuse_is_safe() {
        let mut sim = Sim::new(Vec::new());
        // Schedule far-future timers, cancel them, then reuse their slots
        // with near-term events. The stale heap entries must neither fire
        // the new closures early nor fire at all.
        let handles: Vec<TimerHandle> = (0..8)
            .map(|i| {
                sim.schedule_timer(SimDuration::from_millis(100 + i), move |s| {
                    s.state.push(1000 + i)
                })
            })
            .collect();
        for h in &handles {
            h.cancel();
        }
        for i in 0..8u64 {
            sim.schedule_in(SimDuration::from_millis(i), move |s| s.state.push(i));
        }
        // Cancelled timers no longer count once the engine reaps them.
        sim.step();
        assert_eq!(sim.events_pending(), 7);
        sim.run();
        assert_eq!(sim.state, (0..8).collect::<Vec<_>>());
        assert_eq!(sim.events_processed(), 8);
    }

    #[test]
    fn cancel_after_fire_is_noop_and_observable() {
        let mut sim = Sim::new(0u64);
        let h = sim.schedule_timer(SimDuration::from_nanos(1), |s| s.state += 1);
        sim.run();
        assert_eq!(sim.state, 1);
        assert!(!h.is_cancelled());
        h.cancel(); // slot already retired: harmless
        assert!(h.is_cancelled());
        sim.schedule_in(SimDuration::from_nanos(1), |s| s.state += 10);
        sim.run();
        assert_eq!(sim.state, 11);
    }

    #[test]
    fn schedule_jitter_is_deterministic_additive_and_off_by_default() {
        let order = |jitter: Option<u64>| {
            let mut sim = Sim::new(Vec::new());
            if let Some(seed) = jitter {
                sim.set_schedule_jitter(seed, SimDuration::from_micros(50));
            }
            for i in 0..16u64 {
                sim.schedule_in(SimDuration::from_micros(10), move |s| s.state.push(i));
            }
            sim.run();
            (sim.state.clone(), sim.now())
        };
        // Same seed → identical schedule (jitter is a pure function of
        // (seed, seq)); different seed → a different interleaving.
        let (a, ta) = order(Some(7));
        let (b, tb) = order(Some(7));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        let (c, _) = order(Some(8));
        assert_ne!(a, c, "distinct seeds should permute differently");
        // Additive only: nothing fires before its requested time.
        assert!(ta >= SimTime::from_nanos(10_000));
        // Off by default: submission order is preserved exactly.
        let (plain, t0) = order(None);
        assert_eq!(plain, (0..16).collect::<Vec<_>>());
        assert_eq!(t0, SimTime::from_nanos(10_000));
    }

    #[test]
    fn heap_compacts_when_dead_entries_dominate() {
        let mut sim = Sim::new(0u64);
        let handles: Vec<TimerHandle> = (0..500)
            .map(|_| sim.schedule_timer(SimDuration::from_secs(10), |s| s.state += 1))
            .collect();
        for h in &handles {
            h.cancel();
        }
        sim.schedule_in(SimDuration::from_nanos(1), |s| s.state += 100);
        sim.run();
        assert_eq!(sim.state, 100);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn run_until_horizon_is_exclusive() {
        let mut sim = Sim::new(Vec::new());
        let t = SimTime::from_nanos(1_000);
        sim.schedule_at(t, |s| s.state.push("at"));
        sim.schedule_at(SimTime::from_nanos(999), |s| s.state.push("before"));
        sim.run_until_horizon(t);
        assert_eq!(sim.state, vec!["before"]);
        assert_eq!(sim.now(), t, "the clock still advances to the horizon");
        // The event at exactly the horizon is pending, not lost.
        sim.run_until_horizon(SimTime::from_nanos(1_001));
        assert_eq!(sim.state, vec!["before", "at"]);
    }

    #[test]
    fn next_event_time_skips_dead_heads() {
        let mut sim = Sim::new(0u64);
        let h = sim.schedule_timer(SimDuration::from_nanos(10), |s| s.state += 1);
        sim.schedule_in(SimDuration::from_nanos(20), |s| s.state += 2);
        h.cancel();
        assert_eq!(sim.next_event_time(), Some(SimTime::from_nanos(20)));
    }

    /// The load-bearing property of keyed arrivals: at equal times, pop
    /// order is `(local events) < (arrivals by (src, seq))` regardless of
    /// the order or batching in which the arrivals were injected.
    #[test]
    fn keyed_arrivals_order_canonically() {
        let t = SimTime::from_nanos(500);
        let run = |inject_order: &[(u32, u64)]| {
            let mut sim = Sim::new(Vec::new());
            sim.schedule_at(t, |s| s.state.push((u32::MAX, 0)));
            for &(src, seq) in inject_order {
                sim.schedule_arrival(t, arrival_key(src, seq), move |s| {
                    s.state.push((src, seq));
                });
            }
            sim.run();
            sim.state
        };
        let a = run(&[(2, 0), (1, 1), (1, 0)]);
        let b = run(&[(1, 0), (1, 1), (2, 0)]);
        assert_eq!(a, b);
        assert_eq!(a, vec![(u32::MAX, 0), (1, 0), (1, 1), (2, 0)]);
    }

    /// Injection never consumes a submission seq or jitter draw, so the
    /// local schedule is byte-identical with or without arrivals mixed in.
    #[test]
    fn arrivals_leave_local_seq_stream_untouched() {
        let local = |with_arrival: bool| {
            let mut sim = Sim::new(Vec::new());
            sim.schedule_in(SimDuration::from_nanos(10), |s| s.state.push(1));
            if with_arrival {
                sim.schedule_arrival(SimTime::from_nanos(5), arrival_key(3, 0), |_| {});
            }
            sim.schedule_in(SimDuration::from_nanos(10), |s| s.state.push(2));
            sim.run();
            sim.state
        };
        assert_eq!(local(false), local(true));
    }
}
