//! The discrete-event engine.
//!
//! [`Sim<S>`] owns a virtual clock, a priority queue of pending events, and
//! an application-defined world state `S`. Events are boxed closures that
//! receive `&mut Sim<S>` — they can mutate the world, read the clock, and
//! schedule further events. Ties in time are broken by submission order, so
//! a run is fully deterministic.
//!
//! ```
//! use dash_sim::engine::Sim;
//! use dash_sim::time::SimDuration;
//!
//! let mut sim = Sim::new(0u32);
//! sim.schedule_in(SimDuration::from_millis(1), |sim| sim.state += 1);
//! sim.schedule_in(SimDuration::from_millis(2), |sim| sim.state += 10);
//! sim.run();
//! assert_eq!(sim.state, 11);
//! assert_eq!(sim.now().as_nanos(), 2_000_000);
//! ```

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A scheduled action: a one-shot closure run at its scheduled instant.
pub type Event<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Entry<S> {
    time: SimTime,
    seq: u64,
    action: Event<S>,
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Handle to a scheduled event that may be cancelled before it fires.
///
/// Cancellation is cooperative: the entry stays in the queue but becomes a
/// no-op when popped. Dropping the handle does *not* cancel the event.
#[derive(Debug, Clone)]
pub struct TimerHandle {
    cancelled: Rc<Cell<bool>>,
}

impl TimerHandle {
    /// Cancel the associated event. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// True if [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

/// A discrete-event simulator with world state `S`.
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<S>>,
    processed: u64,
    /// The simulated world. Public by design: event closures and the layer
    /// crates built on this engine address the world through accessor traits
    /// on `S`.
    pub state: S,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("state", &self.state)
            .finish()
    }
}

impl<S> Sim<S> {
    /// Create a simulator at time zero wrapping `state`.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
            state,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    /// Schedule `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events cannot run in
    /// the past).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim<S>) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedule `action` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, action: impl FnOnce(&mut Sim<S>) + 'static) {
        self.schedule_at(self.now.saturating_add(after), action);
    }

    /// Schedule a cancellable event; returns a [`TimerHandle`].
    pub fn schedule_timer(
        &mut self,
        after: SimDuration,
        action: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> TimerHandle {
        let cancelled = Rc::new(Cell::new(false));
        let flag = Rc::clone(&cancelled);
        self.schedule_in(after, move |sim| {
            if !flag.get() {
                action(sim);
            }
        });
        TimerHandle { cancelled }
    }

    /// Run the next event, if any. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(entry) => {
                debug_assert!(entry.time >= self.now);
                self.now = entry.time;
                self.processed += 1;
                (entry.action)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run every event scheduled at or before `until`, then set the clock to
    /// `until` (even if no event fired exactly then).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Run at most `max_events` events; returns how many actually ran.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_in(SimDuration::from_millis(3), |s| s.state.push(3));
        sim.schedule_in(SimDuration::from_millis(1), |s| s.state.push(1));
        sim.schedule_in(SimDuration::from_millis(2), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(100), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::from_nanos(1), |sim| {
            sim.state += 1;
            sim.schedule_in(SimDuration::from_nanos(1), |sim| {
                sim.state += 10;
            });
        });
        sim.run();
        assert_eq!(sim.state, 11);
        assert_eq!(sim.now(), SimTime::from_nanos(2));
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::from_millis(1), |s| s.state += 1);
        sim.schedule_in(SimDuration::from_millis(10), |s| s.state += 100);
        sim.run_until(SimTime::from_nanos(5_000_000));
        assert_eq!(sim.state, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(sim.state, 101);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_in(SimDuration::from_millis(1), |sim| {
            sim.schedule_at(SimTime::ZERO, |_| {});
        });
        sim.run();
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Sim::new(0u64);
        let h = sim.schedule_timer(SimDuration::from_millis(1), |s| s.state += 1);
        let h2 = sim.schedule_timer(SimDuration::from_millis(1), |s| s.state += 10);
        h.cancel();
        assert!(h.is_cancelled());
        assert!(!h2.is_cancelled());
        sim.run();
        assert_eq!(sim.state, 10);
    }

    #[test]
    fn run_bounded_counts_events() {
        let mut sim = Sim::new(0u64);
        for _ in 0..5 {
            sim.schedule_in(SimDuration::from_nanos(1), |s| s.state += 1);
        }
        assert_eq!(sim.run_bounded(3), 3);
        assert_eq!(sim.state, 3);
        assert_eq!(sim.run_bounded(100), 2);
    }
}
