//! The time-source seam between the event queue and whatever clock paces
//! it.
//!
//! [`crate::engine::Sim`] orders events on the virtual clock and has no
//! opinion about how fast that clock runs against the wall. A
//! [`TimeDriver`] supplies that opinion: the loop draining the queue asks
//! the driver how long to actually wait before an event at virtual
//! instant `t` may run. The two implementations are
//!
//! * [`VirtualDriver`] (here) — never waits; virtual time is decoupled
//!   from the wall and a run executes as fast as the hardware allows.
//!   This is the semantics every simulation in this repository has always
//!   had: `Sim::run` is exactly a loop over a `VirtualDriver` that always
//!   answers "due now".
//! * `Monotonic` (in the `dash-rt` crate) — maps virtual nanoseconds 1:1
//!   onto a `std::time::Instant` anchor, so an event scheduled at
//!   `t = 5 ms` becomes due five wall milliseconds after the run started.
//!
//! Protocol code never sees the driver: timers are scheduled in virtual
//! time either way, which is what lets one protocol stack run under both
//! backends unmodified.

use std::time::{Duration, Instant};

use crate::time::SimTime;

/// Paces an event loop against the virtual clock.
///
/// Implementations must be *monotone*: once [`TimeDriver::now`] has
/// returned some virtual instant, it never returns an earlier one, and an
/// event reported due (zero [`TimeDriver::wait_budget`]) never becomes
/// not-due again.
pub trait TimeDriver {
    /// How long the caller must actually wait, starting now, before an
    /// event scheduled at virtual instant `t` is due. [`Duration::ZERO`]
    /// means "run it".
    ///
    /// Virtual drivers always answer zero; asking advances their notion
    /// of [`TimeDriver::now`] to at least `t`.
    fn wait_budget(&mut self, t: SimTime) -> Duration;

    /// The wall instant at which virtual instant `t` falls due, for
    /// drivers that pace on wall time at all. Purely-virtual drivers
    /// return `None`.
    fn wall_deadline(&self, t: SimTime) -> Option<Instant>;

    /// The driver's current position on the virtual clock (monotone).
    ///
    /// For a virtual driver this is the high-water mark of instants it
    /// has been asked about; for a wall-clock driver it is the wall time
    /// elapsed since the run's anchor, expressed in virtual nanoseconds.
    fn now(&mut self) -> SimTime;

    /// True when the driver paces on wall time (timers become real
    /// deadlines, waits really block).
    fn is_realtime(&self) -> bool;
}

/// The as-fast-as-possible driver: every instant is already due.
///
/// Running a [`crate::engine::Sim`] under this driver is byte-for-byte
/// the engine's native `run` semantics — the driver is pure bookkeeping
/// and never blocks.
#[derive(Debug, Default)]
pub struct VirtualDriver {
    /// High-water mark of instants asked about.
    hwm: SimTime,
}

impl VirtualDriver {
    /// A fresh driver at virtual time zero.
    pub fn new() -> Self {
        VirtualDriver { hwm: SimTime::ZERO }
    }
}

impl TimeDriver for VirtualDriver {
    fn wait_budget(&mut self, t: SimTime) -> Duration {
        if t > self.hwm {
            self.hwm = t;
        }
        Duration::ZERO
    }

    fn wall_deadline(&self, _t: SimTime) -> Option<Instant> {
        None
    }

    fn now(&mut self) -> SimTime {
        self.hwm
    }

    fn is_realtime(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_driver_never_waits_and_tracks_high_water() {
        let mut d = VirtualDriver::new();
        assert_eq!(d.now(), SimTime::ZERO);
        assert_eq!(d.wait_budget(SimTime::from_nanos(500)), Duration::ZERO);
        assert_eq!(d.now(), SimTime::from_nanos(500));
        // Asking about an earlier instant never rolls the clock back.
        assert_eq!(d.wait_budget(SimTime::from_nanos(100)), Duration::ZERO);
        assert_eq!(d.now(), SimTime::from_nanos(500));
        assert!(d.wall_deadline(SimTime::from_nanos(1)).is_none());
        assert!(!d.is_realtime());
    }
}
