//! Lightweight event tracing for debugging simulation runs.
//!
//! A [`Trace`] is a bounded ring of `(time, subsystem, message)` records.
//! Tracing is off by default so hot paths pay only a branch; the integration
//! tests switch it on to diagnose protocol interleavings.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Short subsystem tag, e.g. `"st"`, `"net"`, `"rkom"`.
    pub subsystem: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.subsystem, self.message)
    }
}

/// A bounded in-memory trace buffer.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(4096)
    }
}

impl Trace {
    /// Create a disabled trace that keeps at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: false,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event if tracing is enabled. The message closure is only
    /// evaluated when recording, keeping disabled tracing nearly free.
    pub fn record(
        &mut self,
        time: SimTime,
        subsystem: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            subsystem,
            message: message(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Discard all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(8);
        t.record(SimTime::ZERO, "x", || "hello".into());
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new(8);
        t.set_enabled(true);
        t.record(SimTime::from_nanos(5), "st", || "send".into());
        let events: Vec<_> = t.events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].subsystem, "st");
        assert_eq!(events[0].message, "send");
        assert!(t.dump().contains("send"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        t.set_enabled(true);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), "x", || format!("e{i}"));
        }
        let msgs: Vec<_> = t.events().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
        assert_eq!(t.dropped(), 2);
        t.clear();
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn message_closure_lazy_when_disabled() {
        let mut t = Trace::new(3);
        let mut called = false;
        t.record(SimTime::ZERO, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
    }
}
