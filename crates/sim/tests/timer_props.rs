//! Property test: the engine's event/timer queue against a reference
//! model.
//!
//! The model is the spec the engine has always promised: a
//! `BinaryHeap<(SimTime, seq)>` popping the earliest `(time, seq)` pair —
//! time order with same-timestamp FIFO tie-break — where cancelled timers
//! simply never fire. The test drives both through random interleavings of
//! schedule / schedule-at-same-instant / cancel operations (including
//! cancel-before-fire and cancel-after-fire) and demands the engine's
//! execution order match the model exactly. It is written against the
//! public `Sim` API only, so it holds for any internal queue
//! representation — it gated the replacement of the boxed-closure heap and
//! keeps gating whatever comes next.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// One scripted operation against both queue implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a plain event at `now + delta_ns`.
    Schedule { delta_ns: u64 },
    /// Schedule a cancellable timer at `now + delta_ns`.
    Timer { delta_ns: u64 },
    /// Cancel the `k`-th timer scheduled so far (wraps; no-op when none).
    Cancel { k: usize },
    /// Run the next `n` due events before continuing the script.
    Step { n: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..5_000).prop_map(|delta_ns| Op::Schedule { delta_ns }),
        // A coarse grid of timestamps so same-instant ties are common.
        (0u64..8).prop_map(|slot| Op::Schedule {
            delta_ns: slot * 100
        }),
        (0u64..5_000).prop_map(|delta_ns| Op::Timer { delta_ns }),
        (0u64..8).prop_map(|slot| Op::Timer {
            delta_ns: slot * 100
        }),
        (0usize..64).prop_map(|k| Op::Cancel { k }),
        (1usize..5).prop_map(|n| Op::Step { n }),
    ]
}

/// Reference model: ids pop in `(time, seq)` order; cancelled ids never
/// pop. `seq` is the global submission counter, shared with the engine by
/// construction (both see the same schedule calls in the same order).
#[derive(Default)]
struct Model {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    meta: Vec<(u64, bool)>, // per scheduled entry: (id, cancelled)
}

impl Model {
    fn schedule(&mut self, at: SimTime, id: u64) {
        self.heap.push(Reverse((at, id)));
        debug_assert_eq!(self.meta.len() as u64, id);
        self.meta.push((id, false));
    }

    fn cancel(&mut self, id: u64) {
        self.meta[id as usize].1 = true;
    }

    /// Pop ids until `n` live entries fired (or the heap drained).
    fn run(&mut self, n: usize, fired: &mut Vec<u64>) {
        let mut done = 0;
        while done < n {
            match self.heap.pop() {
                Some(Reverse((_, id))) => {
                    if !self.meta[id as usize].1 {
                        fired.push(id);
                        done += 1;
                    }
                }
                None => break,
            }
        }
    }

    fn drain(&mut self, fired: &mut Vec<u64>) {
        self.run(usize::MAX, fired);
    }
}

/// Drive one script through the engine and the model; return both firing
/// orders. Engine events record their id into a shared log.
fn run_script(ops: &[Op]) -> (Vec<u64>, Vec<u64>) {
    let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let mut sim: Sim<()> = Sim::new(());
    let mut model = Model::default();
    let mut model_fired = Vec::new();
    let mut timers: Vec<(u64, TimerHandle)> = Vec::new();
    let mut next_id = 0u64;

    for op in ops {
        match op {
            Op::Schedule { delta_ns } => {
                let at = sim.now().saturating_add(SimDuration::from_nanos(*delta_ns));
                let id = next_id;
                next_id += 1;
                let log = Rc::clone(&log);
                sim.schedule_at(at, move |_| log.borrow_mut().push(id));
                model.schedule(at, id);
            }
            Op::Timer { delta_ns } => {
                let after = SimDuration::from_nanos(*delta_ns);
                let at = sim.now().saturating_add(after);
                let id = next_id;
                next_id += 1;
                let log = Rc::clone(&log);
                let handle = sim.schedule_timer(after, move |_| log.borrow_mut().push(id));
                model.schedule(at, id);
                timers.push((id, handle));
            }
            Op::Cancel { k } => {
                if timers.is_empty() {
                    continue;
                }
                let (id, handle) = &timers[k % timers.len()];
                handle.cancel();
                assert!(handle.is_cancelled());
                model.cancel(*id);
            }
            Op::Step { n } => {
                // "Run until `n` more live events have fired" — phrased via
                // the observation log so it holds for any internal queue
                // representation (a cancelled entry may or may not cost a
                // `step()` call depending on how cancellation is stored).
                let before = log.borrow().len();
                while log.borrow().len() < before + n && sim.step() {}
                let fired_now = log.borrow().len() - before;
                model.run(fired_now, &mut model_fired);
            }
        }
    }
    sim.run();
    model.drain(&mut model_fired);
    let engine_fired = log.borrow().clone();
    (engine_fired, model_fired)
}

proptest! {
    /// Random interleavings: the engine fires exactly the live entries, in
    /// exactly the model's (time, seq) order.
    #[test]
    fn engine_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (engine, model) = run_script(&ops);
        prop_assert_eq!(engine, model);
    }
}

/// Deterministic spot-checks of the corners the property test relies on.
#[test]
fn same_timestamp_ties_fire_in_submission_order_among_survivors() {
    let ops = vec![
        Op::Timer { delta_ns: 100 },    // id 0
        Op::Schedule { delta_ns: 100 }, // id 1
        Op::Timer { delta_ns: 100 },    // id 2
        Op::Cancel { k: 0 },            // kills id 0 before it fires
        Op::Schedule { delta_ns: 0 },   // id 3, earlier instant
    ];
    let (engine, model) = run_script(&ops);
    assert_eq!(engine, vec![3, 1, 2]);
    assert_eq!(engine, model);
}

#[test]
fn cancel_after_fire_is_a_harmless_noop() {
    let ops = vec![
        Op::Timer { delta_ns: 0 },     // id 0
        Op::Step { n: 1 },             // fires id 0
        Op::Cancel { k: 0 },           // cancel after the fact
        Op::Schedule { delta_ns: 10 }, // id 1 still runs
    ];
    let (engine, model) = run_script(&ops);
    assert_eq!(engine, vec![0, 1]);
    assert_eq!(engine, model);
}

#[test]
fn interleaved_stepping_preserves_order() {
    let ops = vec![
        Op::Schedule { delta_ns: 300 }, // id 0
        Op::Timer { delta_ns: 100 },    // id 1
        Op::Step { n: 1 },              // fires id 1
        Op::Timer { delta_ns: 100 },    // id 2 at now+100 = 200
        Op::Cancel { k: 1 },            // kills id 2 (second timer)
        Op::Schedule { delta_ns: 50 },  // id 3 at 150
    ];
    let (engine, model) = run_script(&ops);
    assert_eq!(engine, vec![1, 3, 0]);
    assert_eq!(engine, model);
}
