//! Criterion wrappers around whole-simulation kernels, one per paper
//! experiment family. These measure harness wall-time (how fast the
//! simulator reproduces each scenario), complementing the result tables
//! printed by the `run_experiments` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dash_apps::bulk::{run_until_complete, start_bulk};
use dash_apps::media::{start_media, MediaSpec};
use dash_apps::taps::Dispatcher;
use dash_net::topology::two_hosts_ethernet;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_transport::stack::StackBuilder;
use dash_transport::stream::StreamProfile;

fn bench_voice_second(c: &mut Criterion) {
    c.bench_function("sim/voice-1s-lan", |b| {
        b.iter(|| {
            let (net, a, hb) = two_hosts_ethernet();
            let mut sim = Sim::new(StackBuilder::new(net).build());
            let taps = Dispatcher::install(&mut sim, &[a, hb]);
            let stats = start_media(
                &mut sim,
                &taps,
                a,
                hb,
                MediaSpec::voice(SimDuration::from_secs(1)),
                7,
            );
            sim.run();
            let received = stats.borrow().received;
            black_box(received)
        })
    });
}

fn bench_bulk_quarter_mb(c: &mut Criterion) {
    c.bench_function("sim/bulk-256KB-lan", |b| {
        b.iter(|| {
            let (net, a, hb) = two_hosts_ethernet();
            let mut sim = Sim::new(StackBuilder::new(net).build());
            let taps = Dispatcher::install(&mut sim, &[a, hb]);
            let stats = start_bulk(
                &mut sim,
                &taps,
                a,
                hb,
                256 * 1024,
                4 * 1024,
                StreamProfile::bulk(),
            );
            let done = run_until_complete(&mut sim, &stats, SimDuration::from_secs(30));
            black_box(done)
        })
    });
}

fn bench_experiment_tables(c: &mut Criterion) {
    // The cheapest experiment end to end, as a regression canary for the
    // whole harness path.
    c.bench_function("sim/e5-capacity-table", |b| {
        b.iter(|| black_box(dash_bench::e_capacity::e5_capacity().rows.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_voice_second, bench_bulk_quarter_mb, bench_experiment_tables
}
criterion_main!(benches);
