//! Criterion micro-benchmarks of the hot kernels: checksums, cipher, MAC,
//! the piggyback queue, the deadline-ordered interface queue, admission
//! math, and the ST wire codec.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use dash_net::ids::{HostId, NetRmsId, NetworkId};
use dash_net::iface::{Iface, QueueDiscipline};
use dash_net::packet::{DataPacket, Packet, PacketKind};
use dash_security::checksum::Algorithm;
use dash_security::cipher::{encrypt, Key};
use dash_security::mac;
use dash_sim::time::SimDuration;
use dash_sim::time::SimTime;
use dash_subtransport::ids::StRmsId;
use dash_subtransport::piggyback::{PendingEntry, PiggybackQueue};
use dash_subtransport::wire::{decode, encode, DataFrame, Frame};
use rms_core::admission::ResourceLedger;
use rms_core::delay::DelayBound;
use rms_core::params::RmsParams;
use rms_core::wire::WireMsg;

fn bench_checksums(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    let mut g = c.benchmark_group("checksum-1500B");
    g.throughput(Throughput::Bytes(1500));
    for alg in Algorithm::ALL {
        g.bench_function(format!("{alg:?}"), |b| {
            b.iter(|| black_box(alg.compute(black_box(&data))))
        });
    }
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0x5au8; 1500];
    let key = Key(42);
    let mut g = c.benchmark_group("crypto-1500B");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("stream-cipher", |b| {
        b.iter(|| black_box(encrypt(key, 7, black_box(&data))))
    });
    g.bench_function("mac-sign", |b| {
        b.iter(|| black_box(mac::sign(key, 7, black_box(&data))))
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let frame = Frame::Data(DataFrame {
        st_rms: StRmsId(3),
        seq: 9,
        frag: None,
        sent_at: SimTime::from_nanos(123),
        fast_ack: true,
        source: None,
        target: None,
        span: None,
        payload: WireMsg::from(vec![1u8; 512]),
    });
    let encoded = encode(&frame);
    let mut g = c.benchmark_group("st-wire-512B");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(encode(black_box(&frame))))
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(decode(black_box(&encoded)).unwrap()))
    });
    g.finish();
}

fn bench_piggyback(c: &mut Criterion) {
    c.bench_function("piggyback-push-flush-16", |b| {
        b.iter(|| {
            let mut q = PiggybackQueue::new();
            for i in 0..16u64 {
                let frame = DataFrame {
                    st_rms: StRmsId(i % 4),
                    seq: i,
                    frag: None,
                    sent_at: SimTime::ZERO,
                    fast_ack: false,
                    source: None,
                    target: None,
                    span: None,
                    payload: WireMsg::from_bytes(Bytes::from_static(&[0u8; 64])),
                };
                let e = PendingEntry {
                    wire: encode(&Frame::Data(frame)),
                    st_rms: StRmsId(i % 4),
                    sent_at: SimTime::ZERO,
                    span: None,
                    min_deadline: SimTime::ZERO,
                    max_deadline: SimTime::from_nanos(1_000_000),
                };
                let _ = q.try_push(e, 64 * 1024);
            }
            black_box(q.flush())
        })
    });
}

fn bench_iface_queue(c: &mut Criterion) {
    c.bench_function("iface-deadline-queue-64", |b| {
        b.iter(|| {
            let ledger = ResourceLedger::new(1e6, 1 << 20);
            let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger, None);
            for i in 0..64u64 {
                let p = Packet {
                    src: HostId(0),
                    dst: HostId(1),
                    kind: PacketKind::Data(DataPacket {
                        rms: NetRmsId(1),
                        seq: i,
                        payload: WireMsg::from_bytes(Bytes::from_static(&[0u8; 128])),
                        source: None,
                        target: None,
                        mac: None,
                        checksum: None,
                        span: None,
                    }),
                    deadline: SimTime::from_nanos((i * 7919) % 1_000_000),
                    sent_at: SimTime::ZERO,
                    corrupted: false,
                    hops: 0,
                    reliable: false,
                    next_plan: None,
                    source_route: None,
                    next_hop: None,
                };
                iface.enqueue(SimTime::ZERO, p);
            }
            while iface.dequeue(SimTime::ZERO).is_some() {}
            black_box(iface.queued_packets())
        })
    });
}

fn bench_admission(c: &mut Criterion) {
    let params = RmsParams::builder(100_000, 1_000)
        .delay(DelayBound::deterministic(
            SimDuration::from_millis(100),
            SimDuration::from_micros(1),
        ))
        .build()
        .unwrap();
    c.bench_function("admission-admit-release", |b| {
        b.iter(|| {
            let mut ledger = ResourceLedger::new(1.25e6, 1 << 20);
            for _ in 0..8 {
                black_box(ledger.admit(black_box(&params)));
            }
            for _ in 0..8 {
                ledger.release(&params);
            }
        })
    });
}

criterion_group!(
    benches,
    bench_checksums,
    bench_crypto,
    bench_wire,
    bench_piggyback,
    bench_iface_queue,
    bench_admission
);
criterion_main!(benches);
