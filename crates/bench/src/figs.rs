//! Experiments regenerating the paper's five figures (all architecture
//! diagrams) as executable evidence: each runs the subsystem the figure
//! depicts and quantifies the claim attached to it. See DESIGN.md's
//! experiment index.

use std::cell::RefCell;
use std::rc::Rc;

use dash_apps::bulk::{run_until_complete, start_bulk};
use dash_apps::media::{start_media, MediaSpec};
use dash_apps::taps::Dispatcher;
use dash_net::topology::{dumbbell, TopologyBuilder};
use dash_net::NetworkSpec;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_subtransport::st::StConfig;
use dash_transport::flow::CapacityEnforcement;
use dash_transport::rkom;
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::{self, StreamProfile};
use rms_core::delay::DelayBound;
use rms_core::message::Message;

use crate::table::{f, pct, secs, Table};

fn lan_stack() -> (Sim<Stack>, dash_net::HostId, dash_net::HostId) {
    let mut b = TopologyBuilder::new();
    let n = b.network(NetworkSpec::ethernet("lan"));
    let a = b.host_on(n);
    let c = b.host_on(n);
    (
        Sim::new(StackBuilder::new(b.build()).obs(true).build()),
        a,
        c,
    )
}

/// fig1_layering — the same upper stack runs unchanged over different
/// network types (Figure 1's network-independent / network-dependent
/// split).
pub fn fig1_layering() -> Table {
    let mut t = Table::new(
        "fig1_layering",
        "network-independent stack over interchangeable network-dependent parts",
        "the same RMS/ST/transport code runs over any network module; only performance differs",
    );
    t.columns(&[
        "network",
        "voice on-time",
        "voice mean delay",
        "bulk goodput",
        "bulk done",
    ]);
    for (name, which) in [
        ("ethernet-10M", 0),
        ("fast-lan-100M", 1),
        ("internet-dumbbell", 2),
    ] {
        let (mut sim, a, b) = match which {
            0 => lan_stack(),
            1 => {
                let mut tb = TopologyBuilder::new();
                let n = tb.network(NetworkSpec::fast_lan("fast"));
                let a = tb.host_on(n);
                let c = tb.host_on(n);
                (Sim::new(StackBuilder::new(tb.build()).build()), a, c)
            }
            _ => {
                let (net, a, b, _, _) = dumbbell();
                (Sim::new(StackBuilder::new(net).build()), a, b)
            }
        };
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        // Relax the voice budget for the WAN case; the point here is that
        // the code runs, not that a WAN meets LAN deadlines.
        let mut vspec = MediaSpec::voice(SimDuration::from_secs(1));
        if which == 2 {
            vspec.delay_budget = SimDuration::from_millis(120);
            vspec.profile.delay = DelayBound::best_effort_with(
                SimDuration::from_millis(120),
                SimDuration::from_micros(10),
            );
        }
        let voice = start_media(&mut sim, &taps, a, b, vspec, 41);
        let bulk = start_bulk(
            &mut sim,
            &taps,
            a,
            b,
            128 * 1024,
            4 * 1024,
            StreamProfile::bulk(),
        );
        let done = run_until_complete(&mut sim, &bulk, SimDuration::from_secs(20));
        sim.run();
        let v = voice.borrow();
        let g = bulk.borrow().goodput().unwrap_or(0.0);
        t.row(vec![
            name.into(),
            pct(v.on_time_fraction()),
            secs(v.delays.mean()),
            format!("{} B/s", f(g)),
            done.to_string(),
        ]);
    }
    t.note("voice budget: 40 ms on LANs, 120 ms on the internet path");
    t
}

/// fig2_architecture — walk the whole Figure 2 stack once and account for
/// every layer's activity.
pub fn fig2_architecture() -> Table {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(StackBuilder::new(net).obs(true).build());
    let taps = Dispatcher::install(&mut sim, &[a, b]);
    // One RKOM call.
    let latency = Rc::new(RefCell::new(0.0f64));
    let l2 = Rc::clone(&latency);
    rkom::register_service(&mut sim.state, b, 9, |_s, _c, req| req);
    let t0 = sim.now();
    rkom::call(
        &mut sim,
        a,
        b,
        9,
        bytes::Bytes::from_static(b"walk"),
        move |sim, res| {
            assert!(res.is_ok());
            *l2.borrow_mut() = sim.now().saturating_since(t0).as_secs_f64();
        },
    );
    sim.run();
    // One stream message.
    let session = stream::open(&mut sim, a, b, StreamProfile::default()).unwrap();
    let got = Rc::new(RefCell::new(0u64));
    let g2 = Rc::clone(&got);
    taps.register(session, move |_s, ev| {
        if matches!(ev, dash_apps::SessionEvent::Delivered { .. }) {
            *g2.borrow_mut() += 1;
        }
    });
    sim.run();
    stream::send(&mut sim, a, session, Message::zeroes(512)).unwrap();
    sim.run();

    let mut t = Table::new(
        "fig2_architecture",
        "one pass through the DASH communication architecture (Figure 2)",
        "stream protocols and RKOM ride on ST RMSs; the ST multiplexes onto network RMSs over a control channel",
    );
    t.columns(&["layer", "activity", "count"]);
    // Every count below comes from the cross-layer metric registry fed by
    // typed ObsEvents (dash_sim::obs), not from layer-private counters.
    let reg = &sim.state.net.obs.registry;
    t.row(vec![
        "transport/RKOM".into(),
        "call round-trip latency".into(),
        secs(*latency.borrow()),
    ]);
    t.row(vec![
        "transport/stream".into(),
        "messages delivered".into(),
        got.borrow().to_string(),
    ]);
    t.row(vec![
        "subtransport".into(),
        "control channels created".into(),
        reg.counter_value("st.control_created").to_string(),
    ]);
    t.row(vec![
        "subtransport".into(),
        "hello handshakes sent".into(),
        reg.counter_value("st.hello_sent").to_string(),
    ]);
    t.row(vec![
        "subtransport".into(),
        "ST RMS creates requested".into(),
        reg.counter_value("st.create_requested").to_string(),
    ]);
    t.row(vec![
        "subtransport".into(),
        "data network RMSs created".into(),
        reg.counter_value("st.cache_miss").to_string(),
    ]);
    t.row(vec![
        "subtransport".into(),
        "net messages sent".into(),
        reg.counter_value("st.net_msg_sent").to_string(),
    ]);
    t.row(vec![
        "network".into(),
        "packets sent".into(),
        reg.counter_value("net.packet_sent").to_string(),
    ]);
    t.row(vec![
        "network".into(),
        "packets delivered".into(),
        reg.counter_value("net.packet_delivered").to_string(),
    ]);
    t
}

/// fig3_rms_levels — the delay bound of a high-level RMS decomposes into
/// per-stage budgets (Figure 3, §3.4, §4.1).
pub fn fig3_rms_levels() -> Table {
    fig3_run().0
}

/// [`fig3_rms_levels`] plus the full metric registry as JSON Lines (one
/// object per counter/gauge/histogram) for machine consumption.
pub fn fig3_rms_levels_json() -> (Table, String) {
    fig3_run()
}

fn fig3_run() -> (Table, String) {
    // Piggybacking off: bundles would skew the per-stage delay attribution
    // (a bundle's network delay is measured from its oldest component).
    let config = StConfig {
        piggyback: false,
        ..StConfig::default()
    };
    // Two parallel LANs with both hosts dual-homed: the measurement runs
    // on one, and the closing fault drill fails it over to the other.
    let mut tb = TopologyBuilder::new();
    let n = tb.network(NetworkSpec::ethernet("lan"));
    let n2 = tb.network(NetworkSpec::ethernet("backup"));
    let a = tb.host();
    let b = tb.host();
    tb.attach(a, n).attach(a, n2).attach(b, n).attach(b, n2);
    let mut sim = Sim::new(
        StackBuilder::new(tb.build())
            .st_config(config)
            .obs(true)
            .retain_spans(true)
            .build(),
    );
    let taps = Dispatcher::install(&mut sim, &[a, b]);
    let profile = StreamProfile {
        max_message: 512,
        delay: DelayBound::best_effort_with(
            SimDuration::from_millis(50),
            SimDuration::from_micros(10),
        ),
        ..StreamProfile::default()
    };
    let session = stream::open(&mut sim, a, b, profile).unwrap();
    let delays = Rc::new(RefCell::new(Vec::new()));
    let d2 = Rc::clone(&delays);
    taps.register(session, move |_s, ev| {
        if let dash_apps::SessionEvent::Delivered { delay, .. } = ev {
            d2.borrow_mut().push(delay.as_secs_f64());
        }
    });
    sim.run();
    for _ in 0..200 {
        let _ = stream::send(&mut sim, a, session, Message::zeroes(400));
        sim.run_until(sim.now() + SimDuration::from_millis(2));
    }
    sim.run();

    // Stage budgets: the ST negotiated bound vs the network RMS bound.
    let st_bound = sim
        .state
        .st
        .host(a)
        .streams
        .values()
        .find(|s| s.role == dash_subtransport::StRole::Sender)
        .map(|s| s.params.delay.bound_for(430))
        .unwrap_or(SimDuration::ZERO);
    let net_bound = sim
        .state
        .st
        .host(a)
        .peers
        .get(&b)
        .and_then(|p| p.data.values().next())
        .map(|d| d.params.delay.bound_for(460))
        .unwrap_or(SimDuration::ZERO);
    // Measured: every latency below comes from message lifecycle spans
    // (dash_sim::obs) — each delivered message carried a span id from the
    // transport send through ST, the interface queue, and the wire to port
    // delivery, and the registry aggregated the per-stage intervals.
    let spans_completed = sim.state.net.obs.spans().len();
    let delivered_in_measurement = delays.borrow().len();
    let app_mean = {
        let ds = delays.borrow();
        ds.iter().sum::<f64>() / ds.len().max(1) as f64
    };
    let (net_mean, st_mean, e2e_mean) = {
        let reg = &mut sim.state.net.obs.registry;
        (
            reg.histogram("span.net").mean(),
            reg.histogram("span.st").mean(),
            reg.histogram("span.e2e").mean(),
        )
    };

    // Fault drill (after the delay measurement is captured): fail the
    // stream's carrier network mid-traffic and restore it, so the JSON
    // registry dump carries the per-fault-kind counters and the
    // recovery-latency histogram next to the delay decomposition.
    let carrier = sim
        .state
        .net
        .host(a)
        .rms
        .values()
        .next()
        .map(|r| r.path[0])
        .unwrap_or(dash_net::NetworkId(0));
    for _ in 0..3 {
        let _ = stream::send(&mut sim, a, session, Message::zeroes(400));
        sim.run_until(sim.now() + SimDuration::from_millis(2));
    }
    dash_net::fault::apply_fault(
        &mut sim,
        &dash_sim::FaultKind::NetworkDown { network: carrier.0 },
    );
    for _ in 0..5 {
        let _ = stream::send(&mut sim, a, session, Message::zeroes(400));
        sim.run_until(sim.now() + SimDuration::from_millis(2));
    }
    sim.run();
    dash_net::fault::apply_fault(
        &mut sim,
        &dash_sim::FaultKind::NetworkUp { network: carrier.0 },
    );
    sim.run();

    let reg = &mut sim.state.net.obs.registry;
    let recovery_mean = reg.histogram("fault.recovery_latency").mean();

    let mut t = Table::new(
        "fig3_rms_levels",
        "delay decomposition across RMS levels (Figure 3)",
        "an upper-level RMS's delay bound is divided among stages; each stage's measured delay fits its budget",
    );
    t.columns(&["stage", "budget (bound)", "measured mean"]);
    t.row(vec![
        "network RMS".into(),
        secs(net_bound.as_secs_f64()),
        secs(net_mean),
    ]);
    t.row(vec![
        "ST RMS (adds queueing+cpu)".into(),
        secs(st_bound.as_secs_f64()),
        secs(st_mean),
    ]);
    t.row(vec![
        "span end-to-end".into(),
        secs(st_bound.as_secs_f64()),
        secs(e2e_mean),
    ]);
    t.row(vec![
        "client-observed".into(),
        secs(st_bound.as_secs_f64()),
        secs(app_mean),
    ]);
    // Per-stage budget table: consecutive span intervals. Stage names come
    // from Stage::interval(); each row is the latency from that stage to
    // the next one the message passed through.
    for (interval, label) in [
        ("transport", "  transport send -> ST send"),
        ("st_tx", "  ST send -> net send"),
        ("net_tx", "  net send -> iface enqueue"),
        ("queue", "  iface queue wait"),
        ("wire", "  wire + propagation"),
        ("st_rx", "  net recv -> port delivery"),
    ] {
        let name = format!("span.stage.{interval}");
        if reg.has_histogram(&name) {
            t.row(vec![
                label.into(),
                "-".into(),
                secs(reg.histogram(&name).mean()),
            ]);
        }
    }
    t.note(format!(
        "messages delivered: {delivered_in_measurement} (lifecycle spans completed: {spans_completed})"
    ));
    t.note("invariant: measured(network) <= measured(ST) <= ST bound");
    t.note(format!(
        "fault drill: carrier network failed and restored; ST failover recovered in mean {}",
        secs(recovery_mean)
    ));
    let json = reg.to_json_lines();
    (t, json)
}

/// fig4_multiplexing — piggybacking and upward multiplexing (Figure 4,
/// §4.2, §4.3.1).
pub fn fig4_multiplexing() -> Table {
    let mut t = Table::new(
        "fig4_multiplexing",
        "ST RMSs multiplexed onto one network RMS, with piggybacking",
        "piggybacking combines messages from multiplexed ST RMSs into single network messages, cutting per-message overhead",
    );
    t.columns(&[
        "piggyback",
        "msg interval",
        "client msgs",
        "net msgs",
        "net msgs/client msg",
        "bundled",
        "mean delay",
    ]);
    for piggyback in [false, true] {
        for interval_us in [200u64, 1_000, 5_000] {
            let config = StConfig {
                piggyback,
                piggyback_slack: SimDuration::from_millis(2),
                ..StConfig::default()
            };
            let mut b = TopologyBuilder::new();
            let n = b.network(NetworkSpec::ethernet("lan"));
            let ha = b.host_on(n);
            let hb = b.host_on(n);
            let mut sim = Sim::new(
                StackBuilder::new(b.build())
                    .st_config(StConfig { ..config })
                    .obs(true)
                    .build(),
            );
            let taps = Dispatcher::install(&mut sim, &[ha, hb]);
            // Three ST streams multiplexed onto one data network RMS.
            let profile = StreamProfile {
                capacity: 8 * 1024,
                max_message: 128,
                delay: DelayBound::best_effort_with(
                    SimDuration::from_millis(50),
                    SimDuration::from_micros(10),
                ),
                ..StreamProfile::default()
            };
            let sessions: Vec<u64> = (0..3)
                .map(|_| stream::open(&mut sim, ha, hb, profile.clone()).unwrap())
                .collect();
            let delays = Rc::new(RefCell::new(Vec::new()));
            for &s in &sessions {
                let d2 = Rc::clone(&delays);
                taps.register(s, move |_s, ev| {
                    if let dash_apps::SessionEvent::Delivered { delay, .. } = ev {
                        d2.borrow_mut().push(delay.as_secs_f64());
                    }
                });
            }
            sim.run();
            let base_msgs = sim.state.net.obs.registry.counter_value("st.net_msg_sent");
            let n_msgs = 300usize;
            for i in 0..n_msgs {
                let s = sessions[i % 3];
                let _ = stream::send(&mut sim, ha, s, Message::zeroes(64));
                sim.run_until(sim.now() + SimDuration::from_nanos(interval_us * 1_000));
            }
            sim.run();
            let reg = &sim.state.net.obs.registry;
            let net_msgs = reg.counter_value("st.net_msg_sent") - base_msgs;
            let bundled = reg.counter_value("st.msg_bundled");
            let ds = delays.borrow();
            let mean = ds.iter().sum::<f64>() / ds.len().max(1) as f64;
            t.row(vec![
                piggyback.to_string(),
                format!("{}us", interval_us),
                n_msgs.to_string(),
                net_msgs.to_string(),
                f(net_msgs as f64 / n_msgs as f64),
                bundled.to_string(),
                secs(mean),
            ]);
        }
    }
    t.note("same 3 ST RMSs share one network RMS in every row (cache hits = 2)");
    t.note("expected shape: piggybacking cuts net msgs/client msg at high rates, at a small delay cost");
    t
}

/// fig5_flow_control — the cost of each flow-control option (Figure 5,
/// §4.4).
pub fn fig5_flow_control() -> Table {
    let mut t = Table::new(
        "fig5_flow_control",
        "flow-control options and what each one costs",
        "mechanisms are separable; unnecessary ones can be omitted, saving reverse traffic and latency",
    );
    t.columns(&[
        "mechanisms",
        "done",
        "transfer time",
        "goodput",
        "reverse msgs",
        "sender blocked",
        "delivered",
    ]);
    let cases: Vec<(&str, StreamProfile)> = vec![
        ("none", {
            StreamProfile {
                max_message: 1024,
                capacity: 32 * 1024,
                ..StreamProfile::default()
            }
        }),
        ("rate-based capacity", {
            StreamProfile {
                max_message: 1024,
                capacity: 32 * 1024,
                enforcement: CapacityEnforcement::RateBased,
                ..StreamProfile::default()
            }
        }),
        ("ack-based capacity (fast acks)", {
            StreamProfile {
                max_message: 1024,
                capacity: 32 * 1024,
                enforcement: CapacityEnforcement::AckBased,
                ..StreamProfile::default()
            }
        }),
        ("capacity+receiver-fc+reliable (end-to-end)", {
            let mut p = StreamProfile::bulk();
            p.max_message = 1024;
            p.capacity = 32 * 1024;
            p
        }),
    ];
    for (name, profile) in cases {
        let (mut sim, a, b) = lan_stack();
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let total = 256 * 1024u64;
        let stats = start_bulk(&mut sim, &taps, a, b, total, 1024, profile);
        let done = run_until_complete(&mut sim, &stats, SimDuration::from_secs(30));
        sim.run();
        let s = stats.borrow();
        let (reverse, blocked, delivered) = {
            let reg = &sim.state.net.obs.registry;
            let acks = reg.counter_value("stream.ack_sent");
            let fast = reg.counter_value("st.fast_ack_sent");
            let blocked = reg.counter_value("stream.sender_blocked");
            let delivered = reg.counter_value("stream.deliver");
            (acks + fast, blocked, delivered)
        };
        let time = s
            .finished
            .map(|f2| f2.saturating_since(s.started).as_secs_f64())
            .unwrap_or(f64::NAN);
        t.row(vec![
            name.into(),
            done.to_string(),
            secs(time),
            format!("{} B/s", f(s.goodput().unwrap_or(0.0))),
            reverse.to_string(),
            blocked.to_string(),
            delivered.to_string(),
        ]);
    }
    t.note("'reverse msgs' counts transport acks + ST fast acknowledgements");
    t.note("expected shape: 'none' is fastest on a clean LAN but offers no guarantees; each mechanism adds reverse traffic or pacing delay");
    t
}
