//! e11_routing — the QoS-routing macro-workload.
//!
//! Exercises the distributed routing subsystem end to end on the two
//! topologies the design calls out: a **dumbbell with a backup middle**
//! (two fast LANs joined by parallel single-Ethernet corridors, where
//! admission on the primary corridor saturates and establishment must
//! fall back to the backup) and a **3×3 mesh of LANs** joined by
//! gateways, run under session churn with a mid-run outage of the mesh
//! centre. Both runs count the subsystem's observable work — link-state
//! floods, lazy route recomputations, alternate-path wins, subtransport
//! failovers — and those counts are deterministic, so
//! `scripts/check_bench.sh` gates them exactly against
//! `BENCH_routing.json`.
//!
//! The same scenario serves three masters, like e10:
//! - `RoutingParams::full()` / the `e11_routing` binary — the benchmark
//!   size behind `BENCH_routing.json`;
//! - `RoutingParams::bench()` — the regression-gate size;
//! - `RoutingParams::ci()` — a trace-recording size that
//!   `tests/determinism.rs` runs twice and compares byte for byte.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use bytes::Bytes;
use dash_apps::media::{start_media, MediaSpec, MediaStats};
use dash_apps::taps::Dispatcher;
use dash_net::fault::schedule_fault_plan;
use dash_net::pipeline::send_datagram;
use dash_net::topology::TopologyBuilder;
use dash_net::{HostId, NetworkId, NetworkSpec};
use dash_sim::fault::{FaultKind, FaultPlan};
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::StreamProfile;
use rms_core::delay::DelayBound;

use crate::table::Table;

/// Which internetwork shape to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingTopo {
    /// Two fast LANs joined by two parallel single-Ethernet corridors
    /// (primary + backup) — the alternate-fallback scenario.
    DumbbellBackup,
    /// A 3×3 grid of Ethernet LANs joined by one gateway per adjacent
    /// pair — the reconvergence-under-churn scenario.
    Mesh3x3,
}

impl RoutingTopo {
    fn label(self) -> &'static str {
        match self {
            RoutingTopo::DumbbellBackup => "dumbbell",
            RoutingTopo::Mesh3x3 => "mesh",
        }
    }
}

/// Knobs for one routing run. Every output except wall-clock is a
/// deterministic function of these.
#[derive(Debug, Clone)]
pub struct RoutingParams {
    /// Internetwork shape.
    pub topo: RoutingTopo,
    /// Hosts per edge LAN (gateways are extra).
    pub hosts_per_lan: usize,
    /// Long-lived best-effort voice sessions crossing the internetwork.
    pub voice_pairs: usize,
    /// Deterministic-delay sessions whose admission demand saturates the
    /// primary corridor (each asks for most of a single Ethernet budget).
    pub heavy_streams: usize,
    /// Short-lived cross-site sessions opened per churn wave.
    pub churn_per_wave: usize,
    /// Interval between churn waves.
    pub churn_interval: SimDuration,
    /// Interval between datagram probes (table-routed traffic — the thing
    /// that makes lazy route recomputation actually fire).
    pub probe_interval: SimDuration,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// Seed for source randomness.
    pub seed: u64,
    /// Run the mid-run outage drill (primary corridor / mesh centre).
    pub fault_drill: bool,
    /// Record the observability trace (determinism runs only; costly).
    pub record_trace: bool,
    /// Attach the dash-check semantic oracle and report its violation
    /// count. Off for baseline-compared runs: the oracle's bookkeeping
    /// allocates, which would skew `allocs_per_event`.
    pub oracle: bool,
}

impl RoutingParams {
    /// The benchmark size behind `BENCH_routing.json`.
    pub fn full() -> Self {
        RoutingParams {
            topo: RoutingTopo::DumbbellBackup,
            hosts_per_lan: 8,
            voice_pairs: 24,
            heavy_streams: 4,
            churn_per_wave: 8,
            churn_interval: SimDuration::from_millis(200),
            probe_interval: SimDuration::from_millis(50),
            duration: SimDuration::from_secs(2),
            seed: 11,
            fault_drill: true,
            record_trace: false,
            oracle: false,
        }
    }

    /// Mid-size run for the `check_bench.sh` gate.
    pub fn bench() -> Self {
        RoutingParams {
            hosts_per_lan: 6,
            voice_pairs: 12,
            churn_per_wave: 5,
            duration: SimDuration::from_secs(1),
            ..RoutingParams::full()
        }
    }

    /// Scaled-down CI size with trace recording, for the golden
    /// determinism test.
    pub fn ci() -> Self {
        RoutingParams {
            hosts_per_lan: 3,
            voice_pairs: 6,
            heavy_streams: 3,
            churn_per_wave: 3,
            churn_interval: SimDuration::from_millis(150),
            probe_interval: SimDuration::from_millis(100),
            duration: SimDuration::from_millis(800),
            record_trace: true,
            ..RoutingParams::full()
        }
    }

    /// The same size, on the mesh topology.
    pub fn on_mesh(mut self) -> Self {
        self.topo = RoutingTopo::Mesh3x3;
        self
    }
}

/// Everything a routing run produces. All fields except `wall_secs` are
/// deterministic for a given [`RoutingParams`].
#[derive(Debug)]
pub struct RoutingOutcome {
    /// Hosts in the topology (edge hosts + gateways).
    pub hosts: usize,
    /// Sessions opened successfully.
    pub streams_opened: u64,
    /// Session opens refused (admission exhausted on every alternate).
    pub open_failed: u64,
    /// Engine events executed.
    pub events: u64,
    /// ST messages delivered to ports (registry `st.deliver`).
    pub messages: u64,
    /// Link-state ads originated (`routing.floods`).
    pub floods: u64,
    /// Lazy route-table recomputations (`routing.recompute`).
    pub recomputes: u64,
    /// Establishments that won on a non-primary alternate
    /// (`routing.alternate_wins`).
    pub alternate_wins: u64,
    /// Subtransport failovers completed (`fault.recovery_latency` count).
    pub recoveries: u64,
    /// Faults injected by the drill.
    pub faults_injected: u64,
    /// Virtual seconds simulated.
    pub sim_secs: f64,
    /// Wall-clock seconds (not deterministic).
    pub wall_secs: f64,
    /// Peak interface transmit-queue depth, bytes.
    pub peak_queue_bytes: u64,
    /// Full metric-registry dump (JSON lines, deterministic ordering).
    pub registry_dump: String,
    /// Observability trace (empty unless `record_trace`).
    pub trace_dump: String,
    /// Heap allocations made during the run. Zero unless the caller runs
    /// under a counting allocator and fills it in (the e11 binary does);
    /// excluded from [`Self::determinism_digest`] because the count is a
    /// property of the build, not of the simulated world.
    pub allocs: u64,
    /// Semantic-oracle violations (0 when the oracle is off — and, the
    /// gate asserts, when it is on).
    pub oracle_violations: u64,
    /// Human-readable description of each violation, for diagnosis.
    /// Empty on a clean run; not part of the digest or JSON.
    pub oracle_detail: Vec<String>,
}

impl RoutingOutcome {
    /// Heap allocations per engine event (0 when not measured).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }

    /// Engine events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// One scenario object for `BENCH_routing.json` / `check_bench.sh`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hosts\":{},\"streams_opened\":{},\"open_failed\":{},\
             \"events\":{},\"messages\":{},\"floods\":{},\"recomputes\":{},\
             \"alternate_wins\":{},\"recoveries\":{},\"faults_injected\":{},\
             \"sim_secs\":{:.3},\"wall_secs\":{:.3},\"events_per_sec\":{:.0},\
             \"allocs_per_event\":{:.3},\"peak_queue_bytes\":{},\
             \"oracle_violations\":{}}}",
            self.hosts,
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.floods,
            self.recomputes,
            self.alternate_wins,
            self.recoveries,
            self.faults_injected,
            self.sim_secs,
            self.wall_secs,
            self.events_per_sec(),
            self.allocs_per_event(),
            self.peak_queue_bytes,
            self.oracle_violations,
        )
    }

    /// The deterministic portion, for byte-identical replay comparison.
    pub fn determinism_digest(&self) -> String {
        format!(
            "streams={} failed={} events={} messages={} floods={} \
             recomputes={} alt_wins={} recoveries={} faults={} \
             sim_secs={:.9} peak_queue={}\n\
             --- registry ---\n{}--- trace ---\n{}",
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.floods,
            self.recomputes,
            self.alternate_wins,
            self.recoveries,
            self.faults_injected,
            self.sim_secs,
            self.peak_queue_bytes,
            self.registry_dump,
            self.trace_dump,
        )
    }
}

/// Event sink rendering every observability event into a shared buffer —
/// the byte-comparable trace of a determinism run.
struct SharedTraceSink {
    out: Rc<RefCell<String>>,
}

impl dash_sim::obs::ObsSink for SharedTraceSink {
    fn on_event(&mut self, time: SimTime, event: &dash_sim::obs::ObsEvent) {
        use std::fmt::Write;
        let _ = writeln!(
            self.out.borrow_mut(),
            "{} {} {:?}",
            time.as_nanos(),
            event.name(),
            event
        );
    }
}

/// A deterministic-delay profile that demands most of one Ethernet
/// corridor's admission budget (≈0.79 of the 1.125 MB/s deterministic
/// share), so the second such stream must fall back to the backup and
/// the third finds both corridors full.
fn heavy_profile() -> StreamProfile {
    StreamProfile {
        capacity: 40 * 1024,
        max_message: 1024,
        delay: DelayBound::deterministic(SimDuration::from_millis(50), SimDuration::from_micros(2)),
        ..StreamProfile::default()
    }
}

/// A cross-corridor voice spec: best-effort delay (no admission demand),
/// budget wide enough to survive gateway hops.
fn cross_voice(duration: SimDuration) -> MediaSpec {
    let mut spec = MediaSpec::voice(duration);
    spec.delay_budget = SimDuration::from_millis(120);
    spec.profile.delay =
        DelayBound::best_effort_with(SimDuration::from_millis(120), SimDuration::from_micros(10));
    spec
}

/// The built topology: per-site edge hosts plus the ids the fault drill
/// and probe traffic need.
struct Topo {
    /// Edge hosts grouped by LAN.
    sites: Vec<Vec<HostId>>,
    /// Total hosts including gateways.
    hosts: usize,
    /// The network the drill takes down mid-run.
    drill_target: NetworkId,
}

fn build_dumbbell(tb: &mut TopologyBuilder, hosts_per_lan: usize) -> Topo {
    let lan_a = tb.network(NetworkSpec::fast_lan("lan-a"));
    let mid_p = tb.network(NetworkSpec::ethernet("mid-primary"));
    let mid_b = tb.network(NetworkSpec::ethernet("mid-backup"));
    let lan_b = tb.network(NetworkSpec::fast_lan("lan-b"));
    let mut side_a = Vec::new();
    let mut side_b = Vec::new();
    for _ in 0..hosts_per_lan {
        side_a.push(tb.host_on(lan_a));
    }
    tb.gateway(lan_a, mid_p);
    tb.gateway(mid_p, lan_b);
    tb.gateway(lan_a, mid_b);
    tb.gateway(mid_b, lan_b);
    for _ in 0..hosts_per_lan {
        side_b.push(tb.host_on(lan_b));
    }
    Topo {
        hosts: 2 * hosts_per_lan + 4,
        sites: vec![side_a, side_b],
        drill_target: mid_p,
    }
}

fn build_mesh3x3(tb: &mut TopologyBuilder, hosts_per_lan: usize) -> Topo {
    let mut nets = Vec::new();
    let mut sites = Vec::new();
    for r in 0..3 {
        for c in 0..3 {
            let net = tb.network(NetworkSpec::ethernet(format!("lan-{r}{c}")));
            let mut hosts = Vec::new();
            for _ in 0..hosts_per_lan {
                hosts.push(tb.host_on(net));
            }
            nets.push(net);
            sites.push(hosts);
        }
    }
    let mut gateways = 0;
    for r in 0..3 {
        for c in 0..3 {
            if c + 1 < 3 {
                tb.gateway(nets[r * 3 + c], nets[r * 3 + c + 1]);
                gateways += 1;
            }
            if r + 1 < 3 {
                tb.gateway(nets[r * 3 + c], nets[(r + 1) * 3 + c]);
                gateways += 1;
            }
        }
    }
    Topo {
        hosts: 9 * hosts_per_lan + gateways,
        sites,
        // The mesh centre: every shortest corner-to-corner path crosses
        // it, so its outage forces reconvergence around the rim.
        drill_target: nets[4],
    }
}

/// Build the topology, load the population, run for `params.duration`
/// virtual seconds (plus drain grace), and collect the outcome.
pub fn run_routing(params: &RoutingParams) -> RoutingOutcome {
    let mut rng = dash_sim::rng::Rng::new(params.seed);
    let mut tb = TopologyBuilder::new();
    tb.seed(params.seed ^ 0x90e11);
    let topo = match params.topo {
        RoutingTopo::DumbbellBackup => build_dumbbell(&mut tb, params.hosts_per_lan),
        RoutingTopo::Mesh3x3 => build_mesh3x3(&mut tb, params.hosts_per_lan),
    };
    let mut builder = StackBuilder::new(tb.build()).obs(true);
    let trace_buf: Rc<RefCell<String>> = Rc::new(RefCell::new(String::new()));
    if params.record_trace {
        builder = builder.obs_sink(SharedTraceSink {
            out: Rc::clone(&trace_buf),
        });
    }
    let mut sim = Sim::new(builder.build());
    // Completion is off (horizon-cut run); det-delay stays on — the
    // outage drill's first fault event self-excuses the backlog that
    // drains late across the failover.
    let oracle_handle = if params.oracle {
        let (sink, handle) = dash_check::oracle(dash_check::OracleConfig {
            check_completion: false,
            check_det_delay: true,
            // Unreliable media streams legitimately skip lost messages.
            check_fifo_gaps: false,
        });
        sim.state.net.obs.add_boxed_sink(Box::new(sink));
        Some(handle)
    } else {
        None
    };
    let all_hosts: Vec<HostId> = topo.sites.iter().flatten().copied().collect();
    let taps = Dispatcher::install(&mut sim, &all_hosts);

    let sites = &topo.sites;
    let n_sites = sites.len();
    let hpl = params.hosts_per_lan;
    let mut media: Vec<Rc<RefCell<MediaStats>>> = Vec::new();

    // Long-lived voice crossing the internetwork (site i → the "far"
    // site), best-effort so only the heavies exercise admission.
    for v in 0..params.voice_pairs {
        let sl = v % n_sites;
        let dl = (sl + n_sites / 2 + 1 + v % (n_sites - 1)) % n_sites;
        let dl = if dl == sl { (dl + 1) % n_sites } else { dl };
        let src = sites[sl][v % hpl];
        let dst = sites[dl][(v / n_sites + 1) % hpl];
        media.push(start_media(
            &mut sim,
            &taps,
            src,
            dst,
            cross_voice(params.duration),
            rng.next_u64(),
        ));
    }

    // Heavy deterministic streams between distinct corner pairs: the
    // first fills the primary corridor, the second is NAK'd there and
    // wins on the backup, later ones find every alternate full.
    for h in 0..params.heavy_streams {
        let src = sites[0][h % hpl];
        let dst = sites[n_sites - 1][(h + 1) % hpl];
        let mut spec = cross_voice(params.duration);
        spec.profile = heavy_profile();
        spec.frame_bytes = 512;
        spec.interval = SimDuration::from_millis(25);
        media.push(start_media(&mut sim, &taps, src, dst, spec, rng.next_u64()));
    }

    // Churn waves: short-lived sessions between rotating cross-site
    // pairs, so establishment (and its alternate walk) keeps happening
    // while the topology changes underneath it.
    let churned: Rc<RefCell<Vec<Rc<RefCell<MediaStats>>>>> = Rc::new(RefCell::new(Vec::new()));
    if params.churn_per_wave > 0 {
        schedule_churn_wave(
            &mut sim,
            &taps,
            topo.sites.clone(),
            params.clone(),
            Rc::clone(&churned),
            rng.fork(0xc4u64),
            0,
        );
    }

    // Datagram probes: table-routed traffic between the extreme sites.
    // Floods and RMS traffic never consult the route table (they are
    // source-routed or pinned), so these probes are what turns
    // "routes marked dirty" into counted lazy recomputations.
    schedule_probe(
        &mut sim,
        topo.sites.clone(),
        params.probe_interval,
        params.duration,
    );

    // Mid-run outage drill: the primary corridor (dumbbell) or the mesh
    // centre goes dark, then heals — reconvergence, alternate re-homing
    // and recovery latency are all part of the measurement.
    let mut faults = 0u64;
    if params.fault_drill {
        let half =
            SimTime::ZERO.saturating_add(SimDuration::from_nanos(params.duration.as_nanos() / 2));
        let heal = half.saturating_add(SimDuration::from_millis(150));
        let plan = FaultPlan::new()
            .at(
                half,
                FaultKind::NetworkDown {
                    network: topo.drill_target.0,
                },
            )
            .at(
                heal,
                FaultKind::NetworkUp {
                    network: topo.drill_target.0,
                },
            );
        faults = plan.events.len() as u64;
        schedule_fault_plan(&mut sim, &plan);
    }

    let started = Instant::now();
    let horizon = SimTime::ZERO
        .saturating_add(params.duration)
        .saturating_add(SimDuration::from_millis(400));
    sim.run_until(horizon);
    let wall_secs = started.elapsed().as_secs_f64();

    let mut streams_opened = 0u64;
    let mut open_failed = 0u64;
    let churn_sessions = churned.borrow();
    for m in media.iter().chain(churn_sessions.iter()) {
        if m.borrow().failed {
            open_failed += 1;
        } else {
            streams_opened += 1;
        }
    }

    let peak_queue_bytes = sim
        .state
        .net
        .hosts
        .iter()
        .flat_map(|h| h.ifaces.iter())
        .map(|i| i.stats.max_queued_bytes)
        .max()
        .unwrap_or(0);

    let registry = &mut sim.state.net.obs.registry;
    let messages = registry.counter_value("st.deliver");
    let floods = registry.counter_value("routing.floods");
    let recomputes = registry.counter_value("routing.recompute");
    let alternate_wins = registry.counter_value("routing.alternate_wins");
    let recoveries = registry.histogram("fault.recovery_latency").count() as u64;
    let registry_dump = registry.to_json_lines();
    let trace_dump = trace_buf.borrow().clone();

    RoutingOutcome {
        hosts: topo.hosts,
        streams_opened,
        open_failed,
        events: sim.events_processed(),
        messages,
        floods,
        recomputes,
        alternate_wins,
        recoveries,
        faults_injected: faults,
        sim_secs: sim.now().as_secs_f64(),
        wall_secs,
        peak_queue_bytes,
        registry_dump,
        trace_dump,
        allocs: 0,
        oracle_violations: oracle_handle
            .as_ref()
            .map_or(0, |h| h.violations().len() as u64),
        oracle_detail: oracle_handle.as_ref().map_or_else(Vec::new, |h| {
            h.violations()
                .iter()
                .map(|v| format!("[{}] t={} {}", v.invariant, v.at.as_nanos(), v.detail))
                .collect()
        }),
    }
}

fn schedule_churn_wave(
    sim: &mut Sim<Stack>,
    taps: &Dispatcher,
    sites: Vec<Vec<HostId>>,
    params: RoutingParams,
    sink: Rc<RefCell<Vec<Rc<RefCell<MediaStats>>>>>,
    mut rng: dash_sim::rng::Rng,
    wave: usize,
) {
    let end = SimTime::ZERO.saturating_add(params.duration);
    if sim
        .now()
        .saturating_add(params.churn_interval)
        .saturating_add(SimDuration::from_millis(250))
        >= end
    {
        return;
    }
    let taps = taps.clone();
    let interval = params.churn_interval;
    sim.schedule_in(interval, move |sim| {
        let n = sites.len();
        let hpl = params.hosts_per_lan;
        for c in 0..params.churn_per_wave {
            let sl = (wave + c) % n;
            let dl = (sl + 1 + (wave * 2 + c) % (n - 1).max(1)) % n;
            if dl == sl {
                continue;
            }
            let src = sites[sl][(wave * 3 + c) % hpl];
            let dst = sites[dl][(wave + 2 * c) % hpl];
            if src == dst {
                continue;
            }
            let mut spec = cross_voice(SimDuration::from_millis(150));
            spec.interval = SimDuration::from_millis(40);
            spec.profile.capacity = 4 * 1024;
            let stats = start_media(sim, &taps, src, dst, spec, rng.next_u64());
            sink.borrow_mut().push(stats);
        }
        schedule_churn_wave(sim, &taps, sites, params, sink, rng, wave + 1);
    });
}

fn schedule_probe(
    sim: &mut Sim<Stack>,
    sites: Vec<Vec<HostId>>,
    interval: SimDuration,
    duration: SimDuration,
) {
    let end = SimTime::ZERO.saturating_add(duration);
    if sim.now().saturating_add(interval) >= end {
        return;
    }
    sim.schedule_in(interval, move |sim| {
        let a = sites[0][0];
        let b = *sites[sites.len() - 1].last().unwrap();
        send_datagram(sim, a, b, 0x90e1, Bytes::from_static(b"probe").into());
        send_datagram(sim, b, a, 0x90e1, Bytes::from_static(b"probe").into());
        schedule_probe(sim, sites, interval, duration);
    });
}

/// e11_routing — QoS routing under saturation, churn and faults.
///
/// Claim: link-state dissemination plus constrained alternate selection
/// turns admission refusals and mid-run outages into re-homed paths
/// (alternate wins, bounded reconvergence work) instead of failed or
/// stalled sessions.
pub fn e11_routing() -> Table {
    let mut t = Table::new(
        "e11_routing",
        "QoS routing: dumbbell-with-backup saturation + 3x3 mesh under churn, mid-run outage drill",
        "alternates absorb admission refusals and outages; reconvergence work stays bounded and deterministic",
    );
    t.columns(&[
        "topology",
        "opened",
        "refused",
        "alt wins",
        "floods",
        "recomputes",
        "failovers",
        "msgs delivered",
        "events",
    ]);
    for topo in [RoutingTopo::DumbbellBackup, RoutingTopo::Mesh3x3] {
        let mut p = RoutingParams::ci();
        p.topo = topo;
        p.record_trace = false;
        let o = run_routing(&p);
        t.row(vec![
            topo.label().to_string(),
            o.streams_opened.to_string(),
            o.open_failed.to_string(),
            o.alternate_wins.to_string(),
            o.floods.to_string(),
            o.recomputes.to_string(),
            o.recoveries.to_string(),
            o.messages.to_string(),
            o.events.to_string(),
        ]);
    }
    t.note("alt wins = establishments NAK'd on the primary that succeeded on a k-alternate path");
    t.note(
        "floods/recomputes are event-triggered: they spike at the outage and heal, not per-packet",
    );
    t.note("gate sizes live in BENCH_routing.json via the e11_routing binary; scripts/check_bench.sh compares the counts exactly");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_dumbbell_exercises_alternates_and_reconvergence() {
        let p = RoutingParams::ci();
        let a = run_routing(&p);
        assert!(a.streams_opened > 5, "opened {}", a.streams_opened);
        assert!(a.alternate_wins >= 1, "alt wins {}", a.alternate_wins);
        assert!(a.floods > 0, "floods {}", a.floods);
        assert!(a.recomputes > 0, "recomputes {}", a.recomputes);
        assert!(a.recoveries > 0, "recoveries {}", a.recoveries);
        assert_eq!(a.faults_injected, 2);
        let b = run_routing(&p);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn ci_mesh_reconverges_around_centre_outage() {
        let p = RoutingParams::ci().on_mesh();
        let a = run_routing(&p);
        assert!(a.streams_opened > 5, "opened {}", a.streams_opened);
        assert!(a.floods > 0, "floods {}", a.floods);
        assert!(a.recomputes > 0, "recomputes {}", a.recomputes);
        let b = run_routing(&p);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn routing_outcome_json_shape() {
        let mut p = RoutingParams::ci();
        p.record_trace = false;
        p.fault_drill = false;
        p.churn_per_wave = 0;
        p.duration = SimDuration::from_millis(300);
        let o = run_routing(&p);
        let j = o.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"alternate_wins\""));
        assert!(j.contains("\"floods\""));
    }
}
