//! # dash-bench — the experiment harness
//!
//! One runner per figure/claim of the paper (see DESIGN.md's experiment
//! index). Each returns a [`table::Table`]; the `run_experiments` binary
//! prints them all, and per-experiment binaries print one each.
//!
//! The paper (an architecture technical report) publishes no measured
//! tables, so "reproduction" here means: run the subsystem each figure
//! depicts, quantify the claim attached to it, and check the *shape* the
//! paper predicts (who wins, what gets eliminated, where behaviour
//! degrades).

pub mod alloc_counter;
pub mod e_baseline;
pub mod e_capacity;
pub mod e_pscale;
pub mod e_routing;
pub mod e_rt;
pub mod e_scale;
pub mod e_security_sched;
pub mod e_st;
pub mod figs;
pub mod table;

pub use table::Table;

/// An experiment entry point: runs the scenario and renders its table.
pub type Experiment = fn() -> Table;

/// Every experiment, in DESIGN.md order.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig1_layering", figs::fig1_layering as fn() -> Table),
        ("fig2_architecture", figs::fig2_architecture),
        ("fig3_rms_levels", figs::fig3_rms_levels),
        ("fig4_multiplexing", figs::fig4_multiplexing),
        ("fig5_flow_control", figs::fig5_flow_control),
        ("e1_security", e_security_sched::e1_security),
        ("e2_scheduling", e_security_sched::e2_scheduling),
        ("e3_caching", e_st::e3_caching),
        ("e4_fragmentation", e_st::e4_fragmentation),
        ("e5_capacity", e_capacity::e5_capacity),
        ("e6_admission", e_capacity::e6_admission),
        ("e7_rkom", e_baseline::e7_rkom),
        ("e8_congestion", e_baseline::e8_congestion),
        ("e9_piggyback", e_st::e9_piggyback),
        ("e10_scale", e_scale::e10_scale),
        ("e11_routing", e_routing::e11_routing),
        ("e12_pscale", e_pscale::e12_pscale),
        ("e13_rt", e_rt::e13_rt),
    ]
}

/// Run one experiment by id.
pub fn run_one(id: &str) -> Option<Table> {
    all_experiments()
        .into_iter()
        .find(|(n, _)| *n == id)
        .map(|(_, f)| f())
}
