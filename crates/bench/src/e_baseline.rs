//! e7_rkom — request/reply and stream performance vs the TCP-like baseline
//! on a high-delay path (§1, §3.3); e8_congestion — RMS capacity
//! enforcement vs TCP + source quench through a shared gateway (§4.4).

use std::cell::RefCell;
use std::rc::Rc;

use dash_apps::bulk::{run_until_complete, start_bulk};
use dash_apps::rpc::{run_tcp_rpc, start_rkom_rpc, RpcSpec};
use dash_apps::taps::Dispatcher;
use dash_baseline::tcp;
use dash_net::topology::{dumbbell, TopologyBuilder};
use dash_net::{HostId, NetworkSpec};
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_transport::flow::CapacityEnforcement;
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::StreamProfile;
use rms_core::delay::DelayBound;

use crate::table::{f, secs, Table};

/// e7_rkom — RKOM vs sequential TCP RPC, and RMS stream vs TCP stream, on
/// the high-delay internet path.
pub fn e7_rkom() -> Table {
    let mut t = Table::new(
        "e7_rkom",
        "request/reply and streaming on a high-delay path: RMS stack vs TCP baseline",
        "§1: request/reply primitives cannot efficiently provide stream-style communication on high-delay networks; §3.3: RKOM exploits RMS features",
    );
    t.columns(&["workload", "protocol", "result", "detail"]);

    // --- RPC latency ---
    {
        let (net, a, b, _, _) = dumbbell();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let stats = start_rkom_rpc(
            &mut sim,
            a,
            b,
            RpcSpec {
                rate: 20.0,
                duration: SimDuration::from_secs(3),
                ..RpcSpec::default()
            },
            13,
        );
        sim.run();
        let s = stats.borrow();
        let mut lat = s.latency.clone();
        t.row(vec![
            "RPC (64B→256B)".into(),
            "RKOM".into(),
            format!("mean {}", secs(lat.mean())),
            format!("{} calls, p99 {}", s.completed, secs(lat.quantile(0.99))),
        ]);
    }
    {
        let (net, a, b, _, _) = dumbbell();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let stats = run_tcp_rpc(&mut sim, a, b, 80, 50, 64, 256);
        sim.run();
        let s = stats.borrow();
        let mut lat = s.latency.clone();
        t.row(vec![
            "RPC (64B→256B)".into(),
            "TCP sequential".into(),
            format!("mean {}", secs(lat.mean())),
            format!("{} calls, p99 {}", s.completed, secs(lat.quantile(0.99))),
        ]);
    }

    // --- Bulk throughput on the long-fat path ---
    {
        let (net, a, b, _, _) = dumbbell();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let taps = Dispatcher::install(&mut sim, &[a, b]);
        let mut profile = StreamProfile::bulk();
        profile.rto = SimDuration::from_millis(800);
        let stats = start_bulk(&mut sim, &taps, a, b, 512 * 1024, 4 * 1024, profile);
        let done = run_until_complete(&mut sim, &stats, SimDuration::from_secs(60));
        let s = stats.borrow();
        t.row(vec![
            "bulk 512KB".into(),
            "RMS stream".into(),
            format!("{} B/s", f(s.goodput().unwrap_or(0.0))),
            format!("complete: {done}"),
        ]);
    }
    {
        let (net, a, b, _, _) = dumbbell();
        let mut sim = Sim::new(StackBuilder::new(net).build());
        let done_bytes = Rc::new(RefCell::new(0u64));
        let d2 = Rc::clone(&done_bytes);
        sim.state.on_tcp(move |sim, host, ev| {
            if let tcp::TcpEvent::Data { conn, bytes } = ev {
                *d2.borrow_mut() += bytes;
                if let Some(c) = sim.state.tcp.conn_mut(host, conn) {
                    let _ = c.read();
                }
            }
        });
        tcp::listen(&mut sim, b, 80);
        let conn = tcp::connect(&mut sim, a, b, 80);
        sim.run();
        let t0 = sim.now();
        tcp::send(&mut sim, a, conn, &vec![0u8; 512 * 1024]);
        // Bounded drive.
        let end = t0 + SimDuration::from_secs(60);
        while sim.now() < end && *done_bytes.borrow() < 512 * 1024 {
            sim.run_until(sim.now() + SimDuration::from_millis(100));
            if sim.events_pending() == 0 {
                break;
            }
        }
        let got = *done_bytes.borrow();
        let dt = sim.now().saturating_since(t0).as_secs_f64();
        t.row(vec![
            "bulk 512KB".into(),
            "TCP".into(),
            format!("{} B/s", f(got as f64 / dt.max(1e-9))),
            format!("{} of {} bytes", got, 512 * 1024),
        ]);
    }
    t.note("path: Ethernet → 1.5 Mb/s, 30 ms one-way WAN → Ethernet");
    t.note("expected shape: RKOM RPC ≈ TCP RPC once connected (both one round trip), but RKOM needs no per-conversation handshake; streams beat sequential request/reply for bulk on long-delay paths");
    t
}

/// e8_congestion — a shared bottleneck gateway: admitted, rate-enforced RMS
/// streams vs TCP with / without source-quench reaction.
pub fn e8_congestion() -> Table {
    let mut t = Table::new(
        "e8_congestion",
        "congestion at a shared gateway: RMS capacity enforcement vs source quench",
        "§4.4: RMS capacity protects gateway buffers by construction; ICMP source quench is 'an ad hoc and often ineffective solution'",
    );
    t.columns(&[
        "scenario",
        "gateway overflow drops",
        "quenches",
        "total goodput",
        "per-flow goodput",
    ]);

    let build = || -> (Sim<Stack>, Vec<HostId>, Vec<HostId>, HostId) {
        let mut b = TopologyBuilder::new();
        let lan_a = b.network(NetworkSpec::ethernet("lan-a"));
        let mut wan = NetworkSpec::long_haul("wan");
        wan.rate_bps = 400_000.0; // slow bottleneck
        wan.drop_prob = 0.0;
        wan.caps.raw_ber = 0.0;
        let wan = b.network(wan);
        let lan_b = b.network(NetworkSpec::ethernet("lan-b"));
        let senders: Vec<HostId> = (0..3).map(|_| b.host_on(lan_a)).collect();
        let g1 = b.gateway(lan_a, wan);
        let _g2 = b.gateway(wan, lan_b);
        let receivers: Vec<HostId> = (0..3).map(|_| b.host_on(lan_b)).collect();
        b.iface_queue_limit(Some(16 * 1024));
        (
            Sim::new(StackBuilder::new(b.build()).build()),
            senders,
            receivers,
            g1,
        )
    };

    // Scenario A: RMS streams with rate-based capacity enforcement sized to
    // share the bottleneck (3 × 16 KB / 1 s ≈ 48 KB/s < 50 KB/s wire).
    {
        let (mut sim, senders, receivers, g1) = build();
        let all: Vec<HostId> = senders.iter().chain(receivers.iter()).copied().collect();
        let taps = Dispatcher::install(&mut sim, &all);
        let mut flows = Vec::new();
        for (s, r) in senders.iter().zip(receivers.iter()) {
            let profile = StreamProfile {
                // The capacity is each flow's burst allowance (§2.2): sized
                // so the three flows' worst-case bursts fit the gateway's
                // 16 KB buffer — exactly the reservation a deterministic RMS
                // would have made.
                capacity: 4 * 1024,
                max_message: 512,
                delay: DelayBound::best_effort_with(
                    SimDuration::from_millis(1200),
                    // The 400 kb/s bottleneck costs 20 us/B alone; leave
                    // head room for the LAN hops and ST stage.
                    SimDuration::from_micros(40),
                ),
                enforcement: CapacityEnforcement::RateBased,
                ..StreamProfile::default()
            };
            let stats = start_bulk(&mut sim, &taps, *s, *r, 24 * 1024, 512, profile);
            flows.push(stats);
        }
        let end = sim.now() + SimDuration::from_secs(25);
        while sim.now() < end {
            sim.run_until(sim.now() + SimDuration::from_millis(100));
            if sim.events_pending() == 0 {
                break;
            }
        }
        let drops = sim.state.net.host(g1).ifaces[1].stats.overflow_drops.get();
        let elapsed = sim.now().as_secs_f64();
        let per_flow: Vec<f64> = flows
            .iter()
            .map(|f2| f2.borrow().delivered_bytes as f64 / elapsed)
            .collect();
        let total: f64 = per_flow.iter().sum();
        t.row(vec![
            "RMS rate-enforced".into(),
            drops.to_string(),
            sim.state.net.stats.quenches_sent.get().to_string(),
            format!("{} B/s", f(total)),
            per_flow
                .iter()
                .map(|x| f(*x))
                .collect::<Vec<_>>()
                .join(" / "),
        ]);
    }

    // Scenarios B and C: TCP flows with and without quench reaction.
    for (name, reacts) in [
        ("TCP + quench reaction", true),
        ("TCP ignoring quench", false),
    ] {
        let (mut sim, senders, receivers, g1) = build();
        sim.state.tcp.config.quench_reacts = reacts;
        sim.state.tcp.config.rto = SimDuration::from_millis(500);
        let delivered: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![0; 3]));
        let conn_index: Rc<RefCell<std::collections::HashMap<u64, usize>>> =
            Rc::new(RefCell::new(std::collections::HashMap::new()));
        {
            let delivered = Rc::clone(&delivered);
            let conn_index = Rc::clone(&conn_index);
            sim.state.on_tcp(move |sim, host, ev| {
                if let tcp::TcpEvent::Data { conn, bytes } = ev {
                    if let Some(&i) = conn_index.borrow().get(&conn) {
                        delivered.borrow_mut()[i] += bytes;
                    }
                    if let Some(c) = sim.state.tcp.conn_mut(host, conn) {
                        let _ = c.read();
                    }
                }
            });
        }
        for (i, r) in receivers.iter().enumerate() {
            tcp::listen(&mut sim, *r, 8000 + i as u16);
        }
        let mut conns = Vec::new();
        for (i, (s, r)) in senders.iter().zip(receivers.iter()).enumerate() {
            let c = tcp::connect(&mut sim, *s, *r, 8000 + i as u16);
            conns.push((*s, c));
        }
        sim.run();
        // Server-side accepted connections also produce Data events; map
        // them by scanning each receiver's connections.
        for (i, r) in receivers.iter().enumerate() {
            for (id, _) in sim.state.tcp.host(*r).conns.iter() {
                conn_index.borrow_mut().insert(*id, i);
            }
        }
        for (s, c) in &conns {
            tcp::send(&mut sim, *s, *c, &vec![0u8; 96 * 1024]);
        }
        let end = sim.now() + SimDuration::from_secs(10);
        while sim.now() < end {
            sim.run_until(sim.now() + SimDuration::from_millis(100));
            if sim.events_pending() == 0 {
                break;
            }
        }
        let drops = sim.state.net.host(g1).ifaces[1].stats.overflow_drops.get();
        let elapsed = sim.now().as_secs_f64();
        let per_flow: Vec<f64> = delivered
            .borrow()
            .iter()
            .map(|b| *b as f64 / elapsed)
            .collect();
        let total: f64 = per_flow.iter().sum();
        t.row(vec![
            name.into(),
            drops.to_string(),
            sim.state.net.stats.quenches_sent.get().to_string(),
            format!("{} B/s", f(total)),
            per_flow
                .iter()
                .map(|x| f(*x))
                .collect::<Vec<_>>()
                .join(" / "),
        ]);
    }
    t.note("bottleneck: 400 kb/s WAN behind a gateway with 16 KB transmit buffers; RMS flows move 24 KB each, TCP flows 96 KB each");
    t.note("expected shape: rate-enforced RMS flows produce ~zero gateway drops; TCP overruns the gateway, and ignoring quench drops most");
    t
}
