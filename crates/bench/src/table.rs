//! Result tables: the harness's output format.
//!
//! Every experiment returns a [`Table`]; binaries print it. The format is
//! fixed-width text so EXPERIMENTS.md can embed results verbatim.

/// A formatted result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `fig4_multiplexing`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper claims; printed above the data.
    pub claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed below.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, claim: &str) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn columns(&mut self, cols: &[&str]) -> &mut Self {
        self.columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
        self
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Render as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n", self.claim));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&format!("   {}\n", header.join("  ")));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("   {}\n", rule.join("  ")));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&format!("   {}\n", cells.join("  ")));
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }
}

/// Format a float with engineering-style precision.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format seconds as the most readable unit.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else if x >= 1e-3 {
        format!("{:.2}ms", x * 1e3)
    } else if x >= 1e-6 {
        format!("{:.1}us", x * 1e6)
    } else if x > 0.0 {
        format!("{:.0}ns", x * 1e9)
    } else {
        "0".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t1", "Title", "claim text");
        t.columns(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("t1"));
        assert!(s.contains("longer-name"));
        assert!(s.contains("note: a note"));
        // Header and rows align.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 6);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", "t", "c");
        t.columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(secs(1.5), "1.50s");
        assert_eq!(secs(0.0015), "1.50ms");
        assert_eq!(secs(1.5e-6), "1.5us");
        assert_eq!(secs(5e-9), "5ns");
    }
}
